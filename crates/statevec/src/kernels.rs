//! In-place, Rayon-parallel gate application kernels.
//!
//! These are the CPU analog of NWQ-Sim's GPU kernels: each gate touches
//! every amplitude exactly once, and disjoint amplitude pairs/quads are
//! distributed across cores. Safe-Rust chunking strategies give the
//! data-race freedom Rayon guarantees without `unsafe`:
//!
//! - For a single-qubit gate on qubit `q`, the array splits into blocks of
//!   `2^{q+1}`; each block holds `2^q` independent (low, high) pairs.
//!   Low-`q` gates parallelize across blocks; high-`q` gates have few
//!   blocks, so the kernel instead splits each block and zips the halves
//!   in parallel.
//! - Two-qubit gates use blocks of `2^{hi+1}` with an inner split for the
//!   `hi` bit and chunked pairing for the `lo` bit.
//!
//! Diagonal matrices (RZ, CZ, CP, RZZ, fused diagonals) take a fast path
//! that multiplies amplitudes without pairing.

use crate::simd;
use nwq_common::{Error, Mat2, Mat4, Result, C64};
use rayon::prelude::*;

/// Minimum number of independent outer blocks before parallel dispatch is
/// worthwhile *when the pool has multiple threads*; below this the serial
/// loop wins. See [`min_par_blocks`] for the effective value.
pub const MIN_PAR_BLOCKS: usize = 8;
/// Minimum amplitudes per parallel work item for the inner-split paths
/// when the pool has multiple threads. See [`min_par_elems`].
pub const MIN_PAR_ELEMS: usize = 1 << 11;

/// `true` when the Rayon pool can actually run work concurrently. On a
/// single-thread pool the parallel paths still compute correct results,
/// but pay pure dispatch overhead: the calibration sweep in
/// `BENCH_kernels.json` measured `mat4_mixed` at 163 M updates/s through
/// parallel dispatch vs 304 M serial on one thread (the par path boxes a
/// closure per outer block — ~65 k of them at 18 qubits — and runs them
/// serially anyway).
#[inline]
pub fn parallel_dispatch_enabled() -> bool {
    rayon::current_num_threads() > 1
}

/// Effective outer-block threshold for parallel dispatch: the calibrated
/// [`MIN_PAR_BLOCKS`] on a multi-thread pool, `usize::MAX` (never) on a
/// single-thread pool.
#[inline]
pub fn min_par_blocks() -> usize {
    if parallel_dispatch_enabled() {
        MIN_PAR_BLOCKS
    } else {
        usize::MAX
    }
}

/// Effective per-item element threshold for the inner-split and
/// per-amplitude parallel paths (see [`min_par_blocks`]).
#[inline]
pub fn min_par_elems() -> usize {
    if parallel_dispatch_enabled() {
        MIN_PAR_ELEMS
    } else {
        usize::MAX
    }
}

#[inline]
fn pair_update(lo: &mut C64, hi: &mut C64, m: &Mat2) {
    let a = *lo;
    let b = *hi;
    *lo = m.0[0][0] * a + m.0[0][1] * b;
    *hi = m.0[1][0] * a + m.0[1][1] * b;
}

/// `true` when both off-diagonal entries are exactly zero (`±0` counts).
pub fn mat2_is_diagonal(m: &Mat2) -> bool {
    m.0[0][1].norm_sqr() == 0.0 && m.0[1][0].norm_sqr() == 0.0
}

/// `true` when every off-diagonal entry is exactly zero (`±0` counts).
pub fn mat4_is_diagonal(m: &Mat4) -> bool {
    (0..4).all(|r| (0..4).all(|c| r == c || m.0[r][c].norm_sqr() == 0.0))
}

/// Classification of one 2×2 sub-block of a block-structured two-qubit
/// matrix. `Identity` sub-blocks are *skipped outright* by the block
/// kernels — multiplying by exact `1+0i` is not a bitwise no-op for
/// `-0.0` imaginary parts, so "skip" and "multiply by one" diverge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubKind {
    /// Exact identity: diagonal with both entries `1+0i`.
    Identity,
    /// Diagonal but not the identity: per-amplitude `*=`.
    Diag,
    /// General 2×2: paired MAC update.
    Dense,
}

/// Classify a 2×2 matrix for the block kernels.
pub fn mat2_sub_kind(m: &Mat2) -> SubKind {
    if !mat2_is_diagonal(m) {
        return SubKind::Dense;
    }
    let one = |c: C64| c.re == 1.0 && c.im == 0.0;
    if one(m.0[0][0]) && one(m.0[1][1]) {
        SubKind::Identity
    } else {
        SubKind::Diag
    }
}

/// Block structure of a prenormalized (`hi > lo`, high bit first)
/// two-qubit matrix. Controlled gates are block-diagonal: CX with the
/// control on the high bit is `BlockHi{I, X}`, with the control on the
/// low bit `BlockLo{I, X}`. The sharded executor exploits this —
/// `BlockHi` with a global high bit needs **no exchange at all** (each
/// rank applies its own sub-block locally) and `BlockLo` with exactly one
/// dense sub-block needs only **half** the shard from its partner — so
/// the single-node kernels must take the *same* structural shortcuts to
/// stay bitwise identical (an `Identity` sub-block is skipped, not
/// multiplied; a 2-term MAC is not the 4-term MAC with zeros).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Mat4Shape {
    /// Fully diagonal — handled by the diagonal fast path.
    Diagonal,
    /// `m = diag(a, b)` over the HIGH bit: rows/cols `{0,1}` form `a`
    /// (high bit 0), `{2,3}` form `b`; each sub-block acts on the low
    /// bit within its high-bit half.
    BlockHi {
        /// Sub-block for high bit 0.
        a: Mat2,
        /// Kind of `a`.
        ka: SubKind,
        /// Sub-block for high bit 1.
        b: Mat2,
        /// Kind of `b`.
        kb: SubKind,
    },
    /// Block-diagonal over the LOW bit: rows/cols `{0,2}` form `a` (low
    /// bit 0), `{1,3}` form `b`; each sub-block acts on the high bit
    /// within its low-bit stripe.
    BlockLo {
        /// Sub-block for low bit 0.
        a: Mat2,
        /// Kind of `a`.
        ka: SubKind,
        /// Sub-block for low bit 1.
        b: Mat2,
        /// Kind of `b`.
        kb: SubKind,
    },
    /// No exploitable structure: full 4-term MAC kernels.
    Dense,
}

/// Classify a prenormalized two-qubit matrix. Diagonal wins over the
/// block shapes (a diagonal matrix is both), `BlockHi` over `BlockLo`
/// when a matrix is both (only diagonal matrices are).
pub fn mat4_shape(m: &Mat4) -> Mat4Shape {
    if mat4_is_diagonal(m) {
        return Mat4Shape::Diagonal;
    }
    let z = |r: usize, c: usize| m.0[r][c].norm_sqr() == 0.0;
    if z(0, 2) && z(0, 3) && z(1, 2) && z(1, 3) && z(2, 0) && z(2, 1) && z(3, 0) && z(3, 1) {
        let a = Mat2([[m.0[0][0], m.0[0][1]], [m.0[1][0], m.0[1][1]]]);
        let b = Mat2([[m.0[2][2], m.0[2][3]], [m.0[3][2], m.0[3][3]]]);
        return Mat4Shape::BlockHi {
            ka: mat2_sub_kind(&a),
            a,
            kb: mat2_sub_kind(&b),
            b,
        };
    }
    if z(0, 1) && z(0, 3) && z(2, 1) && z(2, 3) && z(1, 0) && z(1, 2) && z(3, 0) && z(3, 2) {
        let a = Mat2([[m.0[0][0], m.0[0][2]], [m.0[2][0], m.0[2][2]]]);
        let b = Mat2([[m.0[1][1], m.0[1][3]], [m.0[3][1], m.0[3][3]]]);
        return Mat4Shape::BlockLo {
            ka: mat2_sub_kind(&a),
            a,
            kb: mat2_sub_kind(&b),
            b,
        };
    }
    Mat4Shape::Dense
}

/// Applies a single-qubit unitary to qubit `q`, in place.
pub fn apply_mat2(amps: &mut [C64], q: usize, m: &Mat2) {
    debug_assert!(1usize << q < amps.len());
    nwq_telemetry::counter_add("kernels.amplitude_updates", amps.len() as u64);
    if mat2_is_diagonal(m) {
        nwq_telemetry::counter_add("kernels.mat2.diag", 1);
        return apply_diag1(amps, q, m.0[0][0], m.0[1][1]);
    }
    let stride = 1usize << q;
    let block = stride << 1;
    let nblocks = amps.len() / block;
    if nblocks >= min_par_blocks() {
        nwq_telemetry::counter_add("kernels.mat2.par_blocks", 1);
        amps.par_chunks_mut(block).for_each(|c| {
            let (lo, hi) = c.split_at_mut(stride);
            simd::mat2_pairs(lo, hi, m);
        });
    } else if stride >= min_par_elems() {
        nwq_telemetry::counter_add("kernels.mat2.par_inner", 1);
        for c in amps.chunks_mut(block) {
            let (lo, hi) = c.split_at_mut(stride);
            lo.par_iter_mut().zip(hi.par_iter_mut()).for_each(|(a, b)| {
                pair_update(a, b, m);
            });
        }
    } else {
        // The per-gate regime is fixed, so the whole sweep goes to one
        // dispatch-free SIMD entry point instead of re-testing the
        // parallel threshold per block (that re-test was the measured
        // `mat2_dispatch_vs_serial = 1.25` overhead).
        nwq_telemetry::counter_add("kernels.mat2.serial", 1);
        simd::mat2_sweep(amps, stride, m);
    }
}

/// Diagonal single-qubit fast path: `amp[i] *= d0` or `d1` by bit `q`.
fn apply_diag1(amps: &mut [C64], q: usize, d0: C64, d1: C64) {
    if amps.len() >= min_par_elems() {
        amps.par_iter_mut().enumerate().for_each(|(i, a)| {
            let d = if (i >> q) & 1 == 1 { d1 } else { d0 };
            *a *= d;
        });
    } else {
        simd::diag1_sweep(amps, q, d0, d1);
    }
}

#[inline]
fn quad_update(a00: &mut C64, a01: &mut C64, a10: &mut C64, a11: &mut C64, m: &Mat4) {
    // Index convention: (high bit, low bit); a01 = high 0, low 1.
    let v = [*a00, *a01, *a10, *a11];
    let mut out = [C64::default(); 4];
    for (r, o) in out.iter_mut().enumerate() {
        let row = &m.0[r];
        *o = row[0] * v[0] + row[1] * v[1] + row[2] * v[2] + row[3] * v[3];
    }
    *a00 = out[0];
    *a01 = out[1];
    *a10 = out[2];
    *a11 = out[3];
}

/// Applies a two-qubit unitary, in place. The matrix follows the workspace
/// convention: index = `(bit(q_high_arg) << 1) | bit(q_low_arg)` where
/// `q_high_arg`/`q_low_arg` are the *argument* roles (first/second), not
/// the numeric order. Internally the kernel sorts the qubits and swaps the
/// matrix when needed.
pub fn apply_mat4(amps: &mut [C64], qa: usize, qb: usize, m: &Mat4) {
    // Normalize so `hi > lo` with the matrix's high bit on `hi`.
    if qa > qb {
        apply_mat4_prenorm(amps, qa, qb, m);
    } else {
        apply_mat4_prenorm(amps, qb, qa, &m.swap_qubits());
    }
}

/// [`apply_mat4`] for matrices already normalized to `hi > lo` (first
/// qubit is the matrix's high bit). Compiled plans pre-normalize at
/// template build/bind time, so this entry skips the per-call
/// `swap_qubits` reshuffle of the general wrapper.
pub fn apply_mat4_prenorm(amps: &mut [C64], hi: usize, lo: usize, mat: &Mat4) {
    apply_mat4_shaped(amps, hi, lo, mat, mat4_shape(mat));
}

/// [`apply_mat4_prenorm`] with the matrix's [`Mat4Shape`] supplied by the
/// caller (compiled plans classify once at bind time and cache the shape
/// alongside the op). `shape` must be `mat4_shape(mat)`.
pub fn apply_mat4_shaped(amps: &mut [C64], hi: usize, lo: usize, mat: &Mat4, shape: Mat4Shape) {
    debug_assert!(hi > lo);
    debug_assert!(1usize << hi < amps.len());
    debug_assert_eq!(shape, mat4_shape(mat));
    nwq_telemetry::counter_add("kernels.amplitude_updates", amps.len() as u64);
    match shape {
        Mat4Shape::Diagonal => {
            nwq_telemetry::counter_add("kernels.mat4.diag", 1);
            return apply_diag2(
                amps,
                hi,
                lo,
                [mat.0[0][0], mat.0[1][1], mat.0[2][2], mat.0[3][3]],
            );
        }
        Mat4Shape::BlockHi { .. } | Mat4Shape::BlockLo { .. } => {
            nwq_telemetry::counter_add("kernels.mat4.block", 1);
            return apply_mat4_block(amps, hi, lo, &shape, true);
        }
        Mat4Shape::Dense => {}
    }
    // One stack copy so the optimizer can keep the 16 elements in
    // registers across the amplitude loop — measurably faster than
    // chasing the caller's reference (which it must conservatively
    // reload), and worth far more than the 256-byte memcpy costs.
    let mat = &{ *mat };
    let s_lo = 1usize << lo;
    let s_hi = 1usize << hi;
    let block = s_hi << 1;
    let nblocks = amps.len() / block;

    if nblocks >= min_par_blocks() {
        nwq_telemetry::counter_add("kernels.mat4.par_blocks", 1);
        amps.par_chunks_mut(block).for_each(|c| {
            let (h0, h1) = c.split_at_mut(s_hi);
            simd::mat4_half_pair(h0, h1, s_lo, mat);
        });
    } else if s_hi >= min_par_elems() {
        nwq_telemetry::counter_add("kernels.mat4.par_inner", 1);
        let lo_block = s_lo << 1;
        for c in amps.chunks_mut(block) {
            let (h0, h1) = c.split_at_mut(s_hi);
            // Parallelize across low-bit chunk pairs.
            h0.par_chunks_mut(lo_block)
                .zip(h1.par_chunks_mut(lo_block))
                .for_each(|(c0, c1)| {
                    let (c00, c01) = c0.split_at_mut(s_lo);
                    let (c10, c11) = c1.split_at_mut(s_lo);
                    for j in 0..s_lo {
                        quad_update(&mut c00[j], &mut c01[j], &mut c10[j], &mut c11[j], mat);
                    }
                });
        }
    } else {
        nwq_telemetry::counter_add("kernels.mat4.serial", 1);
        simd::mat4_sweep(amps, s_hi, s_lo, mat);
    }
}

/// Applies one 2×2 sub-block across a (low, high) stripe pair:
/// `Identity` touches nothing, `Diag` multiplies in place, `Dense` runs
/// the paired 2-term MAC. Every sharded lean-exchange kernel reduces to
/// this same per-element arithmetic, which is what keeps distributed
/// runs bitwise identical to single-node.
#[inline]
fn apply_sub_pairwise(lo: &mut [C64], hi: &mut [C64], k: SubKind, m: &Mat2) {
    match k {
        SubKind::Identity => {}
        SubKind::Diag => {
            let (d0, d1) = (m.0[0][0], m.0[1][1]);
            for a in lo.iter_mut() {
                *a *= d0;
            }
            for a in hi.iter_mut() {
                *a *= d1;
            }
        }
        SubKind::Dense => {
            for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                pair_update(a, b, m);
            }
        }
    }
}

/// One outer block (`[h0 | h1]`, each of length `2^hi`) of a
/// block-structured two-qubit gate.
#[inline]
fn block_update(h0: &mut [C64], h1: &mut [C64], s_lo: usize, shape: &Mat4Shape) {
    let lo_block = s_lo << 1;
    match *shape {
        Mat4Shape::BlockHi { a, ka, b, kb } => {
            for c in h0.chunks_mut(lo_block) {
                let (c0, c1) = c.split_at_mut(s_lo);
                apply_sub_pairwise(c0, c1, ka, &a);
            }
            for c in h1.chunks_mut(lo_block) {
                let (c0, c1) = c.split_at_mut(s_lo);
                apply_sub_pairwise(c0, c1, kb, &b);
            }
        }
        Mat4Shape::BlockLo { a, ka, b, kb } => {
            for (c0, c1) in h0.chunks_mut(lo_block).zip(h1.chunks_mut(lo_block)) {
                let (c00, c01) = c0.split_at_mut(s_lo);
                let (c10, c11) = c1.split_at_mut(s_lo);
                apply_sub_pairwise(c00, c10, ka, &a);
                apply_sub_pairwise(c01, c11, kb, &b);
            }
        }
        Mat4Shape::Diagonal | Mat4Shape::Dense => unreachable!("block_update needs a block shape"),
    }
}

/// Block-structured two-qubit sweep (`hi > lo` normalized): controlled
/// gates touch at most half the amplitudes with 2-term MACs instead of
/// all of them with 4-term MACs.
fn apply_mat4_block(amps: &mut [C64], hi: usize, lo: usize, shape: &Mat4Shape, parallel: bool) {
    let s_lo = 1usize << lo;
    let s_hi = 1usize << hi;
    let block = s_hi << 1;
    let nblocks = amps.len() / block;
    if parallel && nblocks >= min_par_blocks() {
        amps.par_chunks_mut(block).for_each(|c| {
            let (h0, h1) = c.split_at_mut(s_hi);
            block_update(h0, h1, s_lo, shape);
        });
    } else {
        for c in amps.chunks_mut(block) {
            let (h0, h1) = c.split_at_mut(s_hi);
            block_update(h0, h1, s_lo, shape);
        }
    }
}

/// Diagonal two-qubit fast path (`hi > lo` already normalized).
fn apply_diag2(amps: &mut [C64], hi: usize, lo: usize, d: [C64; 4]) {
    if amps.len() >= min_par_elems() {
        amps.par_iter_mut().enumerate().for_each(|(i, a)| {
            let idx = (((i >> hi) & 1) << 1) | ((i >> lo) & 1);
            *a *= d[idx];
        });
    } else {
        simd::diag2_sweep(amps, hi, lo, &d);
    }
}

/// One diagonal gate inside a coalesced sweep: a per-amplitude phase factor
/// selected by one or two index bits. All diagonal operators commute, so a
/// run of them can be applied in a single amplitude pass (see
/// [`apply_diag_sweep`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DiagFactor {
    /// Diagonal single-qubit gate: `d[bit(q)]`.
    One {
        /// Target qubit.
        q: usize,
        /// Diagonal entries indexed by the qubit's bit.
        d: [C64; 2],
    },
    /// Diagonal two-qubit gate (`hi > lo` normalized by the builder):
    /// `d[(bit(hi) << 1) | bit(lo)]`.
    Two {
        /// Higher-numbered qubit.
        hi: usize,
        /// Lower-numbered qubit.
        lo: usize,
        /// Diagonal entries indexed by the two bits.
        d: [C64; 4],
    },
}

impl DiagFactor {
    /// The complex-conjugated factor — the inverse of a diagonal unitary,
    /// used by plan daggering.
    pub fn conj(&self) -> DiagFactor {
        match *self {
            DiagFactor::One { q, d } => DiagFactor::One {
                q,
                d: [d[0].conj(), d[1].conj()],
            },
            DiagFactor::Two { hi, lo, d } => DiagFactor::Two {
                hi,
                lo,
                d: [d[0].conj(), d[1].conj(), d[2].conj(), d[3].conj()],
            },
        }
    }

    /// The phase this factor contributes to amplitude `i`.
    #[inline]
    pub(crate) fn at(&self, i: usize) -> C64 {
        match *self {
            DiagFactor::One { q, d } => d[(i >> q) & 1],
            DiagFactor::Two { hi, lo, d } => d[(((i >> hi) & 1) << 1) | ((i >> lo) & 1)],
        }
    }
}

/// Applies a run of commuting diagonal gates in ONE amplitude pass: each
/// amplitude is read and written once regardless of how many factors the
/// sweep carries. The compiled-plan layer emits sweeps for every diagonal
/// block (runs of length 1 are common — UCCSD's CX·RZ·CX apex blocks are
/// diagonal but fenced apart by ladder blocks; genuinely adjacent
/// RZ/CZ/CP/RZZ chains coalesce into longer runs).
///
/// Each factor multiplies the amplitude *in place* rather than
/// accumulating a combined phase first: for a run of one this performs
/// exactly the `amp *= d` of the plain kernels' diagonal fast path, so a
/// one-factor sweep is bitwise identical to [`apply_mat2`] /
/// [`apply_mat4`] on the same diagonal matrix.
pub fn apply_diag_sweep(amps: &mut [C64], factors: &[DiagFactor]) {
    if factors.is_empty() {
        return;
    }
    nwq_telemetry::counter_add("kernels.amplitude_updates", amps.len() as u64);
    nwq_telemetry::counter_add("kernels.diag_sweep", 1);
    nwq_telemetry::counter_add("kernels.diag_sweep_factors", factors.len() as u64);
    if amps.len() >= min_par_elems() {
        amps.par_iter_mut().enumerate().for_each(|(i, a)| {
            for f in factors {
                *a *= f.at(i);
            }
        });
    } else {
        // One-factor sweeps dominate compiled UCCSD plans (ladder-fenced
        // RZ apexes); give them the run-shaped SIMD fast paths. Each
        // amplitude still computes exactly `a *= f.at(i)` per factor, so
        // every arm is bitwise identical to the generic loop.
        match factors {
            [DiagFactor::One { q, d }] => simd::diag1_sweep(amps, *q, d[0], d[1]),
            [DiagFactor::Two { hi, lo, d }] => simd::diag2_sweep(amps, *hi, *lo, d),
            _ => simd::diag_multi_sweep(amps, factors),
        }
    }
}

/// Strictly serial variant of [`apply_mat2`]: same math, no thread-pool
/// dispatch and no telemetry. Exists so the bench harness can measure the
/// parallel kernels' speedup against a true single-thread baseline.
pub fn apply_mat2_serial(amps: &mut [C64], q: usize, m: &Mat2) {
    debug_assert!(1usize << q < amps.len());
    if mat2_is_diagonal(m) {
        return simd::diag1_sweep(amps, q, m.0[0][0], m.0[1][1]);
    }
    simd::mat2_sweep(amps, 1usize << q, m);
}

/// Strictly serial variant of [`apply_mat4`] (see [`apply_mat2_serial`]).
pub fn apply_mat4_serial(amps: &mut [C64], qa: usize, qb: usize, m: &Mat4) {
    debug_assert!(qa != qb);
    let (hi, lo, mat) = if qa > qb {
        (qa, qb, *m)
    } else {
        (qb, qa, m.swap_qubits())
    };
    match mat4_shape(&mat) {
        Mat4Shape::Diagonal => {
            let d = [mat.0[0][0], mat.0[1][1], mat.0[2][2], mat.0[3][3]];
            simd::diag2_sweep(amps, hi, lo, &d);
        }
        shape @ (Mat4Shape::BlockHi { .. } | Mat4Shape::BlockLo { .. }) => {
            apply_mat4_block(amps, hi, lo, &shape, false);
        }
        Mat4Shape::Dense => simd::mat4_sweep(amps, 1usize << hi, 1usize << lo, &mat),
    }
}

/// Sharded single-qubit update for a *global* qubit (one whose bit lives
/// in the rank id of a distributed run): every amplitude of `own` pairs
/// with the amplitude at the same local index in `partner` (the exchanged
/// shard of the partner rank), and `own_bit` says which half of each pair
/// this shard holds. Mirrors [`apply_mat2`]'s arithmetic exactly — same
/// diagonal fast path, same product/sum order — so a sharded run stays
/// bitwise identical to the single-node kernel.
pub fn apply_exchanged_mat2(own: &mut [C64], partner: &[C64], own_bit: usize, m: &Mat2) {
    debug_assert_eq!(own.len(), partner.len());
    debug_assert!(own_bit < 2);
    nwq_telemetry::counter_add("kernels.amplitude_updates", own.len() as u64);
    if mat2_is_diagonal(m) {
        // Single-node takes the diagonal fast path (`amp *= d[bit]`,
        // partner amplitude never read); replicate it or ±0.0 signs from
        // `m00·x + 0·y` diverge bitwise.
        return apply_global_phase1(own, own_bit, m);
    }
    if own_bit == 0 {
        for (a, b) in own.iter_mut().zip(partner) {
            *a = m.0[0][0] * *a + m.0[0][1] * *b;
        }
    } else {
        for (a, b) in own.iter_mut().zip(partner) {
            *a = m.0[1][0] * *b + m.0[1][1] * *a;
        }
    }
}

/// Sharded two-qubit update where the matrix's *high* bit is a global
/// qubit (rank-id bit `own_hi_bit` for this shard) and its *low* bit is
/// the rank-local qubit `lo`. `m` must be prenormalized (high bit first),
/// exactly as [`apply_mat4_prenorm`] expects. Mirrors [`quad_update`]'s
/// row/column order bitwise.
pub fn apply_exchanged_mat4_global_local(
    own: &mut [C64],
    partner: &[C64],
    own_hi_bit: usize,
    lo: usize,
    m: &Mat4,
) {
    debug_assert_eq!(own.len(), partner.len());
    debug_assert!(own_hi_bit < 2);
    debug_assert!(1usize << lo < own.len());
    nwq_telemetry::counter_add("kernels.amplitude_updates", own.len() as u64);
    if mat4_is_diagonal(m) {
        return apply_global_local_phase(own, own_hi_bit, lo, m);
    }
    let m = &{ *m };
    let s_lo = 1usize << lo;
    let lo_block = s_lo << 1;
    for base in (0..own.len()).step_by(lo_block) {
        for i in base..base + s_lo {
            let j = i + s_lo;
            // v indexed (hi bit << 1) | lo bit, matching `quad_update`.
            let v = if own_hi_bit == 0 {
                [own[i], own[j], partner[i], partner[j]]
            } else {
                [partner[i], partner[j], own[i], own[j]]
            };
            let rows = if own_hi_bit == 0 { [0, 1] } else { [2, 3] };
            let r0 = &m.0[rows[0]];
            let r1 = &m.0[rows[1]];
            own[i] = r0[0] * v[0] + r0[1] * v[1] + r0[2] * v[2] + r0[3] * v[3];
            own[j] = r1[0] * v[0] + r1[1] * v[1] + r1[2] * v[2] + r1[3] * v[3];
        }
    }
}

/// Sharded two-qubit update where BOTH qubits are global: four ranks form
/// a quad, each holding one of the four bit positions. `pos` is this
/// shard's position `(hi_bit << 1) | lo_bit`; `others` holds the three
/// partner payloads for the remaining positions in ascending position
/// order. `m` must be prenormalized (numerically higher qubit = matrix
/// high bit). Bitwise-mirrors [`quad_update`].
pub fn apply_exchanged_mat4_global_global(
    own: &mut [C64],
    others: [&[C64]; 3],
    pos: usize,
    m: &Mat4,
) {
    debug_assert!(pos < 4);
    debug_assert!(others.iter().all(|o| o.len() == own.len()));
    nwq_telemetry::counter_add("kernels.amplitude_updates", own.len() as u64);
    if mat4_is_diagonal(m) {
        return apply_global_global_phase(own, pos, m);
    }
    let m = &{ *m };
    let row = &m.0[pos];
    for (k, a) in own.iter_mut().enumerate() {
        let mut v = [C64::default(); 4];
        let mut oi = 0;
        for (p, slot) in v.iter_mut().enumerate() {
            if p == pos {
                *slot = *a;
            } else {
                *slot = others[oi][k];
                oi += 1;
            }
        }
        *a = row[0] * v[0] + row[1] * v[1] + row[2] * v[2] + row[3] * v[3];
    }
}

// ---------------------------------------------------------------------
// Lean-exchange kernels: phase elision, half-shard payloads, and fusion
// mirrors for the sharded executor. Every function here reduces to the
// exact per-element expressions of the single-node kernels above, which
// is what keeps exchange-lean distributed runs bitwise identical.
// ---------------------------------------------------------------------

/// Diagonal single-qubit gate on a *global* qubit: pure local phase, no
/// exchange. Identical arithmetic to the diagonal arm of
/// [`apply_exchanged_mat2`] (and thus to [`apply_mat2`]'s fast path).
pub fn apply_global_phase1(own: &mut [C64], own_bit: usize, m: &Mat2) {
    debug_assert!(own_bit < 2);
    let d = if own_bit == 1 { m.0[1][1] } else { m.0[0][0] };
    for a in own.iter_mut() {
        *a *= d;
    }
}

/// Diagonal two-qubit gate with a global high bit and local low qubit
/// `lo`: pure local phase, no exchange.
pub fn apply_global_local_phase(own: &mut [C64], own_hi_bit: usize, lo: usize, m: &Mat4) {
    debug_assert!(own_hi_bit < 2);
    let d = [m.0[0][0], m.0[1][1], m.0[2][2], m.0[3][3]];
    for (k, a) in own.iter_mut().enumerate() {
        *a *= d[(own_hi_bit << 1) | ((k >> lo) & 1)];
    }
}

/// Diagonal two-qubit gate with both bits global (`pos` = this rank's
/// `(hi_bit << 1) | lo_bit`): one scalar phase, no exchange.
pub fn apply_global_global_phase(own: &mut [C64], pos: usize, m: &Mat4) {
    debug_assert!(pos < 4);
    let d = m.0[pos][pos];
    for a in own.iter_mut() {
        *a *= d;
    }
}

/// Multiplies every amplitude by one scalar — the sub-block-diagonal arm
/// of a block-structured global-global gate (the rank's whole shard sits
/// on one diagonal entry of its sub-block).
pub fn scale_amps(own: &mut [C64], d: C64) {
    for a in own.iter_mut() {
        *a *= d;
    }
}

/// Packs the `lo`-bit == `v` half of a shard into `buf` (cleared first),
/// in ascending index order — the payload layout of a half-shard
/// exchange. The receiver walks the same order ([`apply_exchanged_half`]).
pub fn pack_lo_half(shard: &[C64], lo: usize, v: usize, buf: &mut Vec<C64>) {
    debug_assert!(v < 2);
    let s_lo = 1usize << lo;
    buf.clear();
    buf.reserve(shard.len() / 2);
    for c in shard.chunks(s_lo << 1) {
        buf.extend_from_slice(&c[v * s_lo..(v + 1) * s_lo]);
    }
}

/// Multiplies the `lo`-bit == `v` half of a shard by a scalar — the
/// diagonal sub-block of a lo-block two-qubit gate whose high bit is
/// global (the rank's high bit picks one diagonal entry).
pub fn scale_lo_half(own: &mut [C64], lo: usize, v: usize, d: C64) {
    let s_lo = 1usize << lo;
    for c in own.chunks_mut(s_lo << 1) {
        for a in c[v * s_lo..(v + 1) * s_lo].iter_mut() {
            *a *= d;
        }
    }
}

/// Half-shard exchanged update: applies the dense 2×2 sub-block `m` of a
/// lo-block-structured gate (global high bit, local low qubit `lo`)
/// across the global bit, touching only elements with `lo`-bit == `v`.
/// `packed` is the partner's matching half in [`pack_lo_half`] order.
/// Mirrors [`apply_sub_pairwise`]'s dense arm bitwise.
pub fn apply_exchanged_half(
    own: &mut [C64],
    packed: &[C64],
    own_hi_bit: usize,
    lo: usize,
    v: usize,
    m: &Mat2,
) {
    debug_assert!(own_hi_bit < 2);
    debug_assert_eq!(packed.len(), own.len() / 2);
    nwq_telemetry::counter_add("kernels.amplitude_updates", (own.len() / 2) as u64);
    let s_lo = 1usize << lo;
    let mut p = 0;
    for c in own.chunks_mut(s_lo << 1) {
        for a in c[v * s_lo..(v + 1) * s_lo].iter_mut() {
            let b = packed[p];
            p += 1;
            *a = if own_hi_bit == 0 {
                m.0[0][0] * *a + m.0[0][1] * b
            } else {
                m.0[1][0] * b + m.0[1][1] * *a
            };
        }
    }
}

/// Full-payload exchanged update for a lo-block-structured gate with a
/// global high bit: each `lo` stripe applies its own sub-block across the
/// global bit (`Identity` skipped, `Diag` scaled, `Dense` paired with the
/// partner's value at the same local index).
pub fn apply_exchanged_blocklo(
    own: &mut [C64],
    partner: &[C64],
    own_hi_bit: usize,
    lo: usize,
    shape: &Mat4Shape,
) {
    let Mat4Shape::BlockLo { a, ka, b, kb } = shape else {
        panic!("apply_exchanged_blocklo needs a BlockLo shape");
    };
    debug_assert_eq!(own.len(), partner.len());
    nwq_telemetry::counter_add("kernels.amplitude_updates", own.len() as u64);
    let s_lo = 1usize << lo;
    for (base, c) in own.chunks_mut(s_lo << 1).enumerate() {
        let base = base * (s_lo << 1);
        for (v, (k, m)) in [(ka, a), (kb, b)].iter().enumerate() {
            match k {
                SubKind::Identity => {}
                SubKind::Diag => {
                    let d = if own_hi_bit == 1 {
                        m.0[1][1]
                    } else {
                        m.0[0][0]
                    };
                    for x in c[v * s_lo..(v + 1) * s_lo].iter_mut() {
                        *x *= d;
                    }
                }
                SubKind::Dense => {
                    for (off, x) in c[v * s_lo..(v + 1) * s_lo].iter_mut().enumerate() {
                        let bval = partner[base + v * s_lo + off];
                        *x = if own_hi_bit == 0 {
                            m.0[0][0] * *x + m.0[0][1] * bval
                        } else {
                            m.0[1][0] * bval + m.0[1][1] * *x
                        };
                    }
                }
            }
        }
    }
}

// --- Fusion mirrors -----------------------------------------------------
//
// A fusion window keeps the partner's shard (or packed half) alive in a
// local `copy` so the next global gate on the same qubit can skip its
// exchange. The mirror variants below apply the rank's own update AND
// advance `copy` to the partner's post-gate values — computed with the
// exact expressions the partner itself runs, so a fused replay is
// bitwise indistinguishable from a fresh exchange.

/// [`apply_exchanged_mat2`] (dense arm) that also advances `copy` to the
/// partner's post-gate shard.
pub fn exchange_mirror_mat2(own: &mut [C64], copy: &mut [C64], own_bit: usize, m: &Mat2) {
    debug_assert_eq!(own.len(), copy.len());
    debug_assert!(own_bit < 2);
    nwq_telemetry::counter_add("kernels.amplitude_updates", 2 * own.len() as u64);
    for (a, b) in own.iter_mut().zip(copy.iter_mut()) {
        if own_bit == 0 {
            let (v0, v1) = (*a, *b);
            *a = m.0[0][0] * v0 + m.0[0][1] * v1;
            *b = m.0[1][0] * v0 + m.0[1][1] * v1;
        } else {
            let (v0, v1) = (*b, *a);
            *a = m.0[1][0] * v0 + m.0[1][1] * v1;
            *b = m.0[0][0] * v0 + m.0[0][1] * v1;
        }
    }
}

/// [`apply_exchanged_mat4_global_local`] (dense arm) that also advances
/// `copy` to the partner's post-gate shard.
pub fn exchange_mirror_global_local(
    own: &mut [C64],
    copy: &mut [C64],
    own_hi_bit: usize,
    lo: usize,
    m: &Mat4,
) {
    debug_assert_eq!(own.len(), copy.len());
    debug_assert!(own_hi_bit < 2);
    nwq_telemetry::counter_add("kernels.amplitude_updates", 2 * own.len() as u64);
    let m = &{ *m };
    let s_lo = 1usize << lo;
    let lo_block = s_lo << 1;
    for base in (0..own.len()).step_by(lo_block) {
        for i in base..base + s_lo {
            let j = i + s_lo;
            let v = if own_hi_bit == 0 {
                [own[i], own[j], copy[i], copy[j]]
            } else {
                [copy[i], copy[j], own[i], own[j]]
            };
            let (own_rows, cp_rows) = if own_hi_bit == 0 {
                ([0, 1], [2, 3])
            } else {
                ([2, 3], [0, 1])
            };
            let mac = |r: &[C64; 4]| r[0] * v[0] + r[1] * v[1] + r[2] * v[2] + r[3] * v[3];
            own[i] = mac(&m.0[own_rows[0]]);
            own[j] = mac(&m.0[own_rows[1]]);
            copy[i] = mac(&m.0[cp_rows[0]]);
            copy[j] = mac(&m.0[cp_rows[1]]);
        }
    }
}

/// [`apply_exchanged_blocklo`] that also advances the full-shard `copy`
/// to the partner's post-gate values.
pub fn exchange_mirror_blocklo(
    own: &mut [C64],
    copy: &mut [C64],
    own_hi_bit: usize,
    lo: usize,
    shape: &Mat4Shape,
) {
    let Mat4Shape::BlockLo { a, ka, b, kb } = shape else {
        panic!("exchange_mirror_blocklo needs a BlockLo shape");
    };
    debug_assert_eq!(own.len(), copy.len());
    nwq_telemetry::counter_add("kernels.amplitude_updates", 2 * own.len() as u64);
    let s_lo = 1usize << lo;
    for (c, p) in own.chunks_mut(s_lo << 1).zip(copy.chunks_mut(s_lo << 1)) {
        for (v, (k, m)) in [(ka, a), (kb, b)].iter().enumerate() {
            let rng = v * s_lo..(v + 1) * s_lo;
            match k {
                SubKind::Identity => {}
                SubKind::Diag => {
                    let (d0, d1) = (m.0[0][0], m.0[1][1]);
                    let (dn, dp) = if own_hi_bit == 1 { (d1, d0) } else { (d0, d1) };
                    for x in c[rng.clone()].iter_mut() {
                        *x *= dn;
                    }
                    for x in p[rng.clone()].iter_mut() {
                        *x *= dp;
                    }
                }
                SubKind::Dense => {
                    for (x, y) in c[rng.clone()].iter_mut().zip(p[rng.clone()].iter_mut()) {
                        let (v0, v1) = if own_hi_bit == 0 { (*x, *y) } else { (*y, *x) };
                        let lo_out = m.0[0][0] * v0 + m.0[0][1] * v1;
                        let hi_out = m.0[1][0] * v0 + m.0[1][1] * v1;
                        if own_hi_bit == 0 {
                            *x = lo_out;
                            *y = hi_out;
                        } else {
                            *x = hi_out;
                            *y = lo_out;
                        }
                    }
                }
            }
        }
    }
}

/// [`apply_exchanged_half`] that also advances the packed half `copy` to
/// the partner's post-gate values.
pub fn exchange_mirror_half(
    own: &mut [C64],
    copy: &mut [C64],
    own_hi_bit: usize,
    lo: usize,
    v: usize,
    m: &Mat2,
) {
    debug_assert_eq!(copy.len(), own.len() / 2);
    nwq_telemetry::counter_add("kernels.amplitude_updates", own.len() as u64);
    let s_lo = 1usize << lo;
    let mut p = 0;
    for c in own.chunks_mut(s_lo << 1) {
        for a in c[v * s_lo..(v + 1) * s_lo].iter_mut() {
            let b = &mut copy[p];
            p += 1;
            let (v0, v1) = if own_hi_bit == 0 { (*a, *b) } else { (*b, *a) };
            let lo_out = m.0[0][0] * v0 + m.0[0][1] * v1;
            let hi_out = m.0[1][0] * v0 + m.0[1][1] * v1;
            if own_hi_bit == 0 {
                *a = lo_out;
                *b = hi_out;
            } else {
                *a = hi_out;
                *b = lo_out;
            }
        }
    }
}

/// Applies a diagonal gate's phase to a *packed half* fusion mirror: the
/// copy holds the partner's `window_lo`-bit == `v` half, and the phase of
/// element `p` depends on the bit of qubit `lo2` in its original index
/// (`d0`/`d1` already select for the partner's global bits).
pub fn phase_on_lo_half(
    copy: &mut [C64],
    window_lo: usize,
    v: usize,
    lo2: usize,
    d0: C64,
    d1: C64,
) {
    let s = 1usize << window_lo;
    for (p, a) in copy.iter_mut().enumerate() {
        let orig = (p / s) * (s << 1) + v * s + (p % s);
        *a *= if (orig >> lo2) & 1 == 1 { d1 } else { d0 };
    }
}

/// Probability that qubit `q` measures 1 (parallel reduction).
pub fn prob_one(amps: &[C64], q: usize) -> f64 {
    let body = |(i, a): (usize, &C64)| if (i >> q) & 1 == 1 { a.norm_sqr() } else { 0.0 };
    if amps.len() >= min_par_elems() {
        amps.par_iter().enumerate().map(body).sum()
    } else {
        amps.iter().enumerate().map(body).sum()
    }
}

/// Collapses qubit `q` to `outcome` and renormalizes. `prob` is the
/// probability of that outcome (precomputed by the caller from
/// [`prob_one`]).
///
/// Errors if `prob` is not a positive finite number: collapsing onto a
/// zero-probability outcome has no defined post-measurement state (the
/// unguarded `1/√prob` would silently fill the state with `inf`/NaN).
pub fn collapse(amps: &mut [C64], q: usize, outcome: bool, prob: f64) -> Result<()> {
    if !(prob > 0.0 && prob.is_finite()) {
        return Err(Error::Invalid(format!(
            "cannot collapse qubit {q} to outcome {}: probability {prob} is not positive",
            outcome as u8
        )));
    }
    let inv = 1.0 / prob.sqrt();
    let body = |(i, a): (usize, &mut C64)| {
        if ((i >> q) & 1 == 1) == outcome {
            *a = *a * inv;
        } else {
            *a = C64::default();
        }
    };
    if amps.len() >= min_par_elems() {
        amps.par_iter_mut().enumerate().for_each(body);
    } else {
        amps.iter_mut().enumerate().for_each(body);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwq_circuit::reference;
    use nwq_common::mat::{mat_cp, mat_cx, mat_cz, mat_h, mat_rz, mat_rzz, mat_swap, mat_x, mat_y};
    use nwq_common::{C_ONE, C_ZERO};

    fn zero(n: usize) -> Vec<C64> {
        let mut v = vec![C_ZERO; 1 << n];
        v[0] = C_ONE;
        v
    }

    fn rand_state(n: usize, seed: u64) -> Vec<C64> {
        let mut v: Vec<C64> = (0..1usize << n)
            .map(|i| {
                let t = (i as f64 + seed as f64 * 0.77).sin();
                C64::new(t, (t * 1.7).cos())
            })
            .collect();
        let norm: f64 = v.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
        for a in &mut v {
            *a = *a * (1.0 / norm);
        }
        v
    }

    #[test]
    fn x_kernel_on_each_qubit() {
        for n in 1..=4 {
            for q in 0..n {
                let mut amps = zero(n);
                apply_mat2(&mut amps, q, &mat_x());
                assert!(amps[1 << q].approx_eq(C_ONE, 1e-12), "n={n} q={q}");
            }
        }
    }

    #[test]
    fn kernels_match_reference_mat2() {
        for q in 0..5 {
            for m in [mat_h(), mat_x(), mat_y(), mat_rz(0.7)] {
                let psi = rand_state(5, q as u64);
                let mut fast = psi.clone();
                apply_mat2(&mut fast, q, &m);
                let slow = reference::apply_mat2(&psi, q, &m);
                for (a, b) in fast.iter().zip(&slow) {
                    assert!(a.approx_eq(*b, 1e-10), "q={q}");
                }
            }
        }
    }

    #[test]
    fn kernels_match_reference_mat4() {
        for qa in 0..4 {
            for qb in 0..4 {
                if qa == qb {
                    continue;
                }
                for m in [mat_cx(), mat_cz(), mat_swap(), mat_rzz(0.9), mat_cp(0.4)] {
                    let psi = rand_state(4, (qa * 7 + qb) as u64);
                    let mut fast = psi.clone();
                    apply_mat4(&mut fast, qa, qb, &m);
                    let slow = reference::apply_mat4(&psi, qa, qb, &m);
                    for (a, b) in fast.iter().zip(&slow) {
                        assert!(a.approx_eq(*b, 1e-10), "qa={qa} qb={qb}");
                    }
                }
            }
        }
    }

    #[test]
    fn diagonal_fast_path_matches_general() {
        let psi = rand_state(6, 3);
        let mut fast = psi.clone();
        apply_mat2(&mut fast, 2, &mat_rz(1.1));
        // Force the general path with an equivalent non-detected matrix:
        // slight perturbation of the off-diagonals keeps it the same matrix
        // numerically (norm 0 entries), so instead compare to the reference.
        let slow = reference::apply_mat2(&psi, 2, &mat_rz(1.1));
        for (a, b) in fast.iter().zip(&slow) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn big_state_parallel_paths() {
        // Large enough to hit the Rayon branches; verify norm preservation
        // and a known outcome.
        let n = 14;
        let mut amps = zero(n);
        apply_mat2(&mut amps, 0, &mat_h());
        apply_mat2(&mut amps, n - 1, &mat_h()); // high qubit: inner-split path
        apply_mat4(&mut amps, 0, n - 1, &mat_cx());
        apply_mat4(&mut amps, n - 2, 1, &mat_rzz(0.3));
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        assert!((norm - 1.0).abs() < 1e-10);
    }

    #[test]
    fn bell_via_kernels() {
        let mut amps = zero(2);
        apply_mat2(&mut amps, 0, &mat_h());
        apply_mat4(&mut amps, 0, 1, &mat_cx());
        // CX(control=arg0 high bit). amps convention check vs reference.
        let slow = {
            let mut c = nwq_circuit::Circuit::new(2);
            c.h(0).cx(0, 1);
            reference::run(&c, &[]).unwrap()
        };
        for (a, b) in amps.iter().zip(&slow) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn diag_sweep_matches_sequential_application() {
        // RZ(0), CZ(1,3), CP(2,0), RZZ(3,1) applied one by one vs one sweep.
        for n in [4usize, 12] {
            let psi = rand_state(n, 11);
            let rz = mat_rz(0.83);
            let cz = mat_cz();
            let cp = mat_cp(-0.4);
            let rzz = mat_rzz(1.3);
            let mut seq = psi.clone();
            apply_mat2(&mut seq, 0, &rz);
            apply_mat4(&mut seq, 1, 3, &cz);
            apply_mat4(&mut seq, 2, 0, &cp);
            apply_mat4(&mut seq, 3, 1, &rzz);
            let factors = [
                DiagFactor::One {
                    q: 0,
                    d: [rz.0[0][0], rz.0[1][1]],
                },
                // (1,3) stored hi=3, lo=1 needs the swapped matrix; cz/rzz
                // are swap-symmetric, cp too, so entries read off directly.
                DiagFactor::Two {
                    hi: 3,
                    lo: 1,
                    d: [cz.0[0][0], cz.0[1][1], cz.0[2][2], cz.0[3][3]],
                },
                DiagFactor::Two {
                    hi: 2,
                    lo: 0,
                    d: [cp.0[0][0], cp.0[1][1], cp.0[2][2], cp.0[3][3]],
                },
                DiagFactor::Two {
                    hi: 3,
                    lo: 1,
                    d: [rzz.0[0][0], rzz.0[1][1], rzz.0[2][2], rzz.0[3][3]],
                },
            ];
            let mut swept = psi.clone();
            apply_diag_sweep(&mut swept, &factors);
            // The sweep multiplies each factor in place, exactly like the
            // per-gate diagonal fast paths: bitwise identical, not approx.
            for (a, b) in swept.iter().zip(&seq) {
                assert_eq!(a.re.to_bits(), b.re.to_bits(), "n={n}");
                assert_eq!(a.im.to_bits(), b.im.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn one_factor_sweep_is_bitwise_the_diagonal_fast_path() {
        let psi = rand_state(5, 9);
        let rzz = mat_rzz(0.61);
        let mut direct = psi.clone();
        apply_mat4(&mut direct, 1, 4, &rzz); // normalizes to hi=4, lo=1
        let swapped = rzz.swap_qubits();
        let mut swept = psi.clone();
        apply_diag_sweep(
            &mut swept,
            &[DiagFactor::Two {
                hi: 4,
                lo: 1,
                d: [
                    swapped.0[0][0],
                    swapped.0[1][1],
                    swapped.0[2][2],
                    swapped.0[3][3],
                ],
            }],
        );
        for (a, b) in swept.iter().zip(&direct) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    #[test]
    fn prenorm_entry_matches_general_wrapper() {
        for (qa, qb) in [(3, 1), (1, 3)] {
            let psi = rand_state(5, 21);
            let m = mat_cx();
            let mut via_wrapper = psi.clone();
            apply_mat4(&mut via_wrapper, qa, qb, &m);
            let (hi, lo, mat) = if qa > qb {
                (qa, qb, m)
            } else {
                (qb, qa, m.swap_qubits())
            };
            let mut via_prenorm = psi.clone();
            apply_mat4_prenorm(&mut via_prenorm, hi, lo, &mat);
            for (a, b) in via_prenorm.iter().zip(&via_wrapper) {
                assert_eq!(a.re.to_bits(), b.re.to_bits(), "qa={qa} qb={qb}");
                assert_eq!(a.im.to_bits(), b.im.to_bits(), "qa={qa} qb={qb}");
            }
        }
    }

    #[test]
    fn thresholds_track_pool_width() {
        // Parallel dispatch on a single-thread pool is pure overhead (the
        // 18-qubit calibration measured 163 M vs 304 M updates/s), so the
        // effective thresholds must disable it entirely there.
        if parallel_dispatch_enabled() {
            assert_eq!(min_par_blocks(), MIN_PAR_BLOCKS);
            assert_eq!(min_par_elems(), MIN_PAR_ELEMS);
        } else {
            assert_eq!(min_par_blocks(), usize::MAX);
            assert_eq!(min_par_elems(), usize::MAX);
        }
    }

    #[test]
    fn diag_sweep_empty_is_identity() {
        let psi = rand_state(3, 5);
        let mut swept = psi.clone();
        apply_diag_sweep(&mut swept, &[]);
        assert_eq!(swept, psi);
    }

    #[test]
    fn serial_kernels_match_parallel() {
        let n = 12; // crosses MIN_PAR_ELEMS so the parallel paths engage
        for q in [0, 5, n - 1] {
            let psi = rand_state(n, q as u64);
            let mut par = psi.clone();
            let mut ser = psi.clone();
            apply_mat2(&mut par, q, &mat_h());
            apply_mat2_serial(&mut ser, q, &mat_h());
            for (a, b) in par.iter().zip(&ser) {
                assert!(a.approx_eq(*b, 1e-12), "q={q}");
            }
        }
        for (qa, qb) in [(0, 1), (n - 1, 2), (3, n - 2)] {
            for m in [mat_cx(), mat_rzz(0.7)] {
                let psi = rand_state(n, (qa * 31 + qb) as u64);
                let mut par = psi.clone();
                let mut ser = psi.clone();
                apply_mat4(&mut par, qa, qb, &m);
                apply_mat4_serial(&mut ser, qa, qb, &m);
                for (a, b) in par.iter().zip(&ser) {
                    assert!(a.approx_eq(*b, 1e-12), "qa={qa} qb={qb}");
                }
            }
        }
    }

    /// Splits a full register into `2^n_global` rank shards.
    fn shards(full: &[C64], n_global: usize) -> Vec<Vec<C64>> {
        let n_ranks = 1usize << n_global;
        let part = full.len() / n_ranks;
        (0..n_ranks)
            .map(|r| full[r * part..(r + 1) * part].to_vec())
            .collect()
    }

    fn assert_bitwise(sharded: &[Vec<C64>], full: &[C64], ctx: &str) {
        let part = sharded[0].len();
        for (r, shard) in sharded.iter().enumerate() {
            for (k, a) in shard.iter().enumerate() {
                let b = full[r * part + k];
                assert_eq!(a.re.to_bits(), b.re.to_bits(), "{ctx} rank={r} k={k}");
                assert_eq!(a.im.to_bits(), b.im.to_bits(), "{ctx} rank={r} k={k}");
            }
        }
    }

    #[test]
    fn exchanged_mat2_bitwise_matches_single_node() {
        let n = 4;
        let n_local = 3; // 2 ranks, qubit 3 global
        for m in [mat_h(), mat_x(), mat_y(), mat_rz(0.7)] {
            let psi = rand_state(n, 17);
            let mut full = psi.clone();
            apply_mat2(&mut full, 3, &m);
            let pre = shards(&psi, n - n_local);
            let mut post = pre.clone();
            for (r, shard) in post.iter_mut().enumerate() {
                let own_bit = r & 1;
                apply_exchanged_mat2(shard, &pre[r ^ 1], own_bit, &m);
            }
            assert_bitwise(&post, &full, "mat2");
        }
    }

    #[test]
    fn exchanged_mat4_global_local_bitwise_matches_single_node() {
        let n = 4;
        let n_local = 2; // 4 ranks, qubits 2,3 global
        for (qa, qb) in [(3usize, 1usize), (1, 3)] {
            for m in [mat_cx(), mat_swap(), mat_rzz(0.9), mat_cz()] {
                let psi = rand_state(n, 23);
                let mut full = psi.clone();
                apply_mat4(&mut full, qa, qb, &m);
                // Prenormalize exactly like apply_mat4: hi > lo, matrix
                // swapped when the first argument is the low qubit.
                let mat = if qa > qb { m } else { m.swap_qubits() };
                let (hi, lo) = (qa.max(qb), qa.min(qb));
                let gbit = hi - n_local;
                let pre = shards(&psi, n - n_local);
                let mut post = pre.clone();
                for (r, shard) in post.iter_mut().enumerate() {
                    let own_hi_bit = (r >> gbit) & 1;
                    let partner = r ^ (1 << gbit);
                    apply_exchanged_mat4_global_local(shard, &pre[partner], own_hi_bit, lo, &mat);
                }
                assert_bitwise(&post, &full, "mat4 gl");
            }
        }
    }

    #[test]
    fn exchanged_mat4_global_global_bitwise_matches_single_node() {
        let n = 4;
        let n_local = 2; // 4 ranks, qubits 2,3 global
        for (qa, qb) in [(2usize, 3usize), (3, 2)] {
            for m in [mat_cx(), mat_swap(), mat_cz(), mat_cp(0.4)] {
                let psi = rand_state(n, 31);
                let mut full = psi.clone();
                apply_mat4(&mut full, qa, qb, &m);
                let mat = if qa > qb { m } else { m.swap_qubits() };
                let (hi, lo) = (qa.max(qb), qa.min(qb));
                let (bhi, blo) = (hi - n_local, lo - n_local);
                let pre = shards(&psi, n - n_local);
                let mut post = pre.clone();
                for (r, shard) in post.iter_mut().enumerate() {
                    let pos = (((r >> bhi) & 1) << 1) | ((r >> blo) & 1);
                    let mates: Vec<&[C64]> = (0..4)
                        .filter(|&p| p != pos)
                        .map(|p| {
                            let mut mate = r;
                            mate = (mate & !(1 << bhi)) | (((p >> 1) & 1) << bhi);
                            mate = (mate & !(1 << blo)) | ((p & 1) << blo);
                            pre[mate].as_slice()
                        })
                        .collect();
                    apply_exchanged_mat4_global_global(
                        shard,
                        [mates[0], mates[1], mates[2]],
                        pos,
                        &mat,
                    );
                }
                assert_bitwise(&post, &full, "mat4 gg");
            }
        }
    }

    #[test]
    fn prob_and_collapse() {
        let mut amps = zero(2);
        apply_mat2(&mut amps, 1, &mat_h());
        assert!((prob_one(&amps, 1) - 0.5).abs() < 1e-12);
        assert!(prob_one(&amps, 0) < 1e-12);
        let p = prob_one(&amps, 1);
        collapse(&mut amps, 1, true, p).unwrap();
        assert!((prob_one(&amps, 1) - 1.0).abs() < 1e-12);
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        assert!((norm - 1.0).abs() < 1e-12);
    }

    #[test]
    fn collapse_impossible_outcome_is_an_error() {
        // |00⟩: qubit 1 can never measure 1. Before the guard, this filled
        // the state with inf (1/√0) and silently corrupted later math.
        let mut amps = zero(2);
        let p = prob_one(&amps, 1);
        assert!(p < 1e-300);
        let err = collapse(&mut amps, 1, true, p);
        assert!(err.is_err(), "collapse onto p=0 outcome must fail");
        // The state must be untouched by the failed collapse.
        assert!(amps[0].approx_eq(C_ONE, 1e-15));
        assert!(amps.iter().all(|a| a.norm_sqr().is_finite()));
        // NaN and negative probabilities are rejected too.
        assert!(collapse(&mut amps, 0, false, f64::NAN).is_err());
        assert!(collapse(&mut amps, 0, false, -0.25).is_err());
        assert!(collapse(&mut amps, 0, false, f64::INFINITY).is_err());
        // A legitimate collapse still works.
        collapse(&mut amps, 1, false, 1.0).unwrap();
        assert!(amps[0].approx_eq(C_ONE, 1e-15));
    }
}
