//! Global LRU cache of [`PlanTemplate`]s keyed by circuit structure.
//!
//! Building a template (the structural fusion pass plus constant folding)
//! is the expensive half of plan compilation; binding θ is microseconds.
//! This cache makes [`crate::ExecPlan::compile`] amortize the build across
//! every evaluation of the same circuit shape — within one optimizer run,
//! across `PostAnsatzCache` invalidations, and across jobs on all
//! `nwq-serve` workers (the cache is process-global and thread-safe).
//!
//! The key is an exact encoding of everything θ-independent that shapes
//! the template: register width, declared parameter count, and each
//! gate's variant, operands, parameter expressions (including constant
//! angles — those fold into the template matrices) and fused-matrix bits.
//! A 64-bit FNV-1a fingerprint prunes comparisons; equality is always
//! confirmed against the full key, so collisions cannot alias templates.
//!
//! Telemetry: `plan.cache.hits` / `plan.cache.misses` /
//! `plan.cache.evictions` counters and the `plan.cache.size` gauge.

use crate::adjoint::AdjointTemplate;
use crate::plan::PlanTemplate;
use nwq_circuit::{Circuit, Gate, ParamExpr};
use nwq_common::Result;
use parking_lot::Mutex;
use std::sync::Arc;

/// Maximum number of cached templates; least-recently-used beyond this.
pub const CAPACITY: usize = 64;

struct Entry {
    fingerprint: u64,
    key: Vec<u64>,
    template: Arc<PlanTemplate>,
    /// Dagger/derivative metadata, derived lazily on the first gradient
    /// request for this shape and evicted together with the template.
    adjoint: Option<Arc<AdjointTemplate>>,
    last_used: u64,
}

struct Inner {
    entries: Vec<Entry>,
    tick: u64,
}

static CACHE: Mutex<Inner> = Mutex::new(Inner {
    entries: Vec::new(),
    tick: 0,
});

fn push_expr(key: &mut Vec<u64>, e: &ParamExpr) {
    match *e {
        ParamExpr::Const(v) => {
            key.push(0);
            key.push(v.to_bits());
        }
        ParamExpr::Var {
            index,
            coeff,
            offset,
        } => {
            key.push(1);
            key.push(index as u64);
            key.push(coeff.to_bits());
            key.push(offset.to_bits());
        }
    }
}

/// Exact structural key: equal keys ⇔ identical templates.
fn structural_key(circuit: &Circuit) -> Vec<u64> {
    // Rough capacity: tag + 2 qubits + ~4 expr words per gate.
    let mut key = Vec::with_capacity(3 + circuit.len() * 7);
    key.push(circuit.n_qubits() as u64);
    key.push(circuit.n_params() as u64);
    key.push(circuit.len() as u64);
    for gate in circuit.gates() {
        // The mnemonic is unique per variant and ≤ 8 bytes: pack it as
        // the variant tag.
        let mut tag = 0u64;
        for b in gate.name().bytes() {
            tag = (tag << 8) | b as u64;
        }
        key.push(tag);
        for q in gate.qubits() {
            key.push(q as u64);
        }
        for e in gate.param_exprs() {
            push_expr(&mut key, &e);
        }
        match gate {
            Gate::Fused1(_, m) => {
                for row in &m.0 {
                    for c in row {
                        key.push(c.re.to_bits());
                        key.push(c.im.to_bits());
                    }
                }
            }
            Gate::Fused2(_, _, m) => {
                for row in &m.0 {
                    for c in row {
                        key.push(c.re.to_bits());
                        key.push(c.im.to_bits());
                    }
                }
            }
            _ => {}
        }
    }
    key
}

fn fingerprint(key: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &word in key {
        for byte in word.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn lookup(fp: u64, key: &[u64]) -> Option<Arc<PlanTemplate>> {
    let mut inner = CACHE.lock();
    inner.tick += 1;
    let tick = inner.tick;
    inner
        .entries
        .iter_mut()
        .find(|e| e.fingerprint == fp && e.key == key)
        .map(|e| {
            e.last_used = tick;
            e.template.clone()
        })
}

fn insert(fp: u64, key: Vec<u64>, template: Arc<PlanTemplate>) -> Arc<PlanTemplate> {
    let mut inner = CACHE.lock();
    inner.tick += 1;
    let tick = inner.tick;
    // Another thread may have built the same template while we did; keep
    // the canonical copy so concurrent callers share one allocation.
    if let Some(e) = inner
        .entries
        .iter_mut()
        .find(|e| e.fingerprint == fp && e.key == key)
    {
        e.last_used = tick;
        return e.template.clone();
    }
    if inner.entries.len() >= CAPACITY {
        if let Some((idx, _)) = inner
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.last_used)
        {
            inner.entries.swap_remove(idx);
            nwq_telemetry::counter_add("plan.cache.evictions", 1);
        }
    }
    inner.entries.push(Entry {
        fingerprint: fp,
        key,
        template: template.clone(),
        adjoint: None,
        last_used: tick,
    });
    nwq_telemetry::gauge_set("plan.cache.size", inner.entries.len() as f64);
    template
}

/// Returns the cached template for `circuit`'s structure, building and
/// inserting it on first sight. The build happens outside the cache lock;
/// losing a build race returns the canonical cached copy.
pub fn template_for(circuit: &Circuit) -> Result<Arc<PlanTemplate>> {
    let key = structural_key(circuit);
    let fp = fingerprint(&key);
    if let Some(t) = lookup(fp, &key) {
        nwq_telemetry::counter_add("plan.cache.hits", 1);
        return Ok(t);
    }
    nwq_telemetry::counter_add("plan.cache.misses", 1);
    let template = Arc::new(PlanTemplate::build(circuit)?);
    Ok(insert(fp, key, template))
}

/// Returns the cached [`AdjointTemplate`] for `circuit`'s structure,
/// deriving it from the forward template on first request (one
/// `plan.dagger_compiled` bump per shape, not per gradient). Losing a
/// derive race returns the canonical cached copy; an entry evicted
/// between derive and store still yields a valid template, it just isn't
/// cached.
pub fn adjoint_for(circuit: &Circuit) -> Result<Arc<AdjointTemplate>> {
    let template = template_for(circuit)?;
    let key = structural_key(circuit);
    let fp = fingerprint(&key);
    {
        let mut inner = CACHE.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(e) = inner
            .entries
            .iter_mut()
            .find(|e| e.fingerprint == fp && e.key == key)
        {
            e.last_used = tick;
            if let Some(adj) = &e.adjoint {
                nwq_telemetry::counter_add("plan.cache.dagger_hits", 1);
                return Ok(adj.clone());
            }
        }
    }
    // Derive outside the lock: the scan is cheap but there is no reason
    // to serialize concurrent gradient callers on it.
    let adjoint = Arc::new(AdjointTemplate::build(template));
    nwq_telemetry::counter_add("plan.dagger_compiled", 1);
    let mut inner = CACHE.lock();
    if let Some(e) = inner
        .entries
        .iter_mut()
        .find(|e| e.fingerprint == fp && e.key == key)
    {
        if let Some(existing) = &e.adjoint {
            return Ok(existing.clone());
        }
        e.adjoint = Some(adjoint.clone());
    }
    Ok(adjoint)
}

/// Number of templates currently cached.
pub fn len() -> usize {
    CACHE.lock().entries.len()
}

/// Drops every cached template. Intended for tests that assert build
/// counts; safe at any time (outstanding `Arc`s stay valid).
pub fn clear() {
    CACHE.lock().entries.clear();
    nwq_telemetry::gauge_set("plan.cache.size", 0.0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwq_circuit::ParamExpr;

    fn param_circuit(angle_offset: f64) -> Circuit {
        let mut c = Circuit::new(2);
        c.ry(0, ParamExpr::var(0)).cx(0, 1).rz(1, angle_offset);
        c
    }

    #[test]
    fn same_structure_shares_one_template() {
        let a = template_for(&param_circuit(0.25)).unwrap();
        let b = template_for(&param_circuit(0.25)).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn different_const_angles_are_different_structures() {
        // Constant angles fold into template matrices, so they are part
        // of the structure.
        let a = template_for(&param_circuit(0.25)).unwrap();
        let b = template_for(&param_circuit(0.75)).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn capacity_bounds_cache_size() {
        for i in 0..(CAPACITY + 8) {
            let mut c = Circuit::new(8);
            // Distinct structures: vary the target qubit.
            c.h(i % 8).rz((i / 8) % 8, 0.1 + i as f64);
            template_for(&c).unwrap();
        }
        assert!(len() <= CAPACITY);
    }

    #[test]
    fn clear_resets_and_rebuild_matches_bitwise() {
        let c = param_circuit(0.5);
        let before = template_for(&c).unwrap().bind(&[0.3]).unwrap();
        clear();
        let after = template_for(&c).unwrap().bind(&[0.3]).unwrap();
        assert_eq!(before.ops().len(), after.ops().len());
        for (x, y) in before.factors().iter().zip(after.factors()) {
            assert_eq!(x, y);
        }
    }
}
