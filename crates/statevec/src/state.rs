//! The statevector container.

use nwq_common::bits::{dim, statevector_bytes};
use nwq_common::{Error, Result, C64, C_ONE, C_ZERO};
use nwq_pauli::PauliOp;

/// A full statevector over `n` qubits: `2^n` complex amplitudes with qubit
/// 0 at the least significant index bit. This is the object whose memory
/// footprint paper Fig 1c plots (16 bytes per amplitude).
#[derive(Clone, Debug, PartialEq)]
pub struct StateVector {
    n_qubits: usize,
    amps: Vec<C64>,
}

impl StateVector {
    /// `|0…0⟩` on `n_qubits`.
    pub fn zero(n_qubits: usize) -> Self {
        let mut amps = vec![C_ZERO; dim(n_qubits)];
        amps[0] = C_ONE;
        StateVector { n_qubits, amps }
    }

    /// A computational basis state `|index⟩`.
    pub fn basis(n_qubits: usize, index: usize) -> Result<Self> {
        let d = dim(n_qubits);
        if index >= d {
            return Err(Error::Invalid(format!(
                "basis index {index} out of range {d}"
            )));
        }
        let mut amps = vec![C_ZERO; d];
        amps[index] = C_ONE;
        Ok(StateVector { n_qubits, amps })
    }

    /// Wraps raw amplitudes (must have power-of-two length matching some
    /// qubit count). The state is *not* renormalized.
    pub fn from_amplitudes(amps: Vec<C64>) -> Result<Self> {
        let len = amps.len();
        if len == 0 || !len.is_power_of_two() {
            return Err(Error::Invalid(format!(
                "length {len} is not a power of two"
            )));
        }
        Ok(StateVector {
            n_qubits: len.trailing_zeros() as usize,
            amps,
        })
    }

    /// Register width.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of amplitudes (`2^n`).
    #[inline]
    pub fn len(&self) -> usize {
        self.amps.len()
    }

    /// `false` — a statevector always has at least one amplitude; provided
    /// for clippy-friendly symmetry with `len`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.amps.is_empty()
    }

    /// Immutable amplitude slice.
    #[inline]
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Mutable amplitude slice (used by the gate kernels).
    #[inline]
    pub fn amplitudes_mut(&mut self) -> &mut [C64] {
        &mut self.amps
    }

    /// Consumes the state, returning its amplitudes.
    pub fn into_amplitudes(self) -> Vec<C64> {
        self.amps
    }

    /// Squared 2-norm (should be 1 for a physical state).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Rescales to unit norm. Errors on the zero vector.
    pub fn normalize(&mut self) -> Result<()> {
        let n = self.norm_sqr().sqrt();
        if n <= 0.0 || !n.is_finite() {
            return Err(Error::Numerical(
                "cannot normalize zero/non-finite state".into(),
            ));
        }
        let inv = 1.0 / n;
        for a in &mut self.amps {
            *a = *a * inv;
        }
        Ok(())
    }

    /// Probability of observing basis state `index`.
    pub fn probability(&self, index: usize) -> f64 {
        self.amps[index].norm_sqr()
    }

    /// Inner product `⟨self|other⟩`.
    pub fn inner(&self, other: &StateVector) -> Result<C64> {
        if self.n_qubits != other.n_qubits {
            return Err(Error::DimensionMismatch {
                expected: self.n_qubits,
                got: other.n_qubits,
            });
        }
        Ok(self
            .amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| a.conj() * *b)
            .sum())
    }

    /// Fidelity `|⟨self|other⟩|²`.
    pub fn fidelity(&self, other: &StateVector) -> Result<f64> {
        Ok(self.inner(other)?.norm_sqr())
    }

    /// Exact expectation value `⟨ψ|H|ψ⟩` via the direct method (paper §4.2).
    pub fn expectation(&self, op: &PauliOp) -> Result<C64> {
        nwq_pauli::apply::expectation_op(op, &self.amps)
    }

    /// Real energy `Re⟨ψ|H|ψ⟩`.
    pub fn energy(&self, op: &PauliOp) -> Result<f64> {
        Ok(self.expectation(op)?.re)
    }

    /// Bytes of amplitude storage this state occupies (Fig 1c).
    pub fn memory_bytes(&self) -> u128 {
        statevector_bytes(self.n_qubits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_state_properties() {
        let s = StateVector::zero(3);
        assert_eq!(s.len(), 8);
        assert_eq!(s.n_qubits(), 3);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
        assert!((s.probability(0) - 1.0).abs() < 1e-12);
        assert!(!s.is_empty());
    }

    #[test]
    fn basis_state() {
        let s = StateVector::basis(2, 3).unwrap();
        assert!((s.probability(3) - 1.0).abs() < 1e-12);
        assert!(StateVector::basis(2, 4).is_err());
    }

    #[test]
    fn from_amplitudes_validation() {
        assert!(StateVector::from_amplitudes(vec![C_ONE; 3]).is_err());
        assert!(StateVector::from_amplitudes(Vec::new()).is_err());
        let s = StateVector::from_amplitudes(vec![C_ONE, C_ZERO]).unwrap();
        assert_eq!(s.n_qubits(), 1);
    }

    #[test]
    fn normalize_rescales() {
        let mut s = StateVector::from_amplitudes(vec![C64::real(3.0), C64::real(4.0)]).unwrap();
        s.normalize().unwrap();
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
        assert!((s.probability(0) - 0.36).abs() < 1e-12);
        let mut z = StateVector::from_amplitudes(vec![C_ZERO, C_ZERO]).unwrap();
        assert!(z.normalize().is_err());
    }

    #[test]
    fn inner_and_fidelity() {
        let a = StateVector::zero(2);
        let b = StateVector::basis(2, 0).unwrap();
        assert!(a.inner(&b).unwrap().approx_eq(C_ONE, 1e-12));
        assert!((a.fidelity(&b).unwrap() - 1.0).abs() < 1e-12);
        let c = StateVector::basis(2, 1).unwrap();
        assert!(a.fidelity(&c).unwrap() < 1e-12);
        assert!(a.inner(&StateVector::zero(3)).is_err());
    }

    #[test]
    fn expectation_through_state() {
        let h = PauliOp::parse("1.0 ZZ").unwrap();
        let s = StateVector::basis(2, 1).unwrap();
        assert!((s.energy(&h).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn memory_accounting() {
        assert_eq!(StateVector::zero(10).memory_bytes(), 16 * 1024);
        // Paper Fig 1c: ~16 GB at 30 qubits.
        assert_eq!(nwq_common::bits::statevector_bytes(30), 17_179_869_184);
    }
}
