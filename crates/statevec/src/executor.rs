//! Circuit execution on the parallel statevector kernels.

use crate::kernels::{
    apply_diag_sweep, apply_mat2, apply_mat4, apply_mat4_prenorm, apply_mat4_shaped,
    mat2_is_diagonal, DiagFactor, Mat4Shape,
};
use crate::plan::{ExecPlan, PlanOp};
use crate::state::StateVector;
use crate::stats::ExecStats;
use crate::walkers::{self, WalkerSet};
use nwq_circuit::{Circuit, Gate, GateMatrix};
use nwq_common::{Error, Mat2, Mat4, Result};

/// Post-sweep numerical health checks (paper-scale runs accumulate norm
/// drift over millions of kernel sweeps; hardware faults show up as NaN/Inf
/// amplitudes). The check is one `norm_sqr` pass, amortized over
/// `check_interval` circuit runs so the steady-state overhead stays well
/// under 1% of the plan sweeps it guards.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NormGuard {
    /// Master switch; disabled guards cost nothing.
    pub enabled: bool,
    /// Renormalize when `|‖ψ‖² − 1|` exceeds this.
    pub tolerance: f64,
    /// Check once every this many circuit runs (0 is treated as 1).
    pub check_interval: u64,
}

impl Default for NormGuard {
    fn default() -> Self {
        NormGuard {
            enabled: true,
            tolerance: 1e-6,
            check_interval: 8,
        }
    }
}

impl NormGuard {
    /// A guard that checks after every circuit run — what the fault tests
    /// use so injected drift is caught on the very next sweep.
    pub fn strict() -> Self {
        NormGuard {
            enabled: true,
            tolerance: 1e-9,
            check_interval: 1,
        }
    }

    /// A disabled guard (pre-resilience behavior).
    pub fn disabled() -> Self {
        NormGuard {
            enabled: false,
            ..NormGuard::default()
        }
    }
}

/// Executes circuits against statevectors, accumulating gate statistics.
#[derive(Debug, Default)]
pub struct Executor {
    stats: ExecStats,
    guard: NormGuard,
    runs_since_check: u64,
}

impl Executor {
    /// A fresh executor with zeroed counters and the default norm guard.
    pub fn new() -> Self {
        Executor::default()
    }

    /// A fresh executor with an explicit health-check policy.
    pub fn with_guard(guard: NormGuard) -> Self {
        Executor {
            guard,
            ..Executor::default()
        }
    }

    /// The active health-check policy.
    pub fn guard(&self) -> NormGuard {
        self.guard
    }

    /// Replaces the health-check policy.
    pub fn set_guard(&mut self, guard: NormGuard) {
        self.guard = guard;
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Resets the counters.
    pub fn reset_stats(&mut self) {
        self.stats = ExecStats::default();
    }

    /// Amortized post-sweep health check: every `check_interval` circuit
    /// runs, verify the state norm is finite (NaN/Inf → `Error::Numerical`,
    /// the caller's retry layer decides what to do) and renormalize away
    /// accumulated drift beyond the tolerance.
    fn health_check(&mut self, state: &mut StateVector) -> Result<()> {
        if !self.guard.enabled {
            return Ok(());
        }
        self.runs_since_check += 1;
        if self.runs_since_check < self.guard.check_interval.max(1) {
            return Ok(());
        }
        self.runs_since_check = 0;
        nwq_telemetry::counter_add("resilience.norm_checks", 1);
        let norm2 = state.norm_sqr();
        if !norm2.is_finite() {
            nwq_telemetry::counter_add("resilience.nonfinite_detected", 1);
            return Err(Error::Numerical(
                "non-finite amplitudes detected after kernel sweep".into(),
            ));
        }
        if (norm2 - 1.0).abs() > self.guard.tolerance {
            state.normalize()?;
            nwq_telemetry::counter_add("resilience.renormalizations", 1);
        }
        Ok(())
    }

    /// Applies `circuit` (with `params` bound) to `state` in place.
    pub fn run_on(
        &mut self,
        circuit: &Circuit,
        params: &[f64],
        state: &mut StateVector,
    ) -> Result<()> {
        if circuit.n_qubits() != state.n_qubits() {
            return Err(Error::DimensionMismatch {
                expected: state.n_qubits(),
                got: circuit.n_qubits(),
            });
        }
        self.stats.circuits_run += 1;
        nwq_telemetry::counter_add("executor.circuits_run", 1);
        let _span = nwq_telemetry::span!("executor.run");
        let dim = state.len() as u64;
        let mut gates_1q = 0u64;
        let mut gates_2q = 0u64;
        let mut fused = 0u64;
        for gate in circuit.gates() {
            if matches!(gate, Gate::Fused1(..) | Gate::Fused2(..)) {
                self.stats.fused_blocks += 1;
                fused += 1;
            }
            match gate.matrix(params)? {
                GateMatrix::One(q, m) => {
                    apply_mat2(state.amplitudes_mut(), q, &m);
                    self.stats.gates_1q += 1;
                    self.stats.amplitude_updates += dim;
                    gates_1q += 1;
                }
                GateMatrix::Two(a, b, m) => {
                    apply_mat4(state.amplitudes_mut(), a, b, &m);
                    self.stats.gates_2q += 1;
                    self.stats.amplitude_updates += dim;
                    gates_2q += 1;
                }
            }
        }
        nwq_telemetry::counter_add("executor.gates_1q", gates_1q);
        nwq_telemetry::counter_add("executor.gates_2q", gates_2q);
        nwq_telemetry::counter_add("executor.fused_blocks", fused);
        nwq_telemetry::counter_add("executor.amplitude_updates", dim * (gates_1q + gates_2q));
        self.health_check(state)
    }

    /// Runs `circuit` from `|0…0⟩`, returning the final state.
    pub fn run(&mut self, circuit: &Circuit, params: &[f64]) -> Result<StateVector> {
        let mut state = StateVector::zero(circuit.n_qubits());
        self.run_on(circuit, params, &mut state)?;
        Ok(state)
    }

    /// Applies a compiled plan to `state` in place. Every plan op counts as
    /// a fused block; a coalesced diagonal sweep costs one amplitude pass
    /// no matter how many logical gates it carries.
    pub fn run_plan_on(&mut self, plan: &ExecPlan, state: &mut StateVector) -> Result<()> {
        if plan.n_qubits() != state.n_qubits() {
            return Err(Error::DimensionMismatch {
                expected: state.n_qubits(),
                got: plan.n_qubits(),
            });
        }
        self.stats.circuits_run += 1;
        nwq_telemetry::counter_add("executor.circuits_run", 1);
        let _span = nwq_telemetry::span!("executor.run_plan");
        let dim = state.len() as u64;
        let mut gates_1q = 0u64;
        let mut gates_2q = 0u64;
        for (k, op) in plan.ops().iter().enumerate() {
            match op {
                PlanOp::One(q, m) => {
                    apply_mat2(state.amplitudes_mut(), *q, m);
                    gates_1q += 1;
                }
                PlanOp::Two(hi, lo, m) => {
                    // Plans pre-normalize to hi > lo and classify the
                    // matrix shape at bind time.
                    apply_mat4_shaped(state.amplitudes_mut(), *hi, *lo, m, plan.shape_at(k));
                    gates_2q += 1;
                }
                PlanOp::DiagSweep {
                    start,
                    len,
                    two_qubit,
                } => {
                    apply_diag_sweep(
                        state.amplitudes_mut(),
                        &plan.factors()[*start..*start + *len],
                    );
                    if *two_qubit {
                        gates_2q += 1;
                    } else {
                        gates_1q += 1;
                    }
                }
            }
        }
        let ops = plan.len() as u64;
        self.stats.gates_1q += gates_1q;
        self.stats.gates_2q += gates_2q;
        self.stats.fused_blocks += ops;
        self.stats.amplitude_updates += dim * ops;
        nwq_telemetry::counter_add("executor.gates_1q", gates_1q);
        nwq_telemetry::counter_add("executor.gates_2q", gates_2q);
        nwq_telemetry::counter_add("executor.fused_blocks", ops);
        nwq_telemetry::counter_add("executor.amplitude_updates", dim * ops);
        self.health_check(state)
    }

    /// Runs a compiled plan from `|0…0⟩`, returning the final state.
    pub fn run_plan(&mut self, plan: &ExecPlan) -> Result<StateVector> {
        let mut state = StateVector::zero(plan.n_qubits());
        self.run_plan_on(plan, &mut state)?;
        Ok(state)
    }

    /// Un-applies a compiled plan: replays `plan`'s ops in reverse order
    /// with each matrix daggered (diagonal factors conjugated), without
    /// materializing the inverse plan. `run_plan_on(p, s)` followed by
    /// `run_plan_inverse_on(p, s)` returns `s` to its original value up to
    /// floating-point rounding — time-reversed replay for debugging and
    /// the adjoint gradient sweep. Gate accounting matches a forward run
    /// of the inverse plan.
    pub fn run_plan_inverse_on(&mut self, plan: &ExecPlan, state: &mut StateVector) -> Result<()> {
        if plan.n_qubits() != state.n_qubits() {
            return Err(Error::DimensionMismatch {
                expected: state.n_qubits(),
                got: plan.n_qubits(),
            });
        }
        self.stats.circuits_run += 1;
        nwq_telemetry::counter_add("executor.circuits_run", 1);
        nwq_telemetry::counter_add("executor.inverse_runs", 1);
        let _span = nwq_telemetry::span!("executor.run_plan_inverse");
        let dim = state.len() as u64;
        let mut gates_1q = 0u64;
        let mut gates_2q = 0u64;
        let mut conj_factors: Vec<DiagFactor> = Vec::new();
        for op in plan.ops().iter().rev() {
            match op {
                PlanOp::One(q, m) => {
                    apply_mat2(state.amplitudes_mut(), *q, &m.dagger());
                    gates_1q += 1;
                }
                PlanOp::Two(hi, lo, m) => {
                    apply_mat4_prenorm(state.amplitudes_mut(), *hi, *lo, &m.dagger());
                    gates_2q += 1;
                }
                PlanOp::DiagSweep {
                    start,
                    len,
                    two_qubit,
                } => {
                    conj_factors.clear();
                    conj_factors.extend(
                        plan.factors()[*start..*start + *len]
                            .iter()
                            .rev()
                            .map(|f| f.conj()),
                    );
                    apply_diag_sweep(state.amplitudes_mut(), &conj_factors);
                    if *two_qubit {
                        gates_2q += 1;
                    } else {
                        gates_1q += 1;
                    }
                }
            }
        }
        let ops = plan.len() as u64;
        self.stats.gates_1q += gates_1q;
        self.stats.gates_2q += gates_2q;
        self.stats.fused_blocks += ops;
        self.stats.amplitude_updates += dim * ops;
        nwq_telemetry::counter_add("executor.gates_1q", gates_1q);
        nwq_telemetry::counter_add("executor.gates_2q", gates_2q);
        nwq_telemetry::counter_add("executor.fused_blocks", ops);
        nwq_telemetry::counter_add("executor.amplitude_updates", dim * ops);
        self.health_check(state)
    }

    /// Applies one shape-aligned plan per walker to `set` in place — the
    /// multi-θ evolution path. Op `k` of every plan runs as ONE
    /// walker-batched sweep (each cache line of the interleaved buffer
    /// touched once for all walkers); per walker the arithmetic is
    /// bitwise identical to [`Executor::run_plan_on`] with that walker's
    /// plan. Callers should pre-check [`walkers::plans_aligned`] and fall
    /// back to independent runs when binds diverge in shape.
    pub fn run_plans_walkers(&mut self, plans: &[ExecPlan], set: &mut WalkerSet) -> Result<()> {
        let nw = set.n_walkers();
        if plans.len() != nw {
            return Err(Error::DimensionMismatch {
                expected: nw,
                got: plans.len(),
            });
        }
        let first = &plans[0];
        if first.n_qubits() != set.n_qubits() {
            return Err(Error::DimensionMismatch {
                expected: set.n_qubits(),
                got: first.n_qubits(),
            });
        }
        if !walkers::plans_aligned(plans) {
            return Err(Error::Invalid(
                "walker plans are not shape-aligned; evaluate independently".into(),
            ));
        }
        self.stats.circuits_run += nw as u64;
        nwq_telemetry::counter_add("executor.circuits_run", nw as u64);
        nwq_telemetry::counter_add("executor.walker_runs", 1);
        let _span = nwq_telemetry::span!("executor.run_walkers");
        let dim = set.dim() as u64;
        let mut gates_1q = 0u64;
        let mut gates_2q = 0u64;
        let mut mats2: Vec<Mat2> = Vec::with_capacity(nw);
        let mut mats4: Vec<Mat4> = Vec::with_capacity(nw);
        let mut diag: Vec<bool> = Vec::with_capacity(nw);
        let mut shapes: Vec<Mat4Shape> = Vec::with_capacity(nw);
        let mut factors: Vec<DiagFactor> = Vec::new();
        for (k, op) in first.ops().iter().enumerate() {
            match op {
                PlanOp::One(q, _) => {
                    mats2.clear();
                    diag.clear();
                    for p in plans {
                        let PlanOp::One(_, m) = &p.ops()[k] else {
                            unreachable!("alignment checked above");
                        };
                        mats2.push(*m);
                        diag.push(mat2_is_diagonal(m));
                    }
                    walkers::walker_mat2_sweep(
                        set.amplitudes_mut(),
                        nw,
                        1usize << q,
                        &mats2,
                        &diag,
                    );
                    gates_1q += nw as u64;
                }
                PlanOp::Two(hi, lo, _) => {
                    mats4.clear();
                    diag.clear();
                    shapes.clear();
                    for p in plans {
                        let PlanOp::Two(_, _, m) = &p.ops()[k] else {
                            unreachable!("alignment checked above");
                        };
                        mats4.push(*m);
                        let shape = p.shape_at(k);
                        diag.push(shape == Mat4Shape::Diagonal);
                        shapes.push(shape);
                    }
                    // Block-structured walkers (e.g. an unfused CX) must
                    // replicate the single-state block fast path per
                    // walker; the AVX dense/diag kernel only handles the
                    // uniform shapes.
                    if shapes
                        .iter()
                        .any(|s| matches!(s, Mat4Shape::BlockHi { .. } | Mat4Shape::BlockLo { .. }))
                    {
                        walkers::walker_mat4_shaped_sweep(
                            set.amplitudes_mut(),
                            nw,
                            1usize << hi,
                            1usize << lo,
                            &mats4,
                            &shapes,
                        );
                    } else {
                        walkers::walker_mat4_sweep(
                            set.amplitudes_mut(),
                            nw,
                            1usize << hi,
                            1usize << lo,
                            &mats4,
                            &diag,
                        );
                    }
                    gates_2q += nw as u64;
                }
                PlanOp::DiagSweep { len, two_qubit, .. } => {
                    factors.clear();
                    for f in 0..*len {
                        for p in plans {
                            let PlanOp::DiagSweep { start, .. } = &p.ops()[k] else {
                                unreachable!("alignment checked above");
                            };
                            factors.push(p.factors()[start + f]);
                        }
                    }
                    walkers::walker_diag_sweep(set.amplitudes_mut(), nw, &factors);
                    if *two_qubit {
                        gates_2q += nw as u64;
                    } else {
                        gates_1q += nw as u64;
                    }
                }
            }
        }
        let ops = first.len() as u64 * nw as u64;
        self.stats.gates_1q += gates_1q;
        self.stats.gates_2q += gates_2q;
        self.stats.fused_blocks += ops;
        self.stats.amplitude_updates += dim * ops;
        nwq_telemetry::counter_add("executor.gates_1q", gates_1q);
        nwq_telemetry::counter_add("executor.gates_2q", gates_2q);
        nwq_telemetry::counter_add("executor.fused_blocks", ops);
        nwq_telemetry::counter_add("executor.amplitude_updates", dim * ops);
        self.walker_health_check(set)
    }

    /// The walker analog of [`Executor::health_check`]: one amortized
    /// "run" per batched sweep (matching the per-run cost model of the
    /// independent path it replaces); when a check is due, every walker
    /// is verified and renormalized individually.
    fn walker_health_check(&mut self, set: &mut WalkerSet) -> Result<()> {
        if !self.guard.enabled {
            return Ok(());
        }
        self.runs_since_check += 1;
        if self.runs_since_check < self.guard.check_interval.max(1) {
            return Ok(());
        }
        self.runs_since_check = 0;
        nwq_telemetry::counter_add("resilience.norm_checks", set.n_walkers() as u64);
        for w in 0..set.n_walkers() {
            let norm2 = set.walker_norm_sqr(w);
            if !norm2.is_finite() {
                nwq_telemetry::counter_add("resilience.nonfinite_detected", 1);
                return Err(Error::Numerical(
                    "non-finite amplitudes detected after walker sweep".into(),
                ));
            }
            if (norm2 - 1.0).abs() > self.guard.tolerance {
                set.normalize_walker(w)?;
                nwq_telemetry::counter_add("resilience.renormalizations", 1);
            }
        }
        Ok(())
    }
}

/// One-shot convenience: run a circuit from `|0…0⟩` without tracking stats.
pub fn simulate(circuit: &Circuit, params: &[f64]) -> Result<StateVector> {
    Executor::new().run(circuit, params)
}

/// One-shot convenience: compile `circuit` against `params` (bind + fuse +
/// diagonal coalescing) and run the plan from `|0…0⟩`. This is the fast
/// path every energy-evaluation loop in `nwq-core` routes through.
pub fn simulate_plan(circuit: &Circuit, params: &[f64]) -> Result<StateVector> {
    let plan = ExecPlan::compile(circuit, params)?;
    Executor::new().run_plan(&plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwq_circuit::reference;
    use nwq_circuit::ParamExpr;

    #[test]
    fn bell_state_matches_reference() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let fast = simulate(&c, &[]).unwrap();
        let slow = reference::run(&c, &[]).unwrap();
        for (a, b) in fast.amplitudes().iter().zip(&slow) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn executor_counts_gates() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).rz(2, 0.3).cz(1, 2);
        let mut ex = Executor::new();
        ex.run(&c, &[]).unwrap();
        let s = ex.stats();
        assert_eq!(s.gates_1q, 2);
        assert_eq!(s.gates_2q, 2);
        assert_eq!(s.total_gates(), 4);
        assert_eq!(s.circuits_run, 1);
        assert_eq!(s.amplitude_updates, 4 * 8);
        ex.reset_stats();
        assert_eq!(ex.stats().total_gates(), 0);
    }

    #[test]
    fn parameterized_execution() {
        let mut c = Circuit::new(1);
        c.ry(0, ParamExpr::var(0));
        // RY(π) |0⟩ = |1⟩.
        let s = simulate(&c, &[std::f64::consts::PI]).unwrap();
        assert!((s.probability(1) - 1.0).abs() < 1e-12);
        assert!(simulate(&c, &[]).is_err());
    }

    #[test]
    fn width_mismatch_rejected() {
        let c = Circuit::new(3);
        let mut st = StateVector::zero(2);
        assert!(Executor::new().run_on(&c, &[], &mut st).is_err());
    }

    #[test]
    fn random_circuit_matches_reference() {
        let mut c = Circuit::new(5);
        c.h(0)
            .cx(0, 3)
            .ry(1, 0.4)
            .rzz(2, 4, -0.8)
            .swap(1, 4)
            .t(2)
            .cz(3, 2)
            .sx(0)
            .cp(4, 0, 1.2)
            .sdg(3);
        let fast = simulate(&c, &[]).unwrap();
        let slow = reference::run(&c, &[]).unwrap();
        for (a, b) in fast.amplitudes().iter().zip(&slow) {
            assert!(a.approx_eq(*b, 1e-10));
        }
    }

    #[test]
    fn plan_execution_counts_sweeps_not_logical_gates() {
        // h t cx on 2 qubits fuses to one block: one sweep of 4 amplitudes.
        let mut c = Circuit::new(2);
        c.h(0).t(0).cx(0, 1);
        let plan = crate::plan::ExecPlan::compile(&c, &[]).unwrap();
        let mut ex = Executor::new();
        let fast = ex.run_plan(&plan).unwrap();
        let s = ex.stats();
        assert_eq!(s.fused_blocks, 1);
        assert_eq!(s.amplitude_updates, 4);
        assert_eq!(s.circuits_run, 1);
        let slow = reference::run(&c, &[]).unwrap();
        for (a, b) in fast.amplitudes().iter().zip(&slow) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn plan_width_mismatch_rejected() {
        let plan = crate::plan::ExecPlan::compile(&Circuit::new(3), &[]).unwrap();
        let mut st = StateVector::zero(2);
        assert!(Executor::new().run_plan_on(&plan, &mut st).is_err());
    }

    #[test]
    fn norm_guard_renormalizes_drifted_state() {
        let mut c = Circuit::new(1);
        c.h(0);
        let mut ex = Executor::with_guard(NormGuard::strict());
        let mut st = StateVector::zero(1);
        // Inject multiplicative drift well past the tolerance.
        for a in st.amplitudes_mut() {
            *a = *a * 1.01;
        }
        ex.run_on(&c, &[], &mut st).unwrap();
        assert!((st.norm_sqr() - 1.0).abs() < 1e-12, "{}", st.norm_sqr());
    }

    #[test]
    fn norm_guard_rejects_non_finite_amplitudes() {
        let mut c = Circuit::new(1);
        c.h(0);
        let mut ex = Executor::with_guard(NormGuard::strict());
        let mut st = StateVector::zero(1);
        st.amplitudes_mut()[0] = nwq_common::C64::new(f64::NAN, 0.0);
        let e = ex.run_on(&c, &[], &mut st).unwrap_err();
        assert!(matches!(e, Error::Numerical(_)), "{e}");
    }

    #[test]
    fn norm_guard_amortizes_over_interval() {
        nwq_telemetry::reset();
        nwq_telemetry::set_enabled(true);
        let mut c = Circuit::new(1);
        c.h(0);
        let guard = NormGuard {
            enabled: true,
            tolerance: 1e-6,
            check_interval: 4,
        };
        let mut ex = Executor::with_guard(guard);
        let before = nwq_telemetry::counter_value("resilience.norm_checks");
        let mut st = StateVector::zero(1);
        for _ in 0..8 {
            ex.run_on(&c, &[], &mut st).unwrap();
        }
        let checks = nwq_telemetry::counter_value("resilience.norm_checks") - before;
        nwq_telemetry::set_enabled(false);
        assert_eq!(checks, 2, "8 runs at interval 4 → 2 checks");
    }

    #[test]
    fn disabled_guard_leaves_drift_alone() {
        let mut c = Circuit::new(1);
        c.h(0);
        let mut ex = Executor::with_guard(NormGuard::disabled());
        assert!(!ex.guard().enabled);
        let mut st = StateVector::zero(1);
        for a in st.amplitudes_mut() {
            *a = *a * 2.0;
        }
        ex.run_on(&c, &[], &mut st).unwrap();
        assert!((st.norm_sqr() - 4.0).abs() < 1e-12);
        ex.set_guard(NormGuard::strict());
        ex.run_on(&c, &[], &mut st).unwrap();
        assert!((st.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fused_circuit_counts_fused_blocks() {
        let mut c = Circuit::new(2);
        c.h(0).t(0).cx(0, 1);
        let (fused, _) = nwq_circuit::fusion::fuse(&c).unwrap();
        let mut ex = Executor::new();
        let fast = ex.run(&fused, &[]).unwrap();
        assert!(ex.stats().fused_blocks > 0);
        let slow = reference::run(&c, &[]).unwrap();
        let f = reference::fidelity(fast.amplitudes(), &slow);
        assert!((f - 1.0).abs() < 1e-10);
    }
}
