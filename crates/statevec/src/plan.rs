//! Compiled execution plans: bind once, fuse at bind time, sweep fast.
//!
//! The variational hot loop evaluates the same circuit shape at thousands of
//! parameter vectors. Executing the raw `Circuit` re-evaluates every gate's
//! `ParamExpr` and rebuilds every matrix on every evaluation, and — because
//! the §4.3 fusion pass only accepts concrete circuits — parameterized
//! ansätze never fused at all (`executor.fused_blocks == 0` in the seed VQE
//! baseline). An [`ExecPlan`] closes that gap: compiling a circuit against
//! one parameter vector
//!
//! 1. **binds** every `ParamExpr` and materializes each gate matrix into a
//!    flat, cache-friendly op list (no allocation or expression evaluation
//!    remains inside the sweep loop);
//! 2. **fuses** at bind time via `fusion::fuse_bound`, so parameterized
//!    gates get the same adjacent 1q→1q and 1q/2q→2q merges as concrete
//!    ones;
//! 3. **coalesces** adjacent commuting-diagonal blocks (RZ/CZ/CP/RZZ chains,
//!    ubiquitous in UCCSD ansätze) into single [`PlanOp::DiagSweep`] ops
//!    that [`crate::kernels::apply_diag_sweep`] applies in ONE amplitude
//!    pass.
//!
//! Execution happens through `Executor::run_plan_on` /
//! [`crate::simulate_plan`]; compilation emits `plan.*` telemetry counters
//! (gates in, ops out, sweeps saved, bind time).

use crate::kernels::{mat2_is_diagonal, mat4_is_diagonal, DiagFactor};
use nwq_circuit::{fusion, Circuit, Gate};
use nwq_common::{Error, Mat2, Mat4, Result};

/// One compiled operation: parameters bound, matrix materialized.
#[derive(Clone, Debug)]
pub enum PlanOp {
    /// Fused single-qubit block.
    One(usize, Mat2),
    /// Fused two-qubit block (argument order preserved from fusion).
    Two(usize, usize, Mat4),
    /// Run of ≥2 commuting diagonal blocks applied in one amplitude pass.
    DiagSweep(Vec<DiagFactor>),
}

impl PlanOp {
    /// `true` when the op touches two or more distinct qubits.
    pub fn is_two_qubit(&self) -> bool {
        match self {
            PlanOp::One(..) => false,
            PlanOp::Two(..) => true,
            PlanOp::DiagSweep(fs) => fs.iter().any(|f| matches!(f, DiagFactor::Two { .. })),
        }
    }
}

/// Statistics from one plan compilation (the bind-time analog of
/// `fusion::FusionStats`).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PlanStats {
    /// Logical gates in the source circuit, before fusion.
    pub gates_in: usize,
    /// Fused blocks after the §4.3 pass, before diagonal coalescing.
    pub fused_blocks: usize,
    /// Final op count: amplitude sweeps one execution will perform.
    pub ops: usize,
    /// Diagonal blocks folded into `DiagSweep` ops.
    pub diag_coalesced: usize,
    /// Wall-clock time spent compiling, in seconds.
    pub bind_seconds: f64,
}

impl PlanStats {
    /// Amplitude sweeps avoided per execution vs the unfused circuit.
    pub fn sweeps_saved(&self) -> usize {
        self.gates_in.saturating_sub(self.ops)
    }

    /// Fractional sweep reduction, e.g. `0.52` for 52 %.
    pub fn reduction(&self) -> f64 {
        if self.gates_in == 0 {
            0.0
        } else {
            1.0 - self.ops as f64 / self.gates_in as f64
        }
    }
}

/// A circuit compiled against one parameter vector: flat op list, every
/// matrix materialized, fusion and diagonal coalescing already applied.
#[derive(Clone, Debug)]
pub struct ExecPlan {
    n_qubits: usize,
    ops: Vec<PlanOp>,
    stats: PlanStats,
}

impl ExecPlan {
    /// Compiles `circuit` with `params` bound. Fails if the circuit
    /// references parameters `params` does not supply.
    pub fn compile(circuit: &Circuit, params: &[f64]) -> Result<ExecPlan> {
        let start = std::time::Instant::now();
        let _span = nwq_telemetry::span!("plan.compile");
        let (fused, fstats) = fusion::fuse_bound(circuit, params)?;

        let mut ops: Vec<PlanOp> = Vec::with_capacity(fused.len());
        // Pending run of adjacent diagonal blocks: kept in both original-op
        // and factor form so a run of one falls back to the plain kernel
        // (whose diagonal fast path is already a single pass).
        let mut pending: Vec<(PlanOp, DiagFactor)> = Vec::new();
        let mut diag_coalesced = 0usize;

        let flush = |pending: &mut Vec<(PlanOp, DiagFactor)>,
                     ops: &mut Vec<PlanOp>,
                     diag_coalesced: &mut usize| {
            match pending.len() {
                0 => {}
                // Infallible: this arm only runs when `pending.len() == 1`.
                1 => ops.push(pending.pop().unwrap().0),
                _ => {
                    *diag_coalesced += pending.len();
                    ops.push(PlanOp::DiagSweep(
                        pending.drain(..).map(|(_, f)| f).collect(),
                    ));
                }
            }
        };

        for gate in fused.gates() {
            match gate {
                Gate::Fused1(q, m) => {
                    if mat2_is_diagonal(m) {
                        pending.push((
                            PlanOp::One(*q, *m),
                            DiagFactor::One {
                                q: *q,
                                d: [m.0[0][0], m.0[1][1]],
                            },
                        ));
                    } else {
                        flush(&mut pending, &mut ops, &mut diag_coalesced);
                        ops.push(PlanOp::One(*q, *m));
                    }
                }
                Gate::Fused2(a, b, m) => {
                    // Normalize hi > lo for the factor form, mirroring the
                    // kernel's own normalization.
                    let (hi, lo, mat) = if a > b {
                        (*a, *b, *m)
                    } else {
                        (*b, *a, m.swap_qubits())
                    };
                    if mat4_is_diagonal(&mat) {
                        pending.push((
                            PlanOp::Two(*a, *b, *m),
                            DiagFactor::Two {
                                hi,
                                lo,
                                d: [mat.0[0][0], mat.0[1][1], mat.0[2][2], mat.0[3][3]],
                            },
                        ));
                    } else {
                        flush(&mut pending, &mut ops, &mut diag_coalesced);
                        ops.push(PlanOp::Two(*a, *b, *m));
                    }
                }
                other => {
                    return Err(Error::Invalid(format!(
                        "fusion emitted a non-fused gate: {other:?}"
                    )));
                }
            }
        }
        flush(&mut pending, &mut ops, &mut diag_coalesced);

        let stats = PlanStats {
            gates_in: fstats.gates_before,
            fused_blocks: fstats.gates_after,
            ops: ops.len(),
            diag_coalesced,
            bind_seconds: start.elapsed().as_secs_f64(),
        };
        nwq_telemetry::counter_add("plan.compiled", 1);
        nwq_telemetry::counter_add("plan.gates_in", stats.gates_in as u64);
        nwq_telemetry::counter_add("plan.ops", stats.ops as u64);
        nwq_telemetry::counter_add("plan.sweeps_saved", stats.sweeps_saved() as u64);
        nwq_telemetry::counter_add("plan.diag_coalesced", stats.diag_coalesced as u64);
        nwq_telemetry::value_add("plan.bind_ms", stats.bind_seconds * 1e3);
        Ok(ExecPlan {
            n_qubits: circuit.n_qubits(),
            ops,
            stats,
        })
    }

    /// Register width the plan was compiled for.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The compiled op list, in execution order.
    #[inline]
    pub fn ops(&self) -> &[PlanOp] {
        &self.ops
    }

    /// Number of amplitude sweeps one execution performs.
    #[inline]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when the plan performs no sweeps.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Compilation statistics.
    #[inline]
    pub fn stats(&self) -> PlanStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{simulate, simulate_plan};
    use nwq_circuit::ParamExpr;

    #[test]
    fn plan_matches_gate_by_gate_execution() {
        let mut c = Circuit::new(4);
        c.h(0)
            .ry(1, ParamExpr::var(0))
            .cx(0, 1)
            .rz(1, ParamExpr::var(1))
            .cx(0, 1)
            .rzz(2, 3, 0.7)
            .h(2)
            .cp(3, 0, -0.4);
        let theta = [0.83, -1.91];
        let fast = simulate_plan(&c, &theta).unwrap();
        let slow = simulate(&c.bind(&theta).unwrap(), &[]).unwrap();
        for (a, b) in fast.amplitudes().iter().zip(slow.amplitudes()) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn parameterized_gates_fuse_at_bind_time() {
        // The seed baseline's gap: symbolic circuits never fused. A UCCSD-
        // style CX ladder with an RZ core must compile to fewer sweeps.
        let mut c = Circuit::new(4);
        c.h(0).h(1).h(2).h(3);
        c.cx(0, 1).cx(1, 2).cx(2, 3);
        c.rz(3, ParamExpr::var(0));
        c.cx(2, 3).cx(1, 2).cx(0, 1);
        c.h(0).h(1).h(2).h(3);
        let plan = ExecPlan::compile(&c, &[0.21]).unwrap();
        assert!(plan.len() < c.len(), "{} !< {}", plan.len(), c.len());
        assert_eq!(plan.stats().gates_in, c.len());
        assert!(plan.stats().sweeps_saved() > 0);
    }

    #[test]
    fn adjacent_diagonals_coalesce_into_one_sweep() {
        // RZ(0), RZ(1), CZ(2,3), RZZ(2,3): four diagonal gates on disjoint /
        // shared qubits -> fusion leaves 3 blocks, coalescing leaves 1 sweep.
        let mut c = Circuit::new(4);
        c.rz(0, ParamExpr::var(0))
            .rz(1, 0.4)
            .cz(2, 3)
            .rzz(2, 3, 0.9);
        let plan = ExecPlan::compile(&c, &[1.1]).unwrap();
        assert_eq!(plan.len(), 1, "ops: {:?}", plan.ops());
        assert!(matches!(&plan.ops()[0], PlanOp::DiagSweep(fs) if fs.len() == 3));
        assert_eq!(plan.stats().diag_coalesced, 3);
        // And it still computes the right state.
        let theta = [1.1];
        let fast = simulate_plan(&c, &theta).unwrap();
        let slow = simulate(&c.bind(&theta).unwrap(), &[]).unwrap();
        for (a, b) in fast.amplitudes().iter().zip(slow.amplitudes()) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn single_diagonal_stays_a_plain_op() {
        let mut c = Circuit::new(2);
        c.h(0).rz(1, 0.3).h(1);
        let plan = ExecPlan::compile(&c, &[]).unwrap();
        assert!(plan
            .ops()
            .iter()
            .all(|op| !matches!(op, PlanOp::DiagSweep(_))));
        assert_eq!(plan.stats().diag_coalesced, 0);
    }

    #[test]
    fn one_into_two_qubit_merge() {
        let mut c = Circuit::new(2);
        c.h(0).h(1).cx(0, 1);
        let plan = ExecPlan::compile(&c, &[]).unwrap();
        assert_eq!(plan.len(), 1);
        assert!(matches!(plan.ops()[0], PlanOp::Two(0, 1, _)));
        assert!(plan.ops()[0].is_two_qubit());
    }

    #[test]
    fn missing_params_rejected() {
        let mut c = Circuit::new(1);
        c.rx(0, ParamExpr::var(2));
        assert!(ExecPlan::compile(&c, &[0.1]).is_err());
    }

    #[test]
    fn empty_circuit_compiles_to_empty_plan() {
        let plan = ExecPlan::compile(&Circuit::new(3), &[]).unwrap();
        assert!(plan.is_empty());
        assert_eq!(plan.stats().reduction(), 0.0);
        assert_eq!(plan.n_qubits(), 3);
    }
}
