//! Compiled execution plans with a structure/bind split: compile the
//! circuit *shape* once, rebind θ in microseconds.
//!
//! The variational hot loop evaluates the same circuit shape at thousands
//! of parameter vectors. The seed plan layer re-ran the full fusion +
//! coalescing pass per evaluation (`plan.compiled == 85` on the H2 bench,
//! ~69 % of VQE wall time). Every merge decision in that pass depends only
//! on gate arity and operand qubits — never on θ — so the work splits:
//!
//! 1. [`PlanTemplate::build`] runs `fusion::fuse_structure` once per
//!    circuit shape, records each fused block's replay tape (which source
//!    gates feed it and the exact merge each performs), pre-evaluates all
//!    constant gates, folds every block's maximal constant prefix into a
//!    single matrix, and pre-normalizes constant two-qubit blocks to the
//!    kernel's `hi > lo` convention.
//! 2. [`PlanTemplate::bind`] (and the zero-allocation
//!    [`PlanTemplate::bind_into`]) evaluates only the remaining symbolic
//!    `ParamExpr`s, replaying each tape in the identical floating-point
//!    operation order — the bound plan is **bitwise identical** to a cold
//!    compile at the same θ.
//!
//! Diagonal blocks (RZ cores, CZ/CP/RZZ phases — and UCCSD's
//! CX·RZ·CX apex blocks, which are numerically diagonal at every θ even
//! though they are symbolic) become [`PlanOp::DiagSweep`] factor runs:
//! a run of length ≥ 1 is applied by
//! [`crate::kernels::apply_diag_sweep`] in one multiply-per-factor pass
//! that is bitwise identical to the plain kernels' diagonal fast path.
//! Note UCCSD ansätze do *not* produce adjacent diagonal blocks — the
//! apex blocks are fenced by overlapping CX-ladder blocks — so
//! multi-factor coalescing (`plan.diag_coalesced`) only fires on circuits
//! with genuinely adjacent diagonals; see DESIGN.md §plan.
//!
//! [`ExecPlan::compile`] keeps its signature but now routes through the
//! global [`crate::plan_cache`] LRU, so every energy path (VQE / ADAPT /
//! VQD / QPE / batch / serve workers) shares templates automatically.
//! Execution happens through `Executor::run_plan_on` /
//! [`crate::simulate_plan`]; template builds emit `plan.compiled` and the
//! `plan.template` span, binds emit `plan.binds`, `plan.bind_ms` and the
//! `plan.bind` span.

use crate::kernels::{mat2_is_diagonal, mat4_is_diagonal, DiagFactor};
use nwq_circuit::fusion::{self, BlockArity, MergeStep};
use nwq_circuit::{Circuit, Gate, GateMatrix};
use nwq_common::mat::{embed_high, embed_low};
use nwq_common::{Error, Mat2, Mat4, Result};

/// One compiled operation: parameters bound, matrix materialized.
#[derive(Clone, Copy, Debug)]
pub enum PlanOp {
    /// Fused single-qubit block.
    One(usize, Mat2),
    /// Fused two-qubit block, pre-normalized to `hi > lo` so the kernel
    /// can skip the per-call swap (first index is the high qubit).
    Two(usize, usize, Mat4),
    /// Run of ≥1 commuting diagonal blocks applied in one amplitude pass;
    /// indexes the plan's flat [`ExecPlan::factors`] table.
    DiagSweep {
        /// First factor index.
        start: usize,
        /// Number of factors in the run.
        len: usize,
        /// `true` when any factor spans two qubits.
        two_qubit: bool,
    },
}

impl PlanOp {
    /// `true` when the op touches two or more distinct qubits.
    pub fn is_two_qubit(&self) -> bool {
        match self {
            PlanOp::One(..) => false,
            PlanOp::Two(..) => true,
            PlanOp::DiagSweep { two_qubit, .. } => *two_qubit,
        }
    }
}

/// Statistics from one plan bind (the bind-time analog of
/// `fusion::FusionStats`).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PlanStats {
    /// Logical gates in the source circuit, before fusion.
    pub gates_in: usize,
    /// Fused blocks after the §4.3 pass, before diagonal coalescing.
    pub fused_blocks: usize,
    /// Final op count: amplitude sweeps one execution will perform.
    pub ops: usize,
    /// Diagonal blocks folded into multi-factor `DiagSweep` runs (runs of
    /// length 1 don't count: they save no sweep over the plain kernel).
    pub diag_coalesced: usize,
    /// Wall-clock time spent binding, in seconds.
    pub bind_seconds: f64,
}

impl PlanStats {
    /// Amplitude sweeps avoided per execution vs the unfused circuit.
    pub fn sweeps_saved(&self) -> usize {
        self.gates_in.saturating_sub(self.ops)
    }

    /// Fractional sweep reduction, e.g. `0.52` for 52 %.
    pub fn reduction(&self) -> f64 {
        if self.gates_in == 0 {
            0.0
        } else {
            1.0 - self.ops as f64 / self.gates_in as f64
        }
    }
}

/// A circuit bound against one parameter vector: flat op list, every
/// matrix materialized, fusion and diagonal coalescing already applied.
#[derive(Clone, Debug)]
pub struct ExecPlan {
    n_qubits: usize,
    ops: Vec<PlanOp>,
    factors: Vec<DiagFactor>,
    /// Per-op [`Mat4Shape`], classified once at bind time (aligned with
    /// `ops`; non-`Two` ops hold `Dense` as a don't-care placeholder).
    /// The executor and the sharded lean-exchange planner both consume
    /// this instead of re-classifying per sweep.
    shapes: Vec<crate::kernels::Mat4Shape>,
    stats: PlanStats,
}

impl ExecPlan {
    /// Compiles `circuit` with `params` bound, reusing the globally cached
    /// [`PlanTemplate`] for the circuit's structure (building it on first
    /// sight). Fails if the circuit references parameters `params` does
    /// not supply.
    pub fn compile(circuit: &Circuit, params: &[f64]) -> Result<ExecPlan> {
        let template = crate::plan_cache::template_for(circuit)?;
        template.bind(params)
    }

    /// Compiles `circuit` without consulting the template cache: a fresh
    /// structural pass plus an immediate bind. The output is bitwise
    /// identical to [`ExecPlan::compile`]; this entry exists for parity
    /// tests and one-shot circuits that should not occupy a cache slot.
    pub fn compile_uncached(circuit: &Circuit, params: &[f64]) -> Result<ExecPlan> {
        PlanTemplate::build(circuit)?.bind(params)
    }

    /// An empty plan, used as the scratch target for
    /// [`PlanTemplate::bind_into`].
    pub fn empty() -> ExecPlan {
        ExecPlan {
            n_qubits: 0,
            ops: Vec::new(),
            factors: Vec::new(),
            shapes: Vec::new(),
            stats: PlanStats::default(),
        }
    }

    /// The bind-time [`Mat4Shape`](crate::kernels::Mat4Shape) of op `k`
    /// (meaningful for [`PlanOp::Two`]; `Dense` otherwise).
    #[inline]
    pub fn shape_at(&self, k: usize) -> crate::kernels::Mat4Shape {
        self.shapes[k]
    }

    /// Reclassifies every op's matrix shape. Called once per bind/dagger
    /// — a few comparisons per op, negligible next to matrix replay.
    fn recompute_shapes(&mut self) {
        self.shapes.clear();
        self.shapes.extend(self.ops.iter().map(|op| match op {
            PlanOp::Two(_, _, m) => crate::kernels::mat4_shape(m),
            _ => crate::kernels::Mat4Shape::Dense,
        }));
    }

    /// Register width the plan was compiled for.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The compiled op list, in execution order.
    #[inline]
    pub fn ops(&self) -> &[PlanOp] {
        &self.ops
    }

    /// Flat diagonal-factor table indexed by [`PlanOp::DiagSweep`].
    #[inline]
    pub fn factors(&self) -> &[DiagFactor] {
        &self.factors
    }

    /// Number of amplitude sweeps one execution performs.
    #[inline]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when the plan performs no sweeps.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Bind statistics.
    #[inline]
    pub fn stats(&self) -> PlanStats {
        self.stats
    }

    /// The inverse plan: ops reversed, dense matrices daggered, diagonal
    /// factors conjugated (and reversed within each sweep, though diagonal
    /// multiplications commute). Applying `self` then `self.dagger()` to
    /// any state returns it to the original up to floating-point rounding
    /// — the basis of time-reversed replay debugging and the adjoint
    /// gradient walk.
    pub fn dagger(&self) -> ExecPlan {
        let mut ops = Vec::with_capacity(self.ops.len());
        let mut factors = Vec::with_capacity(self.factors.len());
        for op in self.ops.iter().rev() {
            match *op {
                PlanOp::One(q, m) => ops.push(PlanOp::One(q, m.dagger())),
                PlanOp::Two(hi, lo, m) => ops.push(PlanOp::Two(hi, lo, m.dagger())),
                PlanOp::DiagSweep {
                    start,
                    len,
                    two_qubit,
                } => {
                    let new_start = factors.len();
                    for f in self.factors[start..start + len].iter().rev() {
                        factors.push(f.conj());
                    }
                    ops.push(PlanOp::DiagSweep {
                        start: new_start,
                        len,
                        two_qubit,
                    });
                }
            }
        }
        let mut plan = ExecPlan {
            n_qubits: self.n_qubits,
            ops,
            factors,
            shapes: Vec::new(),
            stats: self.stats,
        };
        plan.recompute_shapes();
        plan
    }
}

/// One fused block bound at a concrete θ, kept in block (not sweep)
/// granularity for the adjoint walk: the backward pass needs to un-apply
/// and differentiate *blocks*, so diagonal coalescing does not apply here.
/// Two-qubit blocks are pre-normalized to the kernel's `hi > lo`
/// convention. Derivative matrices reuse the same container even though
/// they are not unitary.
#[derive(Clone, Copy, Debug)]
pub enum BoundBlock {
    /// Single-qubit block on a qubit.
    One(usize, Mat2),
    /// Two-qubit block; first index is the high qubit.
    Two(usize, usize, Mat4),
}

fn add2(a: &Mat2, b: &Mat2) -> Mat2 {
    let mut out = *a;
    for r in 0..2 {
        for c in 0..2 {
            out.0[r][c] += b.0[r][c];
        }
    }
    out
}

fn add4(a: &Mat4, b: &Mat4) -> Mat4 {
    let mut out = *a;
    for r in 0..4 {
        for c in 0..4 {
            out.0[r][c] += b.0[r][c];
        }
    }
    out
}

fn dmat2_of(gate: &Gate, params: &[f64], j: usize) -> Result<Option<Mat2>> {
    match gate.derivative(params, j)? {
        None => Ok(None),
        Some(GateMatrix::One(_, m)) => Ok(Some(m)),
        Some(GateMatrix::Two(..)) => Err(Error::Invalid(
            "two-qubit derivative in a single-qubit fusion tape".into(),
        )),
    }
}

fn dmat4_of(gate: &Gate, params: &[f64], j: usize) -> Result<Option<Mat4>> {
    match gate.derivative(params, j)? {
        None => Ok(None),
        Some(GateMatrix::Two(_, _, m)) => Ok(Some(m)),
        Some(GateMatrix::One(..)) => Err(Error::Invalid(
            "single-qubit derivative in a two-qubit fusion tape".into(),
        )),
    }
}

/// Product-rule replay of a single-qubit tape: returns the block matrix
/// and its ∂/∂θ_j (None when the tape does not depend on θ_j).
fn replay1_deriv(steps: &[Step1], params: &[f64], j: usize) -> Result<(Mat2, Option<Mat2>)> {
    let eval = |src: &Src2| match src {
        Src2::Const(m) => Ok(*m),
        Src2::Gate(g) => mat2_of(g, params),
    };
    let deval = |src: &Src2| match src {
        Src2::Const(_) => Ok(None),
        Src2::Gate(g) => dmat2_of(g, params, j),
    };
    let mut acc: Option<(Mat2, Option<Mat2>)> = None;
    for step in steps {
        acc = Some(match (step, acc) {
            (Step1::Set(src), None) => (eval(src)?, deval(src)?),
            (Step1::MulLeft(src), Some((a, da))) => {
                let m = eval(src)?;
                let d = match (deval(src)?, da) {
                    (None, None) => None,
                    (Some(dm), None) => Some(dm * a),
                    (None, Some(da)) => Some(m * da),
                    (Some(dm), Some(da)) => Some(add2(&(dm * a), &(m * da))),
                };
                (m * a, d)
            }
            _ => return Err(Error::Invalid("malformed single-qubit fusion tape".into())),
        });
    }
    acc.ok_or_else(|| Error::Invalid("empty single-qubit fusion tape".into()))
}

/// Product-rule replay of a two-qubit tape (resolving feeders through
/// their own product rule).
fn replay4_deriv(
    steps: &[Step4],
    params: &[f64],
    feeders: &[Vec<Step1>],
    j: usize,
) -> Result<(Mat4, Option<Mat4>)> {
    let eval_pair = |src: &Src4| -> Result<(Mat4, Option<Mat4>)> {
        Ok(match src {
            Src4::Const(m) => (*m, None),
            Src4::Gate(g) => (mat4_of(g, params)?, dmat4_of(g, params, j)?),
            Src4::GateSwapped(g) => (
                mat4_of(g, params)?.swap_qubits(),
                dmat4_of(g, params, j)?.map(|d| d.swap_qubits()),
            ),
            Src4::GateEmbed { gate, high } => (
                embed(&mat2_of(gate, params)?, *high),
                dmat2_of(gate, params, j)?.map(|d| embed(&d, *high)),
            ),
            Src4::Feeder { idx, high } => {
                let (m, dm) = replay1_deriv(&feeders[*idx], params, j)?;
                (embed(&m, *high), dm.map(|d| embed(&d, *high)))
            }
        })
    };
    let mut acc: Option<(Mat4, Option<Mat4>)> = None;
    for step in steps {
        acc = Some(match (step, acc) {
            (Step4::Set(src), None) => eval_pair(src)?,
            (Step4::MulLeft(src), Some((a, da))) => {
                let (m, dm) = eval_pair(src)?;
                let d = match (dm, da) {
                    (None, None) => None,
                    (Some(dm), None) => Some(dm * a),
                    (None, Some(da)) => Some(m * da),
                    (Some(dm), Some(da)) => Some(add4(&(dm * a), &(m * da))),
                };
                (m * a, d)
            }
            (Step4::MulRight(src), Some((a, da))) => {
                let (m, dm) = eval_pair(src)?;
                let d = match (dm, da) {
                    (None, None) => None,
                    (Some(dm), None) => Some(a * dm),
                    (None, Some(da)) => Some(da * m),
                    (Some(dm), Some(da)) => Some(add4(&(da * m), &(a * dm))),
                };
                (a * m, d)
            }
            _ => return Err(Error::Invalid("malformed two-qubit fusion tape".into())),
        });
    }
    acc.ok_or_else(|| Error::Invalid("empty two-qubit fusion tape".into()))
}

fn tape1_params(steps: &[Step1], out: &mut Vec<usize>) {
    for step in steps {
        let (Step1::Set(src) | Step1::MulLeft(src)) = step;
        if let Src2::Gate(g) = src {
            for e in g.param_exprs() {
                if let Some(i) = e.param_index() {
                    out.push(i);
                }
            }
        }
    }
}

/// Matrix source for one replay step of a single-qubit tape.
//
// `Gate` inlines a Mat4 for fused variants, dwarfing `Const(Mat2)`; these
// tapes are tiny (a handful of steps per block, built once per structure),
// so indirection would cost more than the padding it saves.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
enum Src2 {
    /// Pre-evaluated at template build (constant gate or folded prefix).
    Const(Mat2),
    /// Symbolic gate evaluated against θ at bind time.
    Gate(Gate),
}

/// Matrix source for one replay step of a two-qubit tape.
#[derive(Clone, Debug)]
enum Src4 {
    /// Pre-evaluated at template build.
    Const(Mat4),
    /// Symbolic two-qubit gate, used in block orientation.
    Gate(Gate),
    /// Symbolic two-qubit gate applied with swapped qubit order.
    GateSwapped(Gate),
    /// Symbolic single-qubit gate embedded into the block.
    GateEmbed { gate: Gate, high: bool },
    /// Absorbed symbolic single-qubit block: replay `feeders[idx]`, then
    /// embed the product.
    Feeder { idx: usize, high: bool },
}

/// Replay step of a single-qubit tape (`Set` only appears first).
#[derive(Clone, Debug)]
enum Step1 {
    Set(Src2),
    MulLeft(Src2),
}

/// Replay step of a two-qubit tape. `MulRight` is absorption: fusion
/// multiplies the absorbed block's embedded product on the right.
#[derive(Clone, Debug)]
enum Step4 {
    Set(Src4),
    MulLeft(Src4),
    MulRight(Src4),
}

/// One fused block of the template, constant-folded as far as θ allows.
#[derive(Clone, Debug)]
enum TemplateBlock {
    /// Fully constant single-qubit block; `factor` is its diagonal form
    /// when the matrix is exactly diagonal.
    ConstOne {
        q: usize,
        m: Mat2,
        factor: Option<DiagFactor>,
    },
    /// Fully constant two-qubit block, pre-normalized to `hi > lo`.
    ConstTwo {
        hi: usize,
        lo: usize,
        m: Mat4,
        factor: Option<DiagFactor>,
    },
    /// θ-dependent single-qubit block: replay the tape per bind.
    SymOne { q: usize, steps: Vec<Step1> },
    /// θ-dependent two-qubit block in fusion orientation `(a, b)`;
    /// normalized to `hi > lo` after replay.
    SymTwo {
        a: usize,
        b: usize,
        steps: Vec<Step4>,
    },
}

/// The θ-independent half of plan compilation: fused-block topology,
/// per-block replay tapes with constant prefixes folded, and
/// pre-normalized constant matrices. Build once per circuit *structure*
/// (see [`crate::plan_cache`]), then [`bind`](PlanTemplate::bind) per θ.
#[derive(Clone, Debug)]
pub struct PlanTemplate {
    n_qubits: usize,
    gates_in: usize,
    fused_blocks: usize,
    /// Tapes of absorbed symbolic single-qubit blocks, referenced by
    /// [`Src4::Feeder`].
    feeders: Vec<Vec<Step1>>,
    /// Live blocks in emission order.
    blocks: Vec<TemplateBlock>,
}

/// Result of compiling one single-qubit tape: either fully folded or
/// still θ-dependent.
enum OneTape {
    Const(Mat2),
    Sym(Vec<Step1>),
}

fn mat2_of(gate: &Gate, params: &[f64]) -> Result<Mat2> {
    match gate.matrix(params)? {
        GateMatrix::One(_, m) => Ok(m),
        GateMatrix::Two(..) => Err(Error::Invalid(
            "two-qubit gate in a single-qubit fusion tape".into(),
        )),
    }
}

fn mat4_of(gate: &Gate, params: &[f64]) -> Result<Mat4> {
    match gate.matrix(params)? {
        GateMatrix::Two(_, _, m) => Ok(m),
        GateMatrix::One(..) => Err(Error::Invalid(
            "single-qubit gate in a two-qubit fusion tape".into(),
        )),
    }
}

fn embed(m: &Mat2, high: bool) -> Mat4 {
    if high {
        embed_high(m)
    } else {
        embed_low(m)
    }
}

fn diag_factor2(q: usize, m: &Mat2) -> Option<DiagFactor> {
    mat2_is_diagonal(m).then(|| DiagFactor::One {
        q,
        d: [m.0[0][0], m.0[1][1]],
    })
}

fn diag_factor4(hi: usize, lo: usize, m: &Mat4) -> Option<DiagFactor> {
    mat4_is_diagonal(m).then(|| DiagFactor::Two {
        hi,
        lo,
        d: [m.0[0][0], m.0[1][1], m.0[2][2], m.0[3][3]],
    })
}

/// Replays a symbolic single-qubit tape against θ.
fn replay1(steps: &[Step1], params: &[f64]) -> Result<Mat2> {
    let eval = |src: &Src2| match src {
        Src2::Const(m) => Ok(*m),
        Src2::Gate(g) => mat2_of(g, params),
    };
    let mut acc: Option<Mat2> = None;
    for step in steps {
        acc = Some(match (step, acc) {
            (Step1::Set(src), None) => eval(src)?,
            (Step1::MulLeft(src), Some(a)) => eval(src)? * a,
            _ => return Err(Error::Invalid("malformed single-qubit fusion tape".into())),
        });
    }
    acc.ok_or_else(|| Error::Invalid("empty single-qubit fusion tape".into()))
}

/// Replays a symbolic two-qubit tape against θ, resolving feeders.
fn replay4(steps: &[Step4], params: &[f64], feeders: &[Vec<Step1>]) -> Result<Mat4> {
    let eval = |src: &Src4| -> Result<Mat4> {
        match src {
            Src4::Const(m) => Ok(*m),
            Src4::Gate(g) => mat4_of(g, params),
            Src4::GateSwapped(g) => Ok(mat4_of(g, params)?.swap_qubits()),
            Src4::GateEmbed { gate, high } => Ok(embed(&mat2_of(gate, params)?, *high)),
            Src4::Feeder { idx, high } => Ok(embed(&replay1(&feeders[*idx], params)?, *high)),
        }
    };
    let mut acc: Option<Mat4> = None;
    for step in steps {
        acc = Some(match (step, acc) {
            (Step4::Set(src), None) => eval(src)?,
            (Step4::MulLeft(src), Some(a)) => eval(src)? * a,
            (Step4::MulRight(src), Some(a)) => a * eval(src)?,
            _ => return Err(Error::Invalid("malformed two-qubit fusion tape".into())),
        });
    }
    acc.ok_or_else(|| Error::Invalid("empty two-qubit fusion tape".into()))
}

/// Folds the maximal constant prefix of a single-qubit tape. Folding is
/// memoization — it performs exactly the multiplications bind would — so
/// bound output stays bitwise identical.
fn fold1(raw: Vec<Step1>) -> Result<OneTape> {
    let mut acc: Option<Mat2> = None;
    let mut rest: Vec<Step1> = Vec::new();
    for step in raw {
        if rest.is_empty() {
            match (&step, acc) {
                (Step1::Set(Src2::Const(m)), None) => {
                    acc = Some(*m);
                    continue;
                }
                (Step1::MulLeft(Src2::Const(m)), Some(a)) => {
                    acc = Some(*m * a);
                    continue;
                }
                _ => {
                    if let Some(a) = acc {
                        rest.push(Step1::Set(Src2::Const(a)));
                        acc = None;
                    }
                }
            }
        }
        match (&step, rest.is_empty()) {
            (Step1::Set(_), false) | (Step1::MulLeft(_), true) => {
                return Err(Error::Invalid("malformed single-qubit fusion tape".into()));
            }
            _ => rest.push(step),
        }
    }
    match (acc, rest.is_empty()) {
        (Some(m), true) => Ok(OneTape::Const(m)),
        (None, false) => Ok(OneTape::Sym(rest)),
        _ => Err(Error::Invalid("empty single-qubit fusion tape".into())),
    }
}

/// Two-qubit analog of [`fold1`]; returns `Ok(Err(steps))` when symbolic.
#[allow(clippy::type_complexity)]
fn fold4(raw: Vec<Step4>) -> Result<std::result::Result<Mat4, Vec<Step4>>> {
    let mut acc: Option<Mat4> = None;
    let mut rest: Vec<Step4> = Vec::new();
    for step in raw {
        if rest.is_empty() {
            match (&step, acc) {
                (Step4::Set(Src4::Const(m)), None) => {
                    acc = Some(*m);
                    continue;
                }
                (Step4::MulLeft(Src4::Const(m)), Some(a)) => {
                    acc = Some(*m * a);
                    continue;
                }
                (Step4::MulRight(Src4::Const(m)), Some(a)) => {
                    acc = Some(a * *m);
                    continue;
                }
                _ => {
                    if let Some(a) = acc {
                        rest.push(Step4::Set(Src4::Const(a)));
                        acc = None;
                    }
                }
            }
        }
        match (&step, rest.is_empty()) {
            (Step4::Set(_), false) | (Step4::MulLeft(_) | Step4::MulRight(_), true) => {
                return Err(Error::Invalid("malformed two-qubit fusion tape".into()));
            }
            _ => rest.push(step),
        }
    }
    match (acc, rest.is_empty()) {
        (Some(m), true) => Ok(Ok(m)),
        (None, false) => Ok(Err(rest)),
        _ => Err(Error::Invalid("empty two-qubit fusion tape".into())),
    }
}

impl PlanTemplate {
    /// Runs the structural fusion pass and constant folding once for
    /// `circuit`'s shape. Emits the `plan.template` span and bumps
    /// `plan.compiled` (one per distinct structure, not per θ).
    pub fn build(circuit: &Circuit) -> Result<PlanTemplate> {
        let _span = nwq_telemetry::span!("plan.template");
        let structure = fusion::fuse_structure(circuit);
        let gates = circuit.gates();

        let src2 = |gi: usize| -> Result<Src2> {
            let g = &gates[gi];
            Ok(if g.is_symbolic() {
                Src2::Gate(g.clone())
            } else {
                Src2::Const(mat2_of(g, &[])?)
            })
        };

        let mut feeders: Vec<Vec<Step1>> = Vec::new();
        // Per structural block: the folded single-qubit tape, kept for
        // later `AbsorbBlock` references (only 1q blocks are absorbed).
        let mut ones: Vec<Option<OneTape>> = (0..structure.blocks().len()).map(|_| None).collect();
        let mut blocks: Vec<TemplateBlock> = Vec::new();

        for (bi, block) in structure.blocks().iter().enumerate() {
            match block.arity {
                BlockArity::One(q) => {
                    let mut raw = Vec::with_capacity(block.steps.len());
                    for step in &block.steps {
                        raw.push(match *step {
                            MergeStep::Init { gate } => Step1::Set(src2(gate)?),
                            MergeStep::MulLeft { gate } => Step1::MulLeft(src2(gate)?),
                            _ => {
                                return Err(Error::Invalid(
                                    "two-qubit merge step in a single-qubit block".into(),
                                ))
                            }
                        });
                    }
                    let folded = fold1(raw)?;
                    if block.absorbed {
                        ones[bi] = Some(folded);
                    } else {
                        blocks.push(match folded {
                            OneTape::Const(m) => TemplateBlock::ConstOne {
                                q,
                                factor: diag_factor2(q, &m),
                                m,
                            },
                            OneTape::Sym(steps) => TemplateBlock::SymOne { q, steps },
                        });
                    }
                }
                BlockArity::Two(a, b) => {
                    let mut raw = Vec::with_capacity(block.steps.len());
                    for step in &block.steps {
                        raw.push(match *step {
                            MergeStep::Init { gate } => {
                                let g = &gates[gate];
                                Step4::Set(if g.is_symbolic() {
                                    Src4::Gate(g.clone())
                                } else {
                                    Src4::Const(mat4_of(g, &[])?)
                                })
                            }
                            MergeStep::MulLeft { gate } => {
                                let g = &gates[gate];
                                Step4::MulLeft(if g.is_symbolic() {
                                    Src4::Gate(g.clone())
                                } else {
                                    Src4::Const(mat4_of(g, &[])?)
                                })
                            }
                            MergeStep::MulLeftSwapped { gate } => {
                                let g = &gates[gate];
                                Step4::MulLeft(if g.is_symbolic() {
                                    Src4::GateSwapped(g.clone())
                                } else {
                                    Src4::Const(mat4_of(g, &[])?.swap_qubits())
                                })
                            }
                            MergeStep::MulLeftEmbed { gate, high } => {
                                let g = &gates[gate];
                                Step4::MulLeft(if g.is_symbolic() {
                                    Src4::GateEmbed {
                                        gate: g.clone(),
                                        high,
                                    }
                                } else {
                                    Src4::Const(embed(&mat2_of(g, &[])?, high))
                                })
                            }
                            MergeStep::AbsorbBlock { block, high } => Step4::MulRight(
                                match ones[block].as_ref().ok_or_else(|| {
                                    Error::Invalid("absorbed block compiled out of order".into())
                                })? {
                                    OneTape::Const(m) => Src4::Const(embed(m, high)),
                                    OneTape::Sym(tape) => {
                                        feeders.push(tape.clone());
                                        Src4::Feeder {
                                            idx: feeders.len() - 1,
                                            high,
                                        }
                                    }
                                },
                            ),
                        });
                    }
                    blocks.push(match fold4(raw)? {
                        Ok(m) => {
                            // Pre-normalize to the kernel's hi > lo
                            // convention once, here.
                            let (hi, lo, m) = if a > b {
                                (a, b, m)
                            } else {
                                (b, a, m.swap_qubits())
                            };
                            TemplateBlock::ConstTwo {
                                hi,
                                lo,
                                factor: diag_factor4(hi, lo, &m),
                                m,
                            }
                        }
                        Err(steps) => TemplateBlock::SymTwo { a, b, steps },
                    });
                }
            }
        }

        nwq_telemetry::counter_add("plan.compiled", 1);
        Ok(PlanTemplate {
            n_qubits: structure.n_qubits(),
            gates_in: structure.gates_in(),
            fused_blocks: structure.live_blocks(),
            feeders,
            blocks,
        })
    }

    /// Register width of the source circuit.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Gate count of the source circuit.
    #[inline]
    pub fn gates_in(&self) -> usize {
        self.gates_in
    }

    /// Fused blocks the template emits per bind.
    #[inline]
    pub fn fused_blocks(&self) -> usize {
        self.fused_blocks
    }

    /// Binds θ into a fresh plan. See [`PlanTemplate::bind_into`].
    pub fn bind(&self, params: &[f64]) -> Result<ExecPlan> {
        let mut plan = ExecPlan::empty();
        self.bind_into(params, &mut plan)?;
        Ok(plan)
    }

    /// Binds θ into `plan`, reusing its allocations: evaluates only the
    /// symbolic tapes, re-checks diagonality of θ-dependent blocks (a
    /// CX·RZ(θ)·CX apex block is numerically diagonal at every θ; a
    /// RX(θ) block only at θ = 0), and rebuilds the op/factor lists with
    /// no re-fusion. Output is bitwise identical to a cold compile.
    pub fn bind_into(&self, params: &[f64], plan: &mut ExecPlan) -> Result<()> {
        let start = std::time::Instant::now();
        let _span = nwq_telemetry::span!("plan.bind");
        plan.n_qubits = self.n_qubits;
        plan.ops.clear();
        plan.factors.clear();

        let mut diag_coalesced = 0usize;
        let mut diag_sweeps = 0usize;
        // Open run of adjacent diagonal factors: plan.factors[run_start..].
        let mut run_start = 0usize;
        let mut run_two_qubit = false;

        fn flush(
            plan: &mut ExecPlan,
            run_start: &mut usize,
            run_two_qubit: &mut bool,
            diag_coalesced: &mut usize,
            diag_sweeps: &mut usize,
        ) {
            let len = plan.factors.len() - *run_start;
            if len > 0 {
                if len >= 2 {
                    *diag_coalesced += len;
                }
                *diag_sweeps += 1;
                plan.ops.push(PlanOp::DiagSweep {
                    start: *run_start,
                    len,
                    two_qubit: *run_two_qubit,
                });
            }
            *run_start = plan.factors.len();
            *run_two_qubit = false;
        }

        for block in &self.blocks {
            match block {
                TemplateBlock::ConstOne { q, m, factor } => match factor {
                    Some(f) => plan.factors.push(*f),
                    None => {
                        flush(
                            plan,
                            &mut run_start,
                            &mut run_two_qubit,
                            &mut diag_coalesced,
                            &mut diag_sweeps,
                        );
                        plan.ops.push(PlanOp::One(*q, *m));
                    }
                },
                TemplateBlock::ConstTwo { hi, lo, m, factor } => match factor {
                    Some(f) => {
                        plan.factors.push(*f);
                        run_two_qubit = true;
                    }
                    None => {
                        flush(
                            plan,
                            &mut run_start,
                            &mut run_two_qubit,
                            &mut diag_coalesced,
                            &mut diag_sweeps,
                        );
                        plan.ops.push(PlanOp::Two(*hi, *lo, *m));
                    }
                },
                TemplateBlock::SymOne { q, steps } => {
                    let m = replay1(steps, params)?;
                    match diag_factor2(*q, &m) {
                        Some(f) => plan.factors.push(f),
                        None => {
                            flush(
                                plan,
                                &mut run_start,
                                &mut run_two_qubit,
                                &mut diag_coalesced,
                                &mut diag_sweeps,
                            );
                            plan.ops.push(PlanOp::One(*q, m));
                        }
                    }
                }
                TemplateBlock::SymTwo { a, b, steps } => {
                    let m = replay4(steps, params, &self.feeders)?;
                    let (hi, lo, m) = if a > b {
                        (*a, *b, m)
                    } else {
                        (*b, *a, m.swap_qubits())
                    };
                    match diag_factor4(hi, lo, &m) {
                        Some(f) => {
                            plan.factors.push(f);
                            run_two_qubit = true;
                        }
                        None => {
                            flush(
                                plan,
                                &mut run_start,
                                &mut run_two_qubit,
                                &mut diag_coalesced,
                                &mut diag_sweeps,
                            );
                            plan.ops.push(PlanOp::Two(hi, lo, m));
                        }
                    }
                }
            }
        }
        flush(
            plan,
            &mut run_start,
            &mut run_two_qubit,
            &mut diag_coalesced,
            &mut diag_sweeps,
        );

        plan.recompute_shapes();
        plan.stats = PlanStats {
            gates_in: self.gates_in,
            fused_blocks: self.fused_blocks,
            ops: plan.ops.len(),
            diag_coalesced,
            bind_seconds: start.elapsed().as_secs_f64(),
        };
        nwq_telemetry::counter_add("plan.binds", 1);
        nwq_telemetry::counter_add("plan.gates_in", plan.stats.gates_in as u64);
        nwq_telemetry::counter_add("plan.ops", plan.stats.ops as u64);
        nwq_telemetry::counter_add("plan.sweeps_saved", plan.stats.sweeps_saved() as u64);
        nwq_telemetry::counter_add("plan.diag_coalesced", diag_coalesced as u64);
        nwq_telemetry::counter_add("plan.diag_sweeps", diag_sweeps as u64);
        nwq_telemetry::value_add("plan.bind_ms", plan.stats.bind_seconds * 1e3);
        nwq_telemetry::histogram_record("plan.bind_us", plan.stats.bind_seconds * 1e6);
        Ok(())
    }

    /// Number of live fused blocks (the length of the adjoint walk).
    pub(crate) fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The sorted, deduplicated variational-parameter indices block `bi`
    /// depends on. θ-independent for a fixed structure, so the adjoint
    /// template computes this once per shape.
    pub(crate) fn block_param_indices(&self, bi: usize) -> Vec<usize> {
        let mut out = Vec::new();
        match &self.blocks[bi] {
            TemplateBlock::ConstOne { .. } | TemplateBlock::ConstTwo { .. } => {}
            TemplateBlock::SymOne { steps, .. } => tape1_params(steps, &mut out),
            TemplateBlock::SymTwo { steps, .. } => {
                for step in steps {
                    let (Step4::Set(src) | Step4::MulLeft(src) | Step4::MulRight(src)) = step;
                    match src {
                        Src4::Const(_) => {}
                        Src4::Gate(g) | Src4::GateSwapped(g) | Src4::GateEmbed { gate: g, .. } => {
                            for e in g.param_exprs() {
                                if let Some(i) = e.param_index() {
                                    out.push(i);
                                }
                            }
                        }
                        Src4::Feeder { idx, .. } => tape1_params(&self.feeders[*idx], &mut out),
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Binds block `bi` against θ at block granularity (the same replay
    /// arithmetic [`PlanTemplate::bind_into`] performs, minus diagonal
    /// coalescing).
    pub(crate) fn bind_block(&self, bi: usize, params: &[f64]) -> Result<BoundBlock> {
        Ok(match &self.blocks[bi] {
            TemplateBlock::ConstOne { q, m, .. } => BoundBlock::One(*q, *m),
            TemplateBlock::ConstTwo { hi, lo, m, .. } => BoundBlock::Two(*hi, *lo, *m),
            TemplateBlock::SymOne { q, steps } => BoundBlock::One(*q, replay1(steps, params)?),
            TemplateBlock::SymTwo { a, b, steps } => {
                let m = replay4(steps, params, &self.feeders)?;
                if a > b {
                    BoundBlock::Two(*a, *b, m)
                } else {
                    BoundBlock::Two(*b, *a, m.swap_qubits())
                }
            }
        })
    }

    /// ∂(block `bi`)/∂θ_j via product-rule tape replay, `None` when the
    /// block does not depend on θ_j. Two-qubit derivatives get the same
    /// `hi > lo` normalization as [`PlanTemplate::bind_block`].
    pub(crate) fn bind_block_derivative(
        &self,
        bi: usize,
        params: &[f64],
        j: usize,
    ) -> Result<Option<BoundBlock>> {
        Ok(match &self.blocks[bi] {
            TemplateBlock::ConstOne { .. } | TemplateBlock::ConstTwo { .. } => None,
            TemplateBlock::SymOne { q, steps } => replay1_deriv(steps, params, j)?
                .1
                .map(|d| BoundBlock::One(*q, d)),
            TemplateBlock::SymTwo { a, b, steps } => {
                replay4_deriv(steps, params, &self.feeders, j)?.1.map(|d| {
                    if a > b {
                        BoundBlock::Two(*a, *b, d)
                    } else {
                        BoundBlock::Two(*b, *a, d.swap_qubits())
                    }
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{simulate, simulate_plan};
    use nwq_circuit::ParamExpr;

    /// Bit-exact encoding of a plan's ops and factors.
    fn plan_bits(plan: &ExecPlan) -> Vec<u64> {
        let mut bits = vec![plan.n_qubits() as u64];
        let push_c = |bits: &mut Vec<u64>, c: nwq_common::C64| {
            bits.push(c.re.to_bits());
            bits.push(c.im.to_bits());
        };
        for op in plan.ops() {
            match op {
                PlanOp::One(q, m) => {
                    bits.extend([1u64, *q as u64]);
                    for r in 0..2 {
                        for c in 0..2 {
                            push_c(&mut bits, m.0[r][c]);
                        }
                    }
                }
                PlanOp::Two(hi, lo, m) => {
                    bits.extend([2u64, *hi as u64, *lo as u64]);
                    for r in 0..4 {
                        for c in 0..4 {
                            push_c(&mut bits, m.0[r][c]);
                        }
                    }
                }
                PlanOp::DiagSweep {
                    start,
                    len,
                    two_qubit,
                } => {
                    bits.extend([3u64, *start as u64, *len as u64, *two_qubit as u64]);
                }
            }
        }
        for f in plan.factors() {
            match f {
                DiagFactor::One { q, d } => {
                    bits.extend([4u64, *q as u64]);
                    for c in d {
                        push_c(&mut bits, *c);
                    }
                }
                DiagFactor::Two { hi, lo, d } => {
                    bits.extend([5u64, *hi as u64, *lo as u64]);
                    for c in d {
                        push_c(&mut bits, *c);
                    }
                }
            }
        }
        bits
    }

    #[test]
    fn plan_matches_gate_by_gate_execution() {
        let mut c = Circuit::new(4);
        c.h(0)
            .ry(1, ParamExpr::var(0))
            .cx(0, 1)
            .rz(1, ParamExpr::var(1))
            .cx(0, 1)
            .rzz(2, 3, 0.7)
            .h(2)
            .cp(3, 0, -0.4);
        let theta = [0.83, -1.91];
        let fast = simulate_plan(&c, &theta).unwrap();
        let slow = simulate(&c.bind(&theta).unwrap(), &[]).unwrap();
        for (a, b) in fast.amplitudes().iter().zip(slow.amplitudes()) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn parameterized_gates_fuse_at_bind_time() {
        // The seed baseline's gap: symbolic circuits never fused. A UCCSD-
        // style CX ladder with an RZ core must compile to fewer sweeps.
        let mut c = Circuit::new(4);
        c.h(0).h(1).h(2).h(3);
        c.cx(0, 1).cx(1, 2).cx(2, 3);
        c.rz(3, ParamExpr::var(0));
        c.cx(2, 3).cx(1, 2).cx(0, 1);
        c.h(0).h(1).h(2).h(3);
        let plan = ExecPlan::compile(&c, &[0.21]).unwrap();
        assert!(plan.len() < c.len(), "{} !< {}", plan.len(), c.len());
        assert_eq!(plan.stats().gates_in, c.len());
        assert!(plan.stats().sweeps_saved() > 0);
    }

    #[test]
    fn adjacent_diagonals_coalesce_into_one_sweep() {
        // RZ(0), RZ(1), CZ(2,3), RZZ(2,3): four diagonal gates on disjoint /
        // shared qubits -> fusion leaves 3 blocks, coalescing leaves 1 sweep.
        let mut c = Circuit::new(4);
        c.rz(0, ParamExpr::var(0))
            .rz(1, 0.4)
            .cz(2, 3)
            .rzz(2, 3, 0.9);
        let plan = ExecPlan::compile(&c, &[1.1]).unwrap();
        assert_eq!(plan.len(), 1, "ops: {:?}", plan.ops());
        assert!(matches!(
            plan.ops()[0],
            PlanOp::DiagSweep {
                start: 0,
                len: 3,
                two_qubit: true
            }
        ));
        assert_eq!(plan.factors().len(), 3);
        assert_eq!(plan.stats().diag_coalesced, 3);
        // And it still computes the right state.
        let theta = [1.1];
        let fast = simulate_plan(&c, &theta).unwrap();
        let slow = simulate(&c.bind(&theta).unwrap(), &[]).unwrap();
        for (a, b) in fast.amplitudes().iter().zip(slow.amplitudes()) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn single_diagonal_becomes_a_one_factor_sweep() {
        // A lone diagonal block is emitted as a run-of-one DiagSweep (the
        // kernel's diagonal fast path, reached without a matrix dispatch);
        // it does not count as coalescing.
        let mut c = Circuit::new(2);
        c.h(0).rz(1, 0.3);
        let plan = ExecPlan::compile(&c, &[]).unwrap();
        assert_eq!(plan.len(), 2);
        assert!(matches!(
            plan.ops()[1],
            PlanOp::DiagSweep {
                len: 1,
                two_qubit: false,
                ..
            }
        ));
        assert_eq!(plan.stats().diag_coalesced, 0);
        let fast = simulate_plan(&c, &[]).unwrap();
        let slow = simulate(&c, &[]).unwrap();
        for (a, b) in fast.amplitudes().iter().zip(slow.amplitudes()) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn non_diagonal_blocks_never_sweep() {
        // H·RZ is not diagonal: the trailing H merges into the RZ block.
        let mut c = Circuit::new(2);
        c.h(0).rz(1, 0.3).h(1);
        let plan = ExecPlan::compile(&c, &[]).unwrap();
        assert!(plan
            .ops()
            .iter()
            .all(|op| !matches!(op, PlanOp::DiagSweep { .. })));
        assert_eq!(plan.stats().diag_coalesced, 0);
    }

    #[test]
    fn one_into_two_qubit_merge() {
        let mut c = Circuit::new(2);
        c.h(0).h(1).cx(0, 1);
        let plan = ExecPlan::compile(&c, &[]).unwrap();
        assert_eq!(plan.len(), 1);
        // Pre-normalized: high qubit first.
        assert!(matches!(plan.ops()[0], PlanOp::Two(1, 0, _)));
        assert!(plan.ops()[0].is_two_qubit());
        let fast = simulate_plan(&c, &[]).unwrap();
        let slow = simulate(&c, &[]).unwrap();
        for (a, b) in fast.amplitudes().iter().zip(slow.amplitudes()) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn missing_params_rejected() {
        let mut c = Circuit::new(1);
        c.rx(0, ParamExpr::var(2));
        assert!(ExecPlan::compile(&c, &[0.1]).is_err());
        assert!(ExecPlan::compile_uncached(&c, &[0.1]).is_err());
    }

    #[test]
    fn empty_circuit_compiles_to_empty_plan() {
        let plan = ExecPlan::compile(&Circuit::new(3), &[]).unwrap();
        assert!(plan.is_empty());
        assert_eq!(plan.stats().reduction(), 0.0);
        assert_eq!(plan.n_qubits(), 3);
    }

    #[test]
    fn template_bind_is_bitwise_identical_to_cold_compile() {
        let mut c = Circuit::new(3);
        c.h(0)
            .ry(1, ParamExpr::var(0))
            .cx(0, 1)
            .rz(1, ParamExpr::var(1))
            .cx(0, 1)
            .cz(1, 2)
            .rx(2, ParamExpr::var(2))
            .t(0);
        let theta = [0.83, -1.91, 0.4];
        let cold = ExecPlan::compile_uncached(&c, &theta).unwrap();
        let template = PlanTemplate::build(&c).unwrap();
        let bound = template.bind(&theta).unwrap();
        assert_eq!(plan_bits(&cold), plan_bits(&bound));
        // Rebinding into a scratch plan dirtied at a different θ must give
        // the same bits again.
        let mut scratch = ExecPlan::empty();
        template.bind_into(&[2.0, -0.1, 0.9], &mut scratch).unwrap();
        template.bind_into(&theta, &mut scratch).unwrap();
        assert_eq!(plan_bits(&cold), plan_bits(&scratch));
    }

    #[test]
    fn bind_rechecks_diagonality_per_theta() {
        // RX(θ) is diagonal only at θ = 0: the same template must emit a
        // DiagSweep there and a plain op elsewhere.
        let mut c = Circuit::new(1);
        c.rx(0, ParamExpr::var(0));
        let template = PlanTemplate::build(&c).unwrap();
        let at_zero = template.bind(&[0.0]).unwrap();
        assert!(matches!(at_zero.ops()[0], PlanOp::DiagSweep { len: 1, .. }));
        let generic = template.bind(&[1.3]).unwrap();
        assert!(matches!(generic.ops()[0], PlanOp::One(0, _)));
        for theta in [0.0, 1.3] {
            let fast = simulate_plan(&c, &[theta]).unwrap();
            let slow = simulate(&c.bind(&[theta]).unwrap(), &[]).unwrap();
            for (a, b) in fast.amplitudes().iter().zip(slow.amplitudes()) {
                assert!(a.approx_eq(*b, 1e-12));
            }
        }
    }

    #[test]
    fn all_const_circuit_folds_to_constant_template() {
        // Every block of a concrete circuit folds at build time; binding
        // twice with different (unused) parameter vectors is identical.
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).rz(1, 0.4).cx(1, 2).h(2).t(0);
        let template = PlanTemplate::build(&c).unwrap();
        let a = template.bind(&[]).unwrap();
        let b = template.bind(&[9.9]).unwrap();
        assert_eq!(plan_bits(&a), plan_bits(&b));
        assert_eq!(
            plan_bits(&a),
            plan_bits(&ExecPlan::compile_uncached(&c, &[]).unwrap())
        );
    }
}
