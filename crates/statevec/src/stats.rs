//! Execution statistics used by the evaluation harness (paper Figs 3, 4).

use std::ops::AddAssign;

/// Counters accumulated by the executor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Single-qubit gate applications.
    pub gates_1q: u64,
    /// Two-qubit gate applications.
    pub gates_2q: u64,
    /// Of which: fused blocks produced by the transpiler.
    pub fused_blocks: u64,
    /// Full circuit executions started.
    pub circuits_run: u64,
    /// Amplitude updates performed (each gate touches all `2^n`
    /// amplitudes), a proxy for floating-point work.
    pub amplitude_updates: u64,
}

impl ExecStats {
    /// Total gates applied.
    pub fn total_gates(&self) -> u64 {
        self.gates_1q + self.gates_2q
    }
}

impl AddAssign for ExecStats {
    fn add_assign(&mut self, rhs: ExecStats) {
        self.gates_1q += rhs.gates_1q;
        self.gates_2q += rhs.gates_2q;
        self.fused_blocks += rhs.fused_blocks;
        self.circuits_run += rhs.circuits_run;
        self.amplitude_updates += rhs.amplitude_updates;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_accumulation() {
        let mut a = ExecStats {
            gates_1q: 3,
            gates_2q: 2,
            ..Default::default()
        };
        assert_eq!(a.total_gates(), 5);
        a += ExecStats {
            gates_1q: 1,
            circuits_run: 1,
            ..Default::default()
        };
        assert_eq!(a.gates_1q, 4);
        assert_eq!(a.circuits_run, 1);
        assert_eq!(a.total_gates(), 6);
    }
}
