//! Energy evaluation strategies (paper §4.1 + §4.2 combined).
//!
//! Three ways to evaluate `⟨ψ(θ)|H|ψ(θ)⟩`, in decreasing cost:
//!
//! 1. **Non-caching** (`energy_non_caching`): re-prepare the ansatz for
//!    every measurement group, apply the group's basis change, read the
//!    diagonal expectations. This is the baseline of paper Fig 3.
//! 2. **Caching** (`energy_cached`): prepare the ansatz once, then for
//!    each group copy the cached amplitudes and apply only the (tiny)
//!    basis-change circuit (§4.1.4).
//! 3. **Direct** (`StateVector::expectation`): no basis changes at all —
//!    evaluate each Pauli term as an exact amplitude reduction (§4.2).
//! 4. **Batched direct** ([`energy_direct_batched`]): the §4.2 reduction
//!    with Hamiltonian terms grouped by X/Y flip-mask, so every term in a
//!    group is evaluated in ONE amplitude pass instead of one pass per
//!    term.
//!
//! All strategies agree to numerical precision; the tests pin that down.
//! The group-based strategies (1, 2) compile the ansatz to an
//! [`crate::plan::ExecPlan`] so parameterized gates fuse at bind time; the
//! reported `gates_applied` stays the *logical* (pre-fusion) gate count,
//! which is the quantity paper Fig 3 compares.

use crate::executor::Executor;
use crate::plan::ExecPlan;
use crate::state::StateVector;
use nwq_circuit::basis::group_basis_circuit;
use nwq_circuit::Circuit;
use nwq_common::{bits::masked_parity, Error, Result, C64, C_ZERO};
use nwq_pauli::grouping::MeasurementGroup;
use nwq_pauli::{PauliOp, Phase};
use rayon::prelude::*;

/// Amplitude count at or above which the reductions here go parallel.
const PAR_THRESHOLD: usize = 1 << 12;

/// Block width (amplitudes) of the serial batched-expectation sweep: big
/// enough to amortize the SIMD dispatch and fill vector lanes, small
/// enough that the phase/weight buffers stay in L1 (2 × 128 × 16 B).
const EXPVAL_BLOCK: usize = 128;

/// Every energy entry point funnels its result through this: a NaN/Inf
/// energy (corrupted amplitudes, injected fault) is surfaced as
/// `Error::Numerical` instead of silently poisoning the optimizer, and
/// counted so `--metrics` artifacts show how often it happened.
pub(crate) fn ensure_finite_energy(energy: f64, context: &str) -> Result<f64> {
    if energy.is_finite() {
        Ok(energy)
    } else {
        nwq_telemetry::counter_add("resilience.nonfinite_detected", 1);
        Err(Error::Numerical(format!(
            "non-finite energy from {context}"
        )))
    }
}

/// Once every string in a group has been rotated to diagonal form, all its
/// expectations come from a single pass over the probabilities:
/// `⟨P_t⟩ = Σ_x |a_x|² (−1)^{|x ∧ support(P_t)|}`.
///
/// Each parallel part folds into ONE preallocated accumulator vector; the
/// per-amplitude closure only indexes into it (no heap traffic inside the
/// amplitude loop).
fn diagonal_group_energy(state: &StateVector, group: &MeasurementGroup) -> f64 {
    let supports: Vec<u64> = group.terms.iter().map(|(_, s)| s.support()).collect();
    let coeffs: Vec<f64> = group.terms.iter().map(|(c, _)| c.re).collect();
    let amps = state.amplitudes();
    let accumulate = |acc: &mut [f64], base: usize, chunk: &[C64]| {
        for (j, a) in chunk.iter().enumerate() {
            let x = (base + j) as u64;
            let p = a.norm_sqr();
            for (t, &m) in supports.iter().enumerate() {
                acc[t] += if masked_parity(x, m) { -p } else { p };
            }
        }
    };
    let per_term: Vec<f64> = if amps.len() >= PAR_THRESHOLD {
        let chunk = amps.len().div_ceil(rayon::current_num_threads());
        let partials: Vec<Vec<f64>> = amps
            .par_chunks(chunk)
            .enumerate()
            .map(|(ci, c)| {
                let mut acc = vec![0.0; supports.len()];
                accumulate(&mut acc, ci * chunk, c);
                acc
            })
            .collect();
        let mut total = vec![0.0; supports.len()];
        for part in partials {
            for (x, y) in total.iter_mut().zip(part) {
                *x += y;
            }
        }
        total
    } else {
        let mut acc = vec![0.0; supports.len()];
        accumulate(&mut acc, 0, amps);
        acc
    };
    per_term.iter().zip(&coeffs).map(|(e, c)| e * c).sum()
}

/// Batched §4.2 direct expectation: Hamiltonian terms sharing an X/Y
/// flip-mask `m` read the same amplitude pairs `(ψ[x⊕m], ψ[x])`, so the
/// per-term reductions collapse to one pass per *mask group*:
///
/// `⟨H⟩ = Σ_m Σ_x conj(ψ[x⊕m]) ψ[x] · Σ_{t: m_t=m} c_t φ_t (−1)^{|x ∧ z_t|}`
///
/// For molecular Hamiltonians many terms share flip-masks (all-diagonal
/// terms share `m = 0`), so this does strictly fewer amplitude sweeps than
/// the per-term `expectation_op` path. Telemetry records both sides:
/// `expval.term_sweeps` (what per-term would cost), `expval.batched_sweeps`
/// (passes actually made) and `expval.sweeps_saved`.
///
/// The inner loop is kept at least as lean as the per-term path's: terms
/// are grouped in a flat sorted vector (no per-amplitude BTreeMap or
/// nested-Vec indirection), the per-term sign is applied branchlessly
/// (`f += c · (1 − 2·parity)`, bitwise identical to the `±c` branch since
/// multiplying by exact ±1.0 is exact), and the `m = 0` group reads one
/// amplitude per index via `norm_sqr` instead of a conjugate product
/// (`Re(conj(a)·a)` computes `re·re − im·(−im)`, bitwise `norm_sqr`; the
/// imaginary part of a Hermitian group sum is discarded anyway).
pub fn energy_direct_batched(state: &StateVector, op: &PauliOp) -> Result<f64> {
    let psi = state.amplitudes();
    if psi.len() != 1usize << op.n_qubits() {
        return Err(Error::DimensionMismatch {
            expected: 1usize << op.n_qubits(),
            got: psi.len(),
        });
    }
    // Flatten terms to (flip_mask, eff_coeff, z_mask) and sort by mask; a
    // stable sort reproduces the BTreeMap grouping this replaced (groups in
    // ascending mask order, terms in Hamiltonian order within a group), so
    // accumulation order — and thus the energy bits — is unchanged.
    let mut terms: Vec<(u64, C64, u64)> = op
        .terms()
        .iter()
        .map(|&(c, ref s)| {
            let eff = c * Phase::from_power(s.y_count()).to_c64();
            (s.x_mask(), eff, s.z_mask())
        })
        .collect();
    terms.sort_by_key(|t| t.0);
    let n_groups = terms.chunk_by(|a, b| a.0 == b.0).count();
    nwq_telemetry::counter_add("expval.term_sweeps", op.num_terms() as u64);
    nwq_telemetry::counter_add("expval.batched_sweeps", n_groups as u64);
    nwq_telemetry::counter_add("expval.sweeps_saved", (op.num_terms() - n_groups) as u64);
    let _span = nwq_telemetry::span!("expval.batched");
    // The parallel reduction only pays off when the pool can actually run
    // pieces concurrently; a single-thread pool takes the blocked SIMD
    // sweep below (identical accumulation order, so identical bits).
    let use_par = psi.len() >= PAR_THRESHOLD && crate::kernels::parallel_dispatch_enabled();
    let mut fbuf = [C_ZERO; EXPVAL_BLOCK];
    let mut wbuf = [C_ZERO; EXPVAL_BLOCK];
    let mut total = C_ZERO;
    for group in terms.chunk_by(|a, b| a.0 == b.0) {
        let m = group[0].0 as usize;
        if use_par {
            let body = |x: usize| -> C64 {
                // NaN/Inf amplitudes still poison the sum through norm_sqr
                // and surface via ensure_finite_energy below.
                let w = if m == 0 {
                    C64::new(psi[x].norm_sqr(), 0.0)
                } else {
                    psi[x ^ m].conj() * psi[x]
                };
                let mut f = C_ZERO;
                for &(_, c, z) in group {
                    let sign = 1.0 - 2.0 * ((x as u64 & z).count_ones() & 1) as f64;
                    f += c.scale(sign);
                }
                w * f
            };
            total += (0..psi.len())
                .into_par_iter()
                .map(body)
                .reduce(|| C_ZERO, |a, b| a + b);
        } else {
            // Blocked SIMD shape: fill a block of per-index group phases
            // f(x) (branch-free sign sweep) and pair weights w(x), then
            // fold w·f serially in index order. Each f and w is the same
            // expression the fused loop computed, and the fold adds the
            // products in the same order, so the energy bits are
            // unchanged — only the f/w fills vectorize.
            let mut acc = C_ZERO;
            for base in (0..psi.len()).step_by(EXPVAL_BLOCK) {
                let blk = EXPVAL_BLOCK.min(psi.len() - base);
                crate::simd::group_phase_block(&mut fbuf[..blk], base, group);
                crate::simd::flip_weights_block(&mut wbuf[..blk], psi, base, m);
                for j in 0..blk {
                    acc += wbuf[j] * fbuf[j];
                }
            }
            total += acc;
        }
    }
    ensure_finite_energy(total.re, "batched direct expectation")
}

/// One flip-mask group of a Hamiltonian, preprocessed for the batched §4.2
/// reduction: all terms share the X/Y flip-mask `mask`; each term carries
/// its effective coefficient (`c · i^{y_count}`) and Z mask.
///
/// This is the same grouping [`energy_direct_batched`] builds internally,
/// exposed so shard-parallel evaluators (the distributed backend) can run
/// the identical reduction without gathering the full state.
#[derive(Clone, Debug)]
pub struct FlipGroup {
    /// X/Y flip-mask shared by every term in the group.
    pub mask: u64,
    /// `(effective coefficient, z_mask)` per term, in Hamiltonian order.
    pub terms: Vec<(C64, u64)>,
}

/// Groups a Hamiltonian's terms by X/Y flip-mask (ascending mask order,
/// stable within a group), mirroring [`energy_direct_batched`]'s internal
/// grouping exactly.
pub fn flip_groups(op: &PauliOp) -> Vec<FlipGroup> {
    let mut terms: Vec<(u64, C64, u64)> = op
        .terms()
        .iter()
        .map(|&(c, ref s)| {
            let eff = c * Phase::from_power(s.y_count()).to_c64();
            (s.x_mask(), eff, s.z_mask())
        })
        .collect();
    terms.sort_by_key(|t| t.0);
    terms
        .chunk_by(|a, b| a.0 == b.0)
        .map(|g| FlipGroup {
            mask: g[0].0,
            terms: g.iter().map(|&(_, c, z)| (c, z)).collect(),
        })
        .collect()
}

/// One rank's contribution to a flip-group's sum in a sharded register:
///
/// `Σ_{x ∈ shard} conj(ψ[x⊕m]) ψ[x] · Σ_t c_t (−1)^{|x ∧ z_t|}`
///
/// `own` holds the rank's amplitudes (global indices `rank·2^n_local ..`),
/// `partner` the shard holding the `x⊕m` side (the own shard again when
/// the mask's global bits are zero). Same arithmetic as
/// [`energy_direct_batched`]'s inner loop, including the branchless sign
/// and the `norm_sqr` fast path for the diagonal (`m = 0`) group.
pub fn shard_group_partial(
    own: &[C64],
    partner: &[C64],
    rank: usize,
    n_local: usize,
    mask: u64,
    terms: &[(C64, u64)],
) -> C64 {
    debug_assert_eq!(own.len(), partner.len());
    debug_assert_eq!(own.len(), 1usize << n_local);
    let local_mask = (1u64 << n_local) - 1;
    let local_flip = (mask & local_mask) as usize;
    let base = (rank as u64) << n_local;
    let body = |k: usize| -> C64 {
        let x = base | k as u64;
        let w = if mask == 0 {
            C64::new(own[k].norm_sqr(), 0.0)
        } else {
            partner[k ^ local_flip].conj() * own[k]
        };
        let mut f = C_ZERO;
        for &(c, z) in terms {
            let sign = 1.0 - 2.0 * ((x & z).count_ones() & 1) as f64;
            f += c.scale(sign);
        }
        w * f
    };
    if own.len() >= PAR_THRESHOLD {
        (0..own.len())
            .into_par_iter()
            .map(body)
            .reduce(|| C_ZERO, |a, b| a + b)
    } else {
        (0..own.len()).map(body).sum()
    }
}

/// Result of a full energy evaluation, with the gate accounting that
/// paper Fig 3 compares.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyEval {
    /// The energy `Re⟨H⟩` (identity terms included by the caller's
    /// grouping; see [`energy_cached`]).
    pub energy: f64,
    /// Logical (pre-fusion) gates charged to this evaluation — the paper's
    /// Fig 3 cost metric, independent of how much the plan layer fuses.
    pub gates_applied: u64,
}

/// Baseline: re-run the ansatz before every measurement group. The ansatz
/// is compiled to a plan ONCE (binding and fusion are per-θ, not per-group)
/// but still *executed* once per group — that re-preparation is the cost
/// paper Fig 3 charges this strategy.
pub fn energy_non_caching(
    ansatz: &Circuit,
    params: &[f64],
    groups: &[MeasurementGroup],
    identity_energy: f64,
) -> Result<EnergyEval> {
    let mut ex = Executor::new();
    let plan = ExecPlan::compile(ansatz, params)?;
    let mut energy = identity_energy;
    let mut gates_applied = 0u64;
    for g in groups {
        let mut state = ex.run_plan(&plan)?;
        gates_applied += plan.stats().gates_in as u64;
        let basis = group_basis_circuit(ansatz.n_qubits(), g)?;
        ex.run_on(&basis, &[], &mut state)?;
        gates_applied += basis.len() as u64;
        energy += diagonal_group_energy_with_diagonalized(&state, g);
    }
    Ok(EnergyEval {
        energy: ensure_finite_energy(energy, "non-caching group evaluation")?,
        gates_applied,
    })
}

/// Caching execution: one ansatz run, then per-group basis changes applied
/// to copies of the cached state (§4.1). The ansatz runs through its
/// compiled plan; basis-change circuits are tiny and concrete, so they run
/// gate-by-gate.
pub fn energy_cached(
    ansatz: &Circuit,
    params: &[f64],
    groups: &[MeasurementGroup],
    identity_energy: f64,
) -> Result<EnergyEval> {
    let mut ex = Executor::new();
    let plan = ExecPlan::compile(ansatz, params)?;
    let cached = ex.run_plan(&plan)?;
    let mut energy = identity_energy;
    let mut gates_applied = plan.stats().gates_in as u64;
    for g in groups {
        let basis = group_basis_circuit(ansatz.n_qubits(), g)?;
        if basis.is_empty() {
            energy += diagonal_group_energy_with_diagonalized(&cached, g);
        } else {
            let mut state = cached.clone();
            ex.run_on(&basis, &[], &mut state)?;
            gates_applied += basis.len() as u64;
            energy += diagonal_group_energy_with_diagonalized(&state, g);
        }
    }
    Ok(EnergyEval {
        energy: ensure_finite_energy(energy, "cached group evaluation")?,
        gates_applied,
    })
}

/// After the group's basis change, each string contributes through its
/// *diagonalized* form (X/Y → Z on the same support).
fn diagonal_group_energy_with_diagonalized(state: &StateVector, group: &MeasurementGroup) -> f64 {
    // Identity terms have empty support and contribute coeff · 1; they are
    // covered by the same formula (parity of empty mask is even).
    let diag_group = MeasurementGroup {
        terms: group
            .terms
            .iter()
            .map(|&(c, s)| (c, nwq_circuit::basis::diagonalized(&s)))
            .collect(),
        basis: group.basis.clone(),
    };
    diagonal_group_energy(state, &diag_group)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwq_circuit::ParamExpr;
    use nwq_pauli::grouping::{group_qubit_wise, group_singletons};
    use nwq_pauli::PauliOp;

    fn toy_ansatz() -> Circuit {
        let mut c = Circuit::new(2);
        c.ry(0, ParamExpr::var(0)).cx(0, 1).rz(1, ParamExpr::var(1));
        c
    }

    fn check_all_strategies_agree(h: &PauliOp, params: &[f64]) {
        let ansatz = toy_ansatz();
        let groups = group_qubit_wise(h);
        let singles = group_singletons(h);
        let direct = {
            let s = crate::executor::simulate(&ansatz, params).unwrap();
            s.energy(h).unwrap()
        };
        let nc = energy_non_caching(&ansatz, params, &groups, 0.0).unwrap();
        let ca = energy_cached(&ansatz, params, &groups, 0.0).unwrap();
        let nc_s = energy_non_caching(&ansatz, params, &singles, 0.0).unwrap();
        assert!(
            (nc.energy - direct).abs() < 1e-10,
            "non-caching {} vs {}",
            nc.energy,
            direct
        );
        assert!(
            (ca.energy - direct).abs() < 1e-10,
            "cached {} vs {}",
            ca.energy,
            direct
        );
        assert!((nc_s.energy - direct).abs() < 1e-10);
        // Caching must never use more gates.
        assert!(ca.gates_applied <= nc.gates_applied);
    }

    #[test]
    fn strategies_agree_on_toy_hamiltonian() {
        let h = PauliOp::parse("1.0 ZZ + 1.0 XX").unwrap();
        check_all_strategies_agree(&h, &[0.3, -0.7]);
        check_all_strategies_agree(&h, &[1.2, 0.0]);
    }

    #[test]
    fn strategies_agree_with_y_terms_and_identity() {
        let h = PauliOp::parse("0.5 YY + 0.25 ZI + 0.125 II + 0.3 XY").unwrap();
        check_all_strategies_agree(&h, &[0.9, 0.4]);
    }

    #[test]
    fn caching_gate_savings_grow_with_terms() {
        // Many groups: caching runs the ansatz once instead of per group.
        let h = PauliOp::parse("1.0 XX + 1.0 YY + 1.0 ZZ + 0.5 XZ + 0.5 ZX").unwrap();
        let ansatz = toy_ansatz();
        let groups = group_singletons(&h);
        let nc = energy_non_caching(&ansatz, &[0.4, 0.2], &groups, 0.0).unwrap();
        let ca = energy_cached(&ansatz, &[0.4, 0.2], &groups, 0.0).unwrap();
        // Non-caching pays ansatz gates per group.
        let ansatz_len = ansatz.len() as u64;
        assert!(nc.gates_applied >= groups.len() as u64 * ansatz_len);
        assert!(ca.gates_applied < nc.gates_applied);
        assert!((nc.energy - ca.energy).abs() < 1e-10);
    }

    #[test]
    fn identity_energy_offset_applies() {
        let h = PauliOp::parse("1.0 ZZ").unwrap();
        let groups = group_qubit_wise(&h);
        let e = energy_cached(&toy_ansatz(), &[0.0, 0.0], &groups, 2.5).unwrap();
        // θ=0 ansatz leaves |00⟩ (up to the rz phase): ⟨ZZ⟩=1 ⇒ 1 + 2.5.
        assert!((e.energy - 3.5).abs() < 1e-10);
    }

    #[test]
    fn diagonal_group_single_pass_matches_direct() {
        // Purely diagonal Hamiltonian needs zero basis-change gates.
        let h = PauliOp::parse("0.7 ZZ + 0.2 ZI + 0.1 IZ").unwrap();
        let groups = group_qubit_wise(&h);
        assert_eq!(groups.len(), 1);
        let ansatz = toy_ansatz();
        let ca = energy_cached(&ansatz, &[0.8, 0.1], &groups, 0.0).unwrap();
        let direct = crate::executor::simulate(&ansatz, &[0.8, 0.1])
            .unwrap()
            .energy(&h)
            .unwrap();
        assert!((ca.energy - direct).abs() < 1e-10);
        // Only the ansatz gates were applied — no basis changes.
        assert_eq!(ca.gates_applied, ansatz.len() as u64);
    }

    #[test]
    fn batched_direct_matches_per_term_direct() {
        let ansatz = toy_ansatz();
        for h in [
            PauliOp::parse("1.0 ZZ + 1.0 XX").unwrap(),
            PauliOp::parse("0.5 YY + 0.25 ZI + 0.125 II + 0.3 XY").unwrap(),
            PauliOp::parse("1.0 XX + 1.0 YY + 1.0 ZZ + 0.5 XZ + 0.5 ZX + 0.1 IZ").unwrap(),
        ] {
            for params in [[0.3, -0.7], [1.2, 0.0], [0.9, 0.4]] {
                let s = crate::executor::simulate(&ansatz, &params).unwrap();
                let per_term = s.energy(&h).unwrap();
                let batched = energy_direct_batched(&s, &h).unwrap();
                assert!(
                    (batched - per_term).abs() < 1e-12,
                    "batched {batched} vs per-term {per_term}"
                );
            }
        }
    }

    #[test]
    fn batched_direct_groups_by_flip_mask() {
        // ZZ, ZI, IZ, II all have flip-mask 0; XX has its own. The batched
        // path must do 2 sweeps where per-term does 5.
        nwq_telemetry::reset();
        nwq_telemetry::set_enabled(true);
        let h = PauliOp::parse("0.7 ZZ + 0.2 ZI + 0.1 IZ + 0.05 II + 1.0 XX").unwrap();
        let s = crate::executor::simulate(&toy_ansatz(), &[0.8, 0.1]).unwrap();
        let before_batched = nwq_telemetry::counter_value("expval.batched_sweeps");
        let before_terms = nwq_telemetry::counter_value("expval.term_sweeps");
        let e = energy_direct_batched(&s, &h).unwrap();
        let batched = nwq_telemetry::counter_value("expval.batched_sweeps") - before_batched;
        let terms = nwq_telemetry::counter_value("expval.term_sweeps") - before_terms;
        nwq_telemetry::set_enabled(false);
        assert_eq!(terms, 5);
        assert_eq!(batched, 2);
        let per_term = s.energy(&h).unwrap();
        assert!((e - per_term).abs() < 1e-12);
    }

    #[test]
    fn batched_direct_large_register_parallel_path() {
        let n = 13; // crosses PAR_THRESHOLD
        let mut ansatz = Circuit::new(n);
        for q in 0..n {
            ansatz.h(q);
        }
        ansatz.cx(0, n - 1).rz(1, 0.4);
        let h = PauliOp::parse(&format!(
            "0.5 {}X + 0.25 Z{} + 0.125 {}",
            "I".repeat(n - 1),
            "I".repeat(n - 1),
            "Z".repeat(n)
        ))
        .unwrap();
        let s = crate::executor::simulate(&ansatz, &[]).unwrap();
        let per_term = s.energy(&h).unwrap();
        let batched = energy_direct_batched(&s, &h).unwrap();
        assert!((batched - per_term).abs() < 1e-12);
    }

    #[test]
    fn sharded_flip_group_reduction_matches_batched_direct() {
        // 4-qubit register sharded over 4 "ranks" (2 local qubits): sum of
        // per-rank flip-group partials must reproduce the single-node
        // batched energy.
        let n = 4;
        let n_local = 2;
        let n_ranks = 1usize << (n - n_local);
        let mut ansatz = Circuit::new(n);
        for q in 0..n {
            ansatz.h(q);
        }
        ansatz.cx(0, 3).ry(1, 0.7).rzz(2, 3, -0.4).cz(0, 2);
        let h = PauliOp::parse("0.7 ZZZZ + 0.3 XIXI + 0.2 IYZX + 0.1 ZIII + 0.05 IIII").unwrap();
        let s = crate::executor::simulate(&ansatz, &[]).unwrap();
        let single = energy_direct_batched(&s, &h).unwrap();
        let full = s.amplitudes();
        let part = full.len() / n_ranks;
        let shards: Vec<&[C64]> = (0..n_ranks)
            .map(|r| &full[r * part..(r + 1) * part])
            .collect();
        let mut total = C_ZERO;
        for g in flip_groups(&h) {
            for (r, own) in shards.iter().enumerate() {
                let partner = shards[r ^ (g.mask >> n_local) as usize];
                total += shard_group_partial(own, partner, r, n_local, g.mask, &g.terms);
            }
        }
        assert!(
            (total.re - single).abs() < 1e-12,
            "sharded {} vs single {}",
            total.re,
            single
        );
        assert!(total.im.abs() < 1e-12);
    }

    #[test]
    fn batched_direct_rejects_non_finite_energy() {
        let mut s = crate::executor::simulate(&toy_ansatz(), &[0.1, 0.2]).unwrap();
        s.amplitudes_mut()[0] = nwq_common::C64::new(f64::NAN, 0.0);
        let h = PauliOp::parse("1.0 ZZ").unwrap();
        let e = energy_direct_batched(&s, &h).unwrap_err();
        assert!(matches!(e, Error::Numerical(_)), "{e}");
    }

    #[test]
    fn batched_direct_dimension_mismatch_rejected() {
        let s = crate::executor::simulate(&toy_ansatz(), &[0.1, 0.2]).unwrap();
        let h = PauliOp::parse("1.0 ZZZ").unwrap();
        assert!(energy_direct_batched(&s, &h).is_err());
    }

    #[test]
    fn large_register_parallel_reduction() {
        let n = 13;
        let mut ansatz = Circuit::new(n);
        for q in 0..n {
            ansatz.h(q);
        }
        let label = format!("{}{}", "Z".repeat(2), "I".repeat(n - 2));
        let h = PauliOp::parse(&format!("1.0 {label}")).unwrap();
        let groups = group_qubit_wise(&h);
        let e = energy_cached(&ansatz, &[], &groups, 0.0).unwrap();
        // Uniform superposition: ⟨ZZ…⟩ = 0.
        assert!(e.energy.abs() < 1e-10);
    }
}
