//! Energy evaluation strategies (paper §4.1 + §4.2 combined).
//!
//! Three ways to evaluate `⟨ψ(θ)|H|ψ(θ)⟩`, in decreasing cost:
//!
//! 1. **Non-caching** (`energy_non_caching`): re-prepare the ansatz for
//!    every measurement group, apply the group's basis change, read the
//!    diagonal expectations. This is the baseline of paper Fig 3.
//! 2. **Caching** (`energy_cached`): prepare the ansatz once, then for
//!    each group copy the cached amplitudes and apply only the (tiny)
//!    basis-change circuit (§4.1.4).
//! 3. **Direct** (`StateVector::expectation`): no basis changes at all —
//!    evaluate each Pauli term as an exact amplitude reduction (§4.2).
//!
//! All three agree to numerical precision; the tests pin that down.

use crate::executor::Executor;
use crate::state::StateVector;
use nwq_circuit::basis::group_basis_circuit;
use nwq_circuit::Circuit;
use nwq_common::{bits::masked_parity, Result};
use nwq_pauli::grouping::MeasurementGroup;
use rayon::prelude::*;

/// Once every string in a group has been rotated to diagonal form, all its
/// expectations come from a single pass over the probabilities:
/// `⟨P_t⟩ = Σ_x |a_x|² (−1)^{|x ∧ support(P_t)|}`.
fn diagonal_group_energy(state: &StateVector, group: &MeasurementGroup) -> f64 {
    let supports: Vec<u64> = group.terms.iter().map(|(_, s)| s.support()).collect();
    let coeffs: Vec<f64> = group.terms.iter().map(|(c, _)| c.re).collect();
    let amps = state.amplitudes();
    let fold = |acc: Vec<f64>, (x, p): (usize, f64)| {
        let mut acc = acc;
        for (t, &m) in supports.iter().enumerate() {
            acc[t] += if masked_parity(x as u64, m) { -p } else { p };
        }
        acc
    };
    let per_term: Vec<f64> = if amps.len() >= (1 << 12) {
        amps.par_iter()
            .enumerate()
            .map(|(x, a)| (x, a.norm_sqr()))
            .fold(|| vec![0.0; supports.len()], fold)
            .reduce(
                || vec![0.0; supports.len()],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x += y;
                    }
                    a
                },
            )
    } else {
        amps.iter()
            .enumerate()
            .map(|(x, a)| (x, a.norm_sqr()))
            .fold(vec![0.0; supports.len()], fold)
    };
    per_term.iter().zip(&coeffs).map(|(e, c)| e * c).sum()
}

/// Result of a full energy evaluation, with the gate accounting that
/// paper Fig 3 compares.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyEval {
    /// The energy `Re⟨H⟩` (identity terms included by the caller's
    /// grouping; see [`energy_cached`]).
    pub energy: f64,
    /// Gates applied during this evaluation.
    pub gates_applied: u64,
}

/// Baseline: re-run the ansatz before every measurement group.
pub fn energy_non_caching(
    ansatz: &Circuit,
    params: &[f64],
    groups: &[MeasurementGroup],
    identity_energy: f64,
) -> Result<EnergyEval> {
    let mut ex = Executor::new();
    let mut energy = identity_energy;
    for g in groups {
        let mut state = ex.run(ansatz, params)?;
        let basis = group_basis_circuit(ansatz.n_qubits(), g)?;
        ex.run_on(&basis, &[], &mut state)?;
        energy += diagonal_group_energy_with_diagonalized(&state, g);
    }
    Ok(EnergyEval {
        energy,
        gates_applied: ex.stats().total_gates(),
    })
}

/// Caching execution: one ansatz run, then per-group basis changes applied
/// to copies of the cached state (§4.1).
pub fn energy_cached(
    ansatz: &Circuit,
    params: &[f64],
    groups: &[MeasurementGroup],
    identity_energy: f64,
) -> Result<EnergyEval> {
    let mut ex = Executor::new();
    let cached = ex.run(ansatz, params)?;
    let mut energy = identity_energy;
    for g in groups {
        let basis = group_basis_circuit(ansatz.n_qubits(), g)?;
        if basis.is_empty() {
            energy += diagonal_group_energy_with_diagonalized(&cached, g);
        } else {
            let mut state = cached.clone();
            ex.run_on(&basis, &[], &mut state)?;
            energy += diagonal_group_energy_with_diagonalized(&state, g);
        }
    }
    Ok(EnergyEval {
        energy,
        gates_applied: ex.stats().total_gates(),
    })
}

/// After the group's basis change, each string contributes through its
/// *diagonalized* form (X/Y → Z on the same support).
fn diagonal_group_energy_with_diagonalized(state: &StateVector, group: &MeasurementGroup) -> f64 {
    // Identity terms have empty support and contribute coeff · 1; they are
    // covered by the same formula (parity of empty mask is even).
    let diag_group = MeasurementGroup {
        terms: group
            .terms
            .iter()
            .map(|&(c, s)| (c, nwq_circuit::basis::diagonalized(&s)))
            .collect(),
        basis: group.basis.clone(),
    };
    diagonal_group_energy(state, &diag_group)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwq_circuit::ParamExpr;
    use nwq_pauli::grouping::{group_qubit_wise, group_singletons};
    use nwq_pauli::PauliOp;

    fn toy_ansatz() -> Circuit {
        let mut c = Circuit::new(2);
        c.ry(0, ParamExpr::var(0)).cx(0, 1).rz(1, ParamExpr::var(1));
        c
    }

    fn check_all_strategies_agree(h: &PauliOp, params: &[f64]) {
        let ansatz = toy_ansatz();
        let groups = group_qubit_wise(h);
        let singles = group_singletons(h);
        let direct = {
            let s = crate::executor::simulate(&ansatz, params).unwrap();
            s.energy(h).unwrap()
        };
        let nc = energy_non_caching(&ansatz, params, &groups, 0.0).unwrap();
        let ca = energy_cached(&ansatz, params, &groups, 0.0).unwrap();
        let nc_s = energy_non_caching(&ansatz, params, &singles, 0.0).unwrap();
        assert!(
            (nc.energy - direct).abs() < 1e-10,
            "non-caching {} vs {}",
            nc.energy,
            direct
        );
        assert!(
            (ca.energy - direct).abs() < 1e-10,
            "cached {} vs {}",
            ca.energy,
            direct
        );
        assert!((nc_s.energy - direct).abs() < 1e-10);
        // Caching must never use more gates.
        assert!(ca.gates_applied <= nc.gates_applied);
    }

    #[test]
    fn strategies_agree_on_toy_hamiltonian() {
        let h = PauliOp::parse("1.0 ZZ + 1.0 XX").unwrap();
        check_all_strategies_agree(&h, &[0.3, -0.7]);
        check_all_strategies_agree(&h, &[1.2, 0.0]);
    }

    #[test]
    fn strategies_agree_with_y_terms_and_identity() {
        let h = PauliOp::parse("0.5 YY + 0.25 ZI + 0.125 II + 0.3 XY").unwrap();
        check_all_strategies_agree(&h, &[0.9, 0.4]);
    }

    #[test]
    fn caching_gate_savings_grow_with_terms() {
        // Many groups: caching runs the ansatz once instead of per group.
        let h = PauliOp::parse("1.0 XX + 1.0 YY + 1.0 ZZ + 0.5 XZ + 0.5 ZX").unwrap();
        let ansatz = toy_ansatz();
        let groups = group_singletons(&h);
        let nc = energy_non_caching(&ansatz, &[0.4, 0.2], &groups, 0.0).unwrap();
        let ca = energy_cached(&ansatz, &[0.4, 0.2], &groups, 0.0).unwrap();
        // Non-caching pays ansatz gates per group.
        let ansatz_len = ansatz.len() as u64;
        assert!(nc.gates_applied >= groups.len() as u64 * ansatz_len);
        assert!(ca.gates_applied < nc.gates_applied);
        assert!((nc.energy - ca.energy).abs() < 1e-10);
    }

    #[test]
    fn identity_energy_offset_applies() {
        let h = PauliOp::parse("1.0 ZZ").unwrap();
        let groups = group_qubit_wise(&h);
        let e = energy_cached(&toy_ansatz(), &[0.0, 0.0], &groups, 2.5).unwrap();
        // θ=0 ansatz leaves |00⟩ (up to the rz phase): ⟨ZZ⟩=1 ⇒ 1 + 2.5.
        assert!((e.energy - 3.5).abs() < 1e-10);
    }

    #[test]
    fn diagonal_group_single_pass_matches_direct() {
        // Purely diagonal Hamiltonian needs zero basis-change gates.
        let h = PauliOp::parse("0.7 ZZ + 0.2 ZI + 0.1 IZ").unwrap();
        let groups = group_qubit_wise(&h);
        assert_eq!(groups.len(), 1);
        let ansatz = toy_ansatz();
        let ca = energy_cached(&ansatz, &[0.8, 0.1], &groups, 0.0).unwrap();
        let direct = crate::executor::simulate(&ansatz, &[0.8, 0.1])
            .unwrap()
            .energy(&h)
            .unwrap();
        assert!((ca.energy - direct).abs() < 1e-10);
        // Only the ansatz gates were applied — no basis changes.
        assert_eq!(ca.gates_applied, ansatz.len() as u64);
    }

    #[test]
    fn large_register_parallel_reduction() {
        let n = 13;
        let mut ansatz = Circuit::new(n);
        for q in 0..n {
            ansatz.h(q);
        }
        let label = format!("{}{}", "Z".repeat(2), "I".repeat(n - 2));
        let h = PauliOp::parse(&format!("1.0 {label}")).unwrap();
        let groups = group_qubit_wise(&h);
        let e = energy_cached(&ansatz, &[], &groups, 0.0).unwrap();
        // Uniform superposition: ⟨ZZ…⟩ = 0.
        assert!(e.energy.abs() < 1e-10);
    }
}
