//! `nwq` — command-line front end to the NWQ-Sim-rs VQE workflow.
//!
//! ```text
//! nwq vqe   [--molecule h2|h4|water] [--r BOHR] [--orbitals N] [--electrons M]
//!           [--optimizer nm|lbfgs|adam|spsa] [--grad adjoint|shift|fd]
//!           [--max-evals N] [--metrics FILE.json] [resilience flags]
//! nwq adapt [--orbitals N] [--electrons M] [--max-iter K] [--metrics FILE.json]
//!           [resilience flags]
//! nwq qpe   [--r BOHR] [--ancillas N] [--steps N] [--order 1|2] [--metrics FILE.json]
//! nwq fuse  --in FILE.qasm [--out FILE.qasm is unsupported: fused blocks
//!           have no QASM form; stats are printed instead]
//! nwq serve [--addr 127.0.0.1:7878] [--workers N] [--queue-capacity N]
//!           [--max-batch N] [--cache-capacity N] [--aging-ms MS]
//!           [--retries N] [--inject-faults RATE] [--fault-seed SEED]
//!           [--kill-after-evals N] [--metrics FILE.json]
//! nwq client --addr HOST:PORT --op submit|status|result|cancel|stats|drain
//!           [--molecule toy|h2|water] [--job energy|vqe|adapt]
//!           [--params a,b,...] [--x0 a,b,...] [--max-evals N] [--max-iter K]
//!           [--priority low|normal|high] [--deadline-ms MS] [--id N] [--wait 0|1]
//!           [--timeout-ms MS]
//! nwq dist  [--qubits N] [--ranks R] [--layers L] [--fuse-local 0|1]
//!           [--snapshot-every N] [--inject-rank-loss RATE] [--fault-seed SEED]
//!           [--exchange-timeout-ms MS] [--exchange-retries N]
//!           [--metrics FILE.json]
//! nwq info
//! ```
//!
//! Resilience flags (vqe and adapt):
//!
//! ```text
//! --checkpoint FILE        write atomic JSON snapshots to FILE
//! --checkpoint-every N     snapshot cadence in best-energy improvements (10)
//! --resume FILE            resume a previous run from its checkpoint
//! --retries N              transient-failure retry budget per evaluation (5)
//! --inject-faults RATE     inject seeded evaluation failures at RATE
//! --fault-seed SEED        fault-injection RNG seed (12345)
//! --kill-after-evals N     abort after N fresh evaluations (testing hook)
//! ```
//!
//! Every subcommand prints plain-text results; exit code 0 on success,
//! 1 on a domain error, 2 on a usage error. `--metrics FILE.json` enables
//! the nwq-telemetry layer and writes its JSON snapshot on success.

use nwq_chem::molecules::{h2_sto3g, water_model};
use nwq_chem::sto3g::h2_molecule;
use nwq_chem::uccsd::uccsd_ansatz;
use nwq_chem::MolecularIntegrals;
use nwq_core::backend::{Backend, DirectBackend};
use nwq_core::exact::{ground_energy_sector_default, Sector};
use nwq_core::qpe::{run_qpe, QpeConfig};
use nwq_core::resilience::{
    run_vqe_with, CheckpointConfig, FaultSpec, FaultyBackend, ResilienceOptions, ResumeState,
    RetryPolicy,
};
use nwq_core::vqe::{GradSource, VqeProblem};
use nwq_opt::{Adam, GradOptimizer, Lbfgs, NelderMead, Optimizer, Spsa};
use std::collections::HashMap;
use std::process::ExitCode;

struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Args, String> {
        let mut flags = HashMap::new();
        let mut it = argv.iter();
        while let Some(a) = it.next() {
            let key = a
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got {a:?}"))?;
            let val = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
            flags.insert(key.to_string(), val.clone());
        }
        Ok(Args { flags })
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("bad value for --{key}: {v:?}")),
        }
    }

    fn str_or(&self, key: &str, default: &str) -> String {
        self.flags
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }
}

fn molecule_from(args: &Args) -> Result<MolecularIntegrals, String> {
    match args.str_or("molecule", "h2").as_str() {
        "h2" => {
            if args.flags.contains_key("r") {
                let r: f64 = args.get("r", 1.4008)?;
                h2_molecule(r).map_err(|e| e.to_string())
            } else {
                Ok(h2_sto3g())
            }
        }
        "h4" => {
            let r: f64 = args.get("r", 1.8)?;
            nwq_chem::sto3g::hydrogen_chain_sto3g(4, r).map_err(|e| e.to_string())
        }
        "water" => {
            let orbitals: usize = args.get("orbitals", 4)?;
            let electrons: usize = args.get("electrons", 4)?;
            Ok(water_model(orbitals, electrons))
        }
        other => Err(format!("unknown molecule {other:?} (expected h2|h4|water)")),
    }
}

fn optimizer_from(args: &Args) -> Result<Box<dyn Optimizer>, String> {
    Ok(match args.str_or("optimizer", "nm").as_str() {
        "nm" => Box::new(NelderMead::for_vqe()),
        "lbfgs" => Box::new(Lbfgs::default()),
        "adam" => Box::new(Adam::default()),
        "spsa" => Box::new(Spsa::default()),
        other => {
            return Err(format!(
                "unknown optimizer {other:?} (expected nm|lbfgs|adam|spsa)"
            ))
        }
    })
}

/// The gradient-capable optimizer for `--grad` runs; Nelder–Mead and SPSA
/// have no use for gradients, so they are rejected up front.
fn grad_optimizer_from(args: &Args) -> Result<Box<dyn GradOptimizer>, String> {
    Ok(match args.str_or("optimizer", "lbfgs").as_str() {
        "lbfgs" => Box::new(Lbfgs::default()),
        "adam" => Box::new(Adam::default()),
        other => {
            return Err(format!(
                "--grad requires a gradient-based optimizer (lbfgs|adam), got {other:?}"
            ))
        }
    })
}

/// How `--grad` runs obtain ∂E/∂θ. `shift` uses the π/4 excitation rule
/// (exact for the UCCSD ansatz the vqe subcommand builds).
fn grad_source_from(args: &Args) -> Result<Option<GradSource>, String> {
    Ok(match args.flags.get("grad").map(String::as_str) {
        None => None,
        Some("adjoint") => Some(GradSource::Adjoint),
        Some("shift") => Some(GradSource::shift_excitations()),
        Some("fd") => Some(GradSource::FiniteDifference(1e-6)),
        Some(other) => {
            return Err(format!(
                "unknown gradient source {other:?} (expected adjoint|shift|fd)"
            ))
        }
    })
}

/// Builds [`ResilienceOptions`] from the shared resilience flags.
fn resilience_from(args: &Args) -> Result<ResilienceOptions, String> {
    let mut opts = ResilienceOptions {
        retry: RetryPolicy {
            max_retries: args.get("retries", 5)?,
        },
        ..Default::default()
    };
    if let Some(path) = args.flags.get("checkpoint") {
        opts.checkpoint = Some(CheckpointConfig {
            path: path.into(),
            every_improvements: args.get("checkpoint-every", 10)?,
        });
    }
    if let Some(path) = args.flags.get("resume") {
        let state = ResumeState::load(std::path::Path::new(path)).map_err(|e| e.to_string())?;
        println!(
            "resume  : replaying {} evaluations from {path}",
            state.evaluations()
        );
        opts.resume = Some(state);
    }
    if args.flags.contains_key("kill-after-evals") {
        opts.abort_after_evals = Some(args.get("kill-after-evals", 0)?);
    }
    Ok(opts)
}

/// A [`DirectBackend`], wrapped in fault injection when `--inject-faults`
/// asks for it.
fn backend_from(args: &Args) -> Result<Box<dyn Backend>, String> {
    let rate: f64 = args.get("inject-faults", 0.0)?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("--inject-faults must be in [0, 1], got {rate}"));
    }
    if rate > 0.0 {
        let seed: u64 = args.get("fault-seed", 12345)?;
        println!("faults  : injecting evaluation failures at rate {rate} (seed {seed})");
        Ok(Box::new(FaultyBackend::wrap(
            DirectBackend::new(),
            FaultSpec::eval_failures(rate, seed),
        )))
    } else {
        Ok(Box::new(DirectBackend::new()))
    }
}

fn cmd_vqe(args: &Args) -> Result<(), String> {
    let mol = molecule_from(args)?;
    let max_evals: usize = args.get("max-evals", 4000)?;
    let h = mol.to_qubit_hamiltonian().map_err(|e| e.to_string())?;
    let ansatz = uccsd_ansatz(h.n_qubits(), mol.n_electrons()).map_err(|e| e.to_string())?;
    println!(
        "molecule: {} spatial orbitals, {} electrons -> {} qubits, {} Pauli terms",
        mol.n_spatial(),
        mol.n_electrons(),
        h.n_qubits(),
        h.num_terms()
    );
    println!(
        "ansatz  : UCCSD, {} gates, {} parameters",
        ansatz.len(),
        ansatz.n_params()
    );
    println!("E_HF    : {:+.6} Ha", mol.hf_total_energy());
    let problem = VqeProblem {
        hamiltonian: h.clone(),
        ansatz,
    };
    let opts = resilience_from(args)?;
    let x0 = vec![0.0; problem.ansatz.n_params()];
    let (r, stats) = match grad_source_from(args)? {
        Some(source) => {
            if args.get("inject-faults", 0.0)? > 0.0 {
                return Err(
                    "--inject-faults is incompatible with --grad (fault injection wraps \
                     the backend in an energy-only decorator)"
                        .into(),
                );
            }
            let mut backend = DirectBackend::new();
            let mut optimizer = grad_optimizer_from(args)?;
            println!(
                "grad    : {} source, {} equivalents per fused gradient",
                source.name(),
                match source {
                    GradSource::Adjoint => 4,
                    _ => 2 * problem.ansatz.n_params() + 1,
                }
            );
            let r = nwq_core::resilience::run_vqe_grad_with(
                &problem,
                &mut backend,
                &mut *optimizer,
                source,
                &x0,
                max_evals,
                &opts,
            )
            .map_err(|e| e.to_string())?;
            (r, backend.stats())
        }
        None => {
            let mut backend = backend_from(args)?;
            let mut optimizer = optimizer_from(args)?;
            let r = run_vqe_with(
                &problem,
                &mut *backend,
                &mut *optimizer,
                &x0,
                max_evals,
                &opts,
            )
            .map_err(|e| e.to_string())?;
            let stats = backend.stats();
            (r, stats)
        }
    };
    println!(
        "E_VQE   : {:+.6} Ha  ({} evaluations)",
        r.energy, r.evaluations
    );
    if let Some(ckpt) = &opts.checkpoint {
        println!("ckpt    : wrote {}", ckpt.path.display());
    }
    if h.n_qubits() <= 14 {
        let exact = ground_energy_sector_default(&h, Sector::closed_shell(mol.n_electrons()))
            .map_err(|e| e.to_string())?;
        println!(
            "E_exact : {exact:+.6} Ha  (error {:+.2e})",
            r.energy - exact
        );
    }
    println!(
        "backend : {} ansatz runs, {} gates applied",
        stats.ansatz_runs, stats.gates_applied
    );
    Ok(())
}

fn cmd_adapt(args: &Args) -> Result<(), String> {
    let orbitals: usize = args.get("orbitals", 4)?;
    let electrons: usize = args.get("electrons", 4)?;
    let max_iter: usize = args.get("max-iter", 12)?;
    let mol = water_model(orbitals, electrons);
    let h = mol.to_qubit_hamiltonian().map_err(|e| e.to_string())?;
    let exact = ground_energy_sector_default(&h, Sector::closed_shell(electrons))
        .map_err(|e| e.to_string())?;
    let pool = nwq_chem::pool::OperatorPool::singles_doubles(h.n_qubits(), electrons)
        .map_err(|e| e.to_string())?;
    println!(
        "ADAPT-VQE: {} qubits, {} terms, pool {} | E_exact {exact:+.6}",
        h.n_qubits(),
        h.num_terms(),
        pool.len()
    );
    let opts = resilience_from(args)?;
    let mut backend = backend_from(args)?;
    let mut opt = NelderMead::for_vqe();
    let config = nwq_core::adapt::AdaptConfig {
        max_iterations: max_iter,
        target_energy: Some(exact),
        ..Default::default()
    };
    let r = nwq_core::adapt::run_adapt_vqe_with(
        &h,
        &pool,
        electrons,
        &mut *backend,
        &mut opt,
        &config,
        &opts,
    )
    .map_err(|e| e.to_string())?;
    for (i, it) in r.iterations.iter().enumerate() {
        println!(
            "iter {:>2}: +{:<14} E = {:+.8}  dE = {:+.2e}",
            i + 1,
            it.operator,
            it.energy,
            it.energy - exact
        );
    }
    println!(
        "stop: {:?} (dE = {:+.2e}, {} evaluations)",
        r.stop_reason,
        r.energy - exact,
        r.total_evaluations
    );
    if let Some(ckpt) = &opts.checkpoint {
        println!("ckpt    : wrote {}", ckpt.path.display());
    }
    Ok(())
}

fn cmd_qpe(args: &Args) -> Result<(), String> {
    let r: f64 = args.get("r", 1.4008)?;
    let ancillas: usize = args.get("ancillas", 6)?;
    let steps: usize = args.get("steps", 16)?;
    let order: usize = args.get("order", 2)?;
    let mol = h2_molecule(r).map_err(|e| e.to_string())?;
    let h = mol.to_qubit_hamiltonian().map_err(|e| e.to_string())?;
    let mut prep = nwq_circuit::Circuit::new(h.n_qubits());
    nwq_chem::uccsd::append_hf_state(&mut prep, mol.n_electrons()).map_err(|e| e.to_string())?;
    let cfg = QpeConfig {
        n_ancilla: ancillas,
        t: 1.5,
        trotter_steps: steps,
        order: match order {
            1 => nwq_circuit::exp_pauli::TrotterOrder::First,
            2 => nwq_circuit::exp_pauli::TrotterOrder::Second,
            _ => return Err("--order must be 1 or 2".into()),
        },
    };
    let out = run_qpe(&h, &prep, &cfg).map_err(|e| e.to_string())?;
    println!(
        "QPE (H2 at R = {r} a0): E = {:+.5} Ha (resolution {:.5}, peak p = {:.3})",
        out.energy_near(mol.hf_total_energy()),
        out.resolution(),
        out.peak_probability
    );
    Ok(())
}

fn cmd_fuse(args: &Args) -> Result<(), String> {
    let path = args
        .flags
        .get("in")
        .ok_or_else(|| "--in FILE.qasm is required".to_string())?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let circuit = nwq_circuit::qasm::from_qasm(&text).map_err(|e| e.to_string())?;
    let (fused, stats) = nwq_circuit::fusion::fuse(&circuit).map_err(|e| e.to_string())?;
    println!(
        "{path}: {} qubits, {} gates -> {} fused blocks ({:.1}% reduction, depth {} -> {})",
        circuit.n_qubits(),
        stats.gates_before,
        stats.gates_after,
        stats.reduction() * 100.0,
        circuit.depth(),
        fused.depth()
    );
    Ok(())
}

/// `nwq serve`: bind the TCP job server and run until a client drains it.
fn cmd_serve(args: &Args) -> Result<(), String> {
    let addr = args.str_or("addr", "127.0.0.1:7878");
    let rate: f64 = args.get("inject-faults", 0.0)?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("--inject-faults must be in [0, 1], got {rate}"));
    }
    let mut engine = nwq_serve::EngineConfig {
        workers: args.get("workers", 2)?,
        queue: nwq_serve::QueueConfig {
            capacity: args.get("queue-capacity", 64)?,
            aging_ms: args.get("aging-ms", 1000.0)?,
        },
        cache: nwq_serve::CacheConfig {
            capacity: args.get("cache-capacity", 4096)?,
        },
        max_batch: args.get("max-batch", 8)?,
        retry: RetryPolicy {
            max_retries: args.get("retries", 5)?,
        },
        ..Default::default()
    };
    if rate > 0.0 {
        let seed: u64 = args.get("fault-seed", 12345)?;
        println!("faults  : injecting evaluation failures at rate {rate} (seed {seed})");
        engine.faults = Some(FaultSpec::eval_failures(rate, seed));
    }
    if args.flags.contains_key("kill-after-evals") {
        engine.abort_after_evals = Some(args.get("kill-after-evals", 0)?);
    }
    let cfg = nwq_serve::ServerConfig {
        engine,
        ..Default::default()
    };
    let server = nwq_serve::Server::bind(&addr, cfg).map_err(|e| format!("binding {addr}: {e}"))?;
    let bound = server.local_addr().map_err(|e| e.to_string())?;
    println!(
        "serving : {bound} ({} workers, queue {}, max batch {})",
        args.get("workers", 2usize)?,
        args.get("queue-capacity", 64usize)?,
        args.get("max-batch", 8usize)?
    );
    println!("drain   : nwq client --addr {bound} --op drain");
    server.run().map_err(|e| e.to_string())?;
    println!("drained : all accepted jobs reached a terminal state");
    Ok(())
}

/// `nwq dist`: run a layered benchmark circuit through the real sharded
/// executor and report the measured-vs-modeled communication picture plus
/// a gather-free energy readout. `--snapshot-every` / `--inject-rank-loss`
/// route through the survivable executor: consistent-cut snapshots plus
/// bitwise replay recovery from scheduled rank deaths.
fn cmd_dist(args: &Args) -> Result<(), String> {
    let n_qubits: usize = args.get("qubits", 16)?;
    let n_ranks: usize = args.get("ranks", 4)?;
    let layers: usize = args.get("layers", 2)?;
    let fuse_local = args.get("fuse-local", 0u8)? != 0;
    let snapshot_every: usize = args.get("snapshot-every", 0)?;
    let loss_rate: f64 = args.get("inject-rank-loss", 0.0)?;
    if !(0.0..=1.0).contains(&loss_rate) {
        return Err(format!(
            "--inject-rank-loss must be in [0, 1], got {loss_rate}"
        ));
    }
    let resilient = snapshot_every > 0 || loss_rate > 0.0;
    if resilient && fuse_local {
        return Err("--fuse-local 1 is incompatible with the resilient path \
                    (recovery replays per-gate for bitwise identity)"
            .into());
    }

    // Layered hardware-efficient circuit whose CX ring always crosses the
    // global/local boundary — same family the dist_scaling bench sweeps.
    let mut c = nwq_circuit::Circuit::new(n_qubits);
    for q in 0..n_qubits {
        c.h(q);
    }
    for l in 0..layers {
        for q in 0..n_qubits {
            c.ry(q, 0.3 + 0.1 * (l * n_qubits + q) as f64 / n_qubits as f64);
        }
        for q in 0..n_qubits {
            c.cx(q, (q + 1) % n_qubits);
        }
    }

    let lean = args.get("lean", 1u8)? != 0;
    // Each mode is checked against its own planner: the θ-aware lean plan
    // or the naive full-exchange pattern.
    let plan = if lean {
        nwq_dist::plan_communication(&c, n_ranks).map_err(|e| e.to_string())?
    } else {
        nwq_dist::plan_communication_naive(&c, n_ranks).map_err(|e| e.to_string())?
    };
    let opts = nwq_dist::ShardOptions {
        fuse_local,
        exchange_timeout_ms: args.get("exchange-timeout-ms", 2000)?,
        exchange_retries: args.get("exchange-retries", 4)?,
        lean_exchange: lean,
    };
    let started = std::time::Instant::now();
    let (state, recovery_report) = if resilient {
        let schedule = if loss_rate > 0.0 {
            let seed: u64 = args.get("fault-seed", 12345)?;
            let mut inj = nwq_dist::FaultInjector::new(nwq_dist::FaultSpec {
                rank_death: loss_rate,
                seed,
                ..Default::default()
            });
            let s = nwq_dist::FaultSchedule::from_injector(&mut inj, c.gates().len(), n_ranks);
            println!(
                "faults  : scheduling {} rank deaths at rate {loss_rate} (seed {seed})",
                s.deaths.len()
            );
            s
        } else {
            nwq_dist::FaultSchedule::none()
        };
        let recovery = nwq_dist::RecoveryOptions {
            snapshot_every: if snapshot_every > 0 {
                snapshot_every
            } else {
                8
            },
            // Every scheduled death costs at most one recovery; the slack
            // covers nothing in practice but keeps the budget non-brittle.
            max_recoveries: schedule.deaths.len() as u32 + 4,
            ..Default::default()
        };
        let (state, report) =
            nwq_dist::run_distributed_resilient(&c, &[], n_ranks, &opts, &recovery, &schedule)
                .map_err(|e| e.to_string())?;
        (state, Some(report))
    } else {
        let state = nwq_dist::run_sharded(&c, &[], n_ranks, &opts).map_err(|e| e.to_string())?;
        (state, None)
    };
    let wall_s = started.elapsed().as_secs_f64();
    let stats = state.comm_stats();

    // Gather-free readout: ZZ ring + X fields, reduced shard by shard.
    let op = {
        let mut terms = Vec::new();
        for q in 0..n_qubits {
            let mut zz = vec!['I'; n_qubits];
            zz[q] = 'Z';
            zz[(q + 1) % n_qubits] = 'Z';
            terms.push(format!("0.5 {}", zz.iter().collect::<String>()));
        }
        nwq_pauli::PauliOp::parse(&terms.join(" + ")).map_err(|e| e.to_string())?
    };
    let energy = nwq_dist::distributed_energy(&state, &op).map_err(|e| e.to_string())?;

    let model = nwq_dist::CostModel::perlmutter_like();
    let gates = c.gates().len() as u64;
    let updates = gates as f64 * (1u64 << n_qubits) as f64;
    println!(
        "layout  : {n_qubits} qubits over {n_ranks} ranks ({} local qubits, {} amps/shard)",
        state.n_local(),
        state.partition_len()
    );
    println!(
        "gates   : {gates} total ({} local, {} global{})",
        stats.local_gates,
        stats.global_gates,
        if fuse_local { ", local runs fused" } else { "" }
    );
    println!(
        "comm    : {} messages, {} bytes (planned {} / {}, {})",
        stats.messages,
        stats.bytes,
        plan.messages,
        plan.bytes,
        if lean { "lean" } else { "naive" }
    );
    if lean {
        println!(
            "lean    : {} exchanges elided, {} fused, {} bytes saved vs naive",
            stats.exchanges_elided, stats.exchanges_fused, stats.bytes_saved
        );
    }
    // After a recovery, the measured stats cover only the final
    // generation's replayed suffix — the plan-equality invariant only
    // holds for fault-free runs.
    if !fuse_local && loss_rate == 0.0 && stats != plan {
        return Err("measured exchange traffic diverged from the communication plan".into());
    }
    println!(
        "model   : {:.3e} s comm + {:.3e} s compute (Perlmutter-like α–β)",
        model.comm_time_s(&stats, n_ranks),
        model.compute_time_s(gates, n_qubits, n_ranks)
    );
    println!(
        "measured: {wall_s:.3} s wall, {:.3e} amplitude updates/s",
        updates / wall_s
    );
    if let Some(report) = &recovery_report {
        println!(
            "recovery: {} snapshots planned, {} recoveries over {} generations{}",
            report.snapshots_planned,
            report.recoveries,
            report.generations,
            if report.resume_steps.is_empty() {
                String::new()
            } else {
                format!(" (resumed at tape steps {:?})", report.resume_steps)
            }
        );
    }
    println!("E       : {energy:+.6} (gather-free ZZ-ring readout)");
    Ok(())
}

/// Parses `--params`-style comma-separated float lists.
fn float_list(args: &Args, key: &str) -> Result<Vec<f64>, String> {
    match args.flags.get(key) {
        None => Ok(Vec::new()),
        Some(s) if s.trim().is_empty() => Ok(Vec::new()),
        Some(s) => s
            .split(',')
            .map(|t| {
                t.trim()
                    .parse::<f64>()
                    .map_err(|_| format!("bad float {t:?} in --{key}"))
            })
            .collect(),
    }
}

/// Builds a [`nwq_serve::JobSpec`] from `client --op submit` flags.
fn job_spec_from(args: &Args) -> Result<nwq_serve::JobSpec, String> {
    let molecule = args.str_or("molecule", "toy");
    let kind = match args.str_or("job", "energy").as_str() {
        "energy" => nwq_serve::JobKind::EnergyEval {
            params: float_list(args, "params")?,
        },
        "vqe" => nwq_serve::JobKind::Vqe {
            x0: float_list(args, "x0")?,
            max_evals: args.get("max-evals", 2000)?,
        },
        "adapt" => nwq_serve::JobKind::Adapt {
            max_iterations: args.get("max-iter", 8)?,
        },
        other => return Err(format!("unknown --job {other:?} (energy|vqe|adapt)")),
    };
    let priority_name = args.str_or("priority", "normal");
    let priority = nwq_serve::Priority::parse(&priority_name)
        .ok_or_else(|| format!("unknown --priority {priority_name:?} (low|normal|high)"))?;
    let mut spec = nwq_serve::JobSpec {
        molecule,
        kind,
        priority,
        deadline_ms: None,
    };
    if args.flags.contains_key("deadline-ms") {
        spec.deadline_ms = Some(args.get("deadline-ms", 0)?);
    }
    Ok(spec)
}

/// `nwq client`: one protocol operation against a running server. Replies
/// are printed as raw protocol JSON — one line, pipeable to `jq`.
fn cmd_client(args: &Args) -> Result<(), String> {
    let addr = args
        .flags
        .get("addr")
        .ok_or_else(|| "--addr HOST:PORT is required".to_string())?;
    let op = args.str_or("op", "stats");
    // A read timeout turns a hung server into a clean error instead of a
    // stuck process. Default 0 = disabled: blocking waits (`--wait 1`) may
    // legitimately sit for the server's full 300 s wait cap.
    let timeout_ms: u64 = args.get("timeout-ms", 0)?;
    let timeout = (timeout_ms > 0).then(|| std::time::Duration::from_millis(timeout_ms));
    let mut client =
        nwq_serve::Client::connect_with_timeout(addr, timeout).map_err(|e| e.to_string())?;
    let id = |key: &str| -> Result<u64, String> { args.get(key, u64::MAX) };
    let reply = match op.as_str() {
        "submit" => {
            let spec = job_spec_from(args)?;
            match client.submit(&spec).map_err(|e| e.to_string())? {
                nwq_serve::SubmitOutcome::Accepted(id) => {
                    if args.get("wait", 0u8)? != 0 {
                        client.wait_result(id).map_err(|e| e.to_string())?
                    } else {
                        client.result(id).map_err(|e| e.to_string())?
                    }
                }
                nwq_serve::SubmitOutcome::Rejected { reason } => {
                    println!("{{\"ok\":0,\"rejected\":1,\"reason\":\"{reason}\"}}");
                    return Err(format!("submission rejected: {reason}"));
                }
            }
        }
        "status" => client
            .request(&nwq_serve::Request::Status { id: id("id")? })
            .map_err(|e| e.to_string())?,
        "result" => {
            if args.get("wait", 0u8)? != 0 {
                client.wait_result(id("id")?).map_err(|e| e.to_string())?
            } else {
                client.result(id("id")?).map_err(|e| e.to_string())?
            }
        }
        "cancel" => client
            .request(&nwq_serve::Request::Cancel { id: id("id")? })
            .map_err(|e| e.to_string())?,
        "stats" => client.stats().map_err(|e| e.to_string())?,
        "drain" => client.drain().map_err(|e| e.to_string())?,
        other => {
            return Err(format!(
                "unknown --op {other:?} (submit|status|result|cancel|stats|drain)"
            ))
        }
    };
    println!("{}", reply.render());
    Ok(())
}

fn cmd_info() {
    println!("NWQ-Sim-rs {}", env!("CARGO_PKG_VERSION"));
    println!("Rust reproduction of 'Enabling Scalable VQE Simulation on Leading HPC Systems' (SC-W 2023).");
    println!();
    println!("subcommands: vqe | adapt | qpe | fuse | serve | client | dist | info");
    println!("figures    : cargo run --release -p nwq-bench --bin figures -- all");
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        cmd_info();
        return ExitCode::from(2);
    };
    let args = match Args::parse(&argv[1..]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("usage error: {e}");
            return ExitCode::from(2);
        }
    };
    let metrics_path = args.flags.get("metrics").cloned();
    if metrics_path.is_some() {
        nwq_telemetry::set_enabled(true);
        nwq_telemetry::set_run_info("command", cmd.as_str());
        nwq_telemetry::set_run_info("argv", argv.join(" "));
        nwq_telemetry::set_run_info("version", env!("CARGO_PKG_VERSION"));
    }
    let result = match cmd.as_str() {
        "vqe" => cmd_vqe(&args),
        "adapt" => cmd_adapt(&args),
        "qpe" => cmd_qpe(&args),
        "fuse" => cmd_fuse(&args),
        "serve" => cmd_serve(&args),
        "client" => cmd_client(&args),
        "dist" => cmd_dist(&args),
        "info" => {
            cmd_info();
            Ok(())
        }
        other => {
            eprintln!("unknown subcommand {other:?}");
            return ExitCode::from(2);
        }
    };
    if let (Some(path), Ok(())) = (&metrics_path, &result) {
        // Derived gauge: fraction of post-ansatz lookups served from cache.
        let hits = nwq_telemetry::counter_value("cache.hits");
        let misses = nwq_telemetry::counter_value("cache.misses");
        if hits + misses > 0 {
            nwq_telemetry::gauge_set("cache.hit_rate", hits as f64 / (hits + misses) as f64);
        }
        match nwq_telemetry::snapshot().write_json(std::path::Path::new(path)) {
            Ok(()) => println!("metrics : wrote {path}"),
            Err(e) => {
                eprintln!("error: failed to write metrics to {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
