pub(crate) const _PLACEHOLDER: () = ();
