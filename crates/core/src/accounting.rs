//! Gate accounting for one VQE energy evaluation (paper Fig 3).
//!
//! Fig 3 compares, per parameter set θ:
//!
//! - **non-caching**: every Pauli term re-prepares the ansatz and then
//!   applies its basis changes — `Σ_t (G_ansatz + G_basis(t))`;
//! - **caching**: the ansatz runs once and is reused; the plotted curve is
//!   the *additional* gates after the cached state — `Σ_t G_basis(t)`
//!   (10⁴–10⁶ in the paper vs 10⁷–10¹¹ without caching).
//!
//! Both quantities are analytic in the ansatz gate count and observable;
//! the executor-based tests cross-check them against real executions.
//! Grouped variants quantify the extra savings from qubit-wise-commuting
//! measurement grouping.

use nwq_pauli::grouping::{group_qubit_wise, group_singletons, MeasurementGroup};
use nwq_pauli::{Pauli, PauliOp, PauliString};

/// Basis-change gate count for measuring one Pauli string: one H per X,
/// S†+H per Y (paper §4.1.2).
pub fn basis_gates_for_string(s: &PauliString) -> u128 {
    s.iter_ops()
        .map(|(_, p)| match p {
            Pauli::X => 1u128,
            Pauli::Y => 2,
            _ => 0,
        })
        .sum()
}

/// Gate cost of one full energy evaluation under each strategy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvaluationCost {
    /// Ansatz gates (`G_ansatz`).
    pub ansatz_gates: u128,
    /// Measurement groups / circuits executed.
    pub circuits: u128,
    /// Non-caching total: ansatz re-preparation per circuit plus basis
    /// changes.
    pub non_caching_gates: u128,
    /// Caching total: basis-change gates only (the Fig 3 caching curve).
    pub caching_gates: u128,
}

impl EvaluationCost {
    /// Ratio of non-caching to caching gates (the Fig 3 gap; guards the
    /// division when the observable is fully diagonal).
    pub fn savings_factor(&self) -> f64 {
        if self.caching_gates == 0 {
            f64::INFINITY
        } else {
            self.non_caching_gates as f64 / self.caching_gates as f64
        }
    }
}

fn cost_for_groups(ansatz_gates: u128, groups: &[MeasurementGroup]) -> EvaluationCost {
    let mut basis_total = 0u128;
    for g in groups {
        basis_total += g.basis_change_gates() as u128;
    }
    EvaluationCost {
        ansatz_gates,
        circuits: groups.len() as u128,
        non_caching_gates: groups.len() as u128 * ansatz_gates + basis_total,
        caching_gates: basis_total,
    }
}

/// Per-term accounting (one circuit per Pauli term) — matches the paper's
/// Fig 3 setup.
pub fn per_term_cost(ansatz_gates: u128, observable: &PauliOp) -> EvaluationCost {
    cost_for_groups(ansatz_gates, &group_singletons(observable))
}

/// Grouped accounting (one circuit per qubit-wise-commuting group) — the
/// further optimization grouping buys on top of caching.
pub fn grouped_cost(ansatz_gates: u128, observable: &PauliOp) -> EvaluationCost {
    cost_for_groups(ansatz_gates, &group_qubit_wise(observable))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_gate_counts() {
        assert_eq!(
            basis_gates_for_string(&PauliString::parse("ZZZ").unwrap()),
            0
        );
        assert_eq!(
            basis_gates_for_string(&PauliString::parse("XXI").unwrap()),
            2
        );
        assert_eq!(
            basis_gates_for_string(&PauliString::parse("YIY").unwrap()),
            4
        );
        assert_eq!(
            basis_gates_for_string(&PauliString::parse("XYZ").unwrap()),
            3
        );
    }

    #[test]
    fn per_term_cost_formula() {
        // H = ZZ + XX: two terms, basis gates 0 and 2.
        let h = PauliOp::parse("1.0 ZZ + 1.0 XX").unwrap();
        let c = per_term_cost(100, &h);
        assert_eq!(c.circuits, 2);
        assert_eq!(c.non_caching_gates, 2 * 100 + 2);
        assert_eq!(c.caching_gates, 2);
        assert!((c.savings_factor() - 101.0).abs() < 1e-12);
    }

    #[test]
    fn diagonal_observable_needs_zero_caching_gates() {
        let h = PauliOp::parse("1.0 ZZ + 0.5 ZI").unwrap();
        let c = per_term_cost(50, &h);
        assert_eq!(c.caching_gates, 0);
        assert!(c.savings_factor().is_infinite());
    }

    #[test]
    fn grouping_reduces_circuits_and_gates() {
        let h = PauliOp::parse("1.0 ZZ + 0.5 ZI + 0.25 IZ + 1.0 XX + 0.5 XI").unwrap();
        let per_term = per_term_cost(200, &h);
        let grouped = grouped_cost(200, &h);
        assert!(grouped.circuits < per_term.circuits);
        assert!(grouped.non_caching_gates < per_term.non_caching_gates);
        assert!(grouped.caching_gates <= per_term.caching_gates);
    }

    #[test]
    fn accounting_matches_real_execution() {
        // Cross-check the analytic counts against the executing paths.
        use nwq_pauli::grouping::group_singletons;
        use nwq_statevec::expval::{energy_cached, energy_non_caching};
        let mut ansatz = nwq_circuit::Circuit::new(2);
        ansatz.ry(0, 0.4).cx(0, 1).rz(1, -0.2);
        let h = PauliOp::parse("1.0 ZZ + 1.0 XX + 0.5 YI").unwrap();
        let groups = group_singletons(&h);
        let nc = energy_non_caching(&ansatz, &[], &groups, 0.0).unwrap();
        let ca = energy_cached(&ansatz, &[], &groups, 0.0).unwrap();
        let cost = per_term_cost(ansatz.len() as u128, &h);
        assert_eq!(nc.gates_applied as u128, cost.non_caching_gates);
        // The executing cached path also pays the single ansatz run.
        assert_eq!(
            ca.gates_applied as u128,
            cost.ansatz_gates + cost.caching_gates
        );
    }

    #[test]
    fn savings_grow_with_term_count() {
        let small = PauliOp::parse("1.0 XX").unwrap();
        let big = PauliOp::parse("1.0 XX + 1.0 YY + 1.0 XY + 1.0 YX").unwrap();
        let cs = per_term_cost(1000, &small);
        let cb = per_term_cost(1000, &big);
        assert!(cb.non_caching_gates > cs.non_caching_gates);
        // Caching cost grows only with basis gates, not with ansatz size.
        let cb_bigger_ansatz = per_term_cost(100_000, &big);
        assert_eq!(cb.caching_gates, cb_bigger_ansatz.caching_gates);
    }
}
