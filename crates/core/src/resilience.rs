//! Fault-tolerant driving of the variational loops: checkpoint/restart,
//! bounded retries, and a fault-injecting backend decorator.
//!
//! Long VQE campaigns on shared HPC systems die for reasons that have
//! nothing to do with chemistry — job-time limits, preempted nodes, lost
//! ranks, corrupted exchanges. This module makes such runs resumable and
//! the recovery paths testable:
//!
//! - [`CheckpointConfig`] + [`ResumeState`] — versioned, dependency-free
//!   JSON snapshots of a run (optimizer configuration, the ordered log of
//!   successful energies, best parameters), written atomically
//!   (temp + rename) every N improvements and on the way down after a
//!   non-recoverable failure;
//! - [`RetryPolicy`] — bounded re-attempts of transient evaluation
//!   failures ([`Error::is_transient`]), with a cache invalidation between
//!   attempts so a poisoned post-ansatz state cannot survive a retry;
//! - [`FaultyBackend`] — wraps any [`Backend`] and injects deterministic,
//!   seeded evaluation failures and NaN energies from
//!   [`nwq_dist::FaultSpec`].
//!
//! ## Restart semantics: evaluation-log replay
//!
//! A checkpoint stores the ordered energies of every *successful*
//! evaluation. On resume the driver re-runs the optimizer from the same
//! starting point with the same restored configuration and answers the
//! first `eval_log.len()` objective calls from the log without touching
//! the backend. Because every optimizer in `nwq-opt` is deterministic
//! given its configuration (SPSA re-seeds its RNG at the start of each
//! minimization), the replayed trajectory is *bitwise identical* to the
//! original — the resumed run continues exactly where the interrupted one
//! stopped, and its final energy and evaluation count match an
//! uninterrupted run exactly.

use crate::backend::{Backend, BoxedBackend, GradientBackend};
use crate::vqe::{GradSource, VqeProblem, VqeResult};
use nwq_circuit::Circuit;
use nwq_common::{Error, Result};
use nwq_dist::FaultInjector;
use nwq_opt::{GradObjective, GradOptimizer, Optimizer};
use nwq_pauli::PauliOp;
use nwq_telemetry::JsonValue;
use std::path::{Path, PathBuf};

pub use nwq_dist::{FaultSpec, FaultStats};

/// Checkpoint schema version; bumped on incompatible layout changes.
pub const CHECKPOINT_VERSION: u64 = 1;

/// Bounded-retry policy for transient evaluation failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Re-attempts allowed per evaluation after the first try. Transient
    /// failures beyond this budget abort the run (writing a checkpoint
    /// when one is configured).
    pub max_retries: usize,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 5 }
    }
}

impl RetryPolicy {
    /// No retries: every failure is immediately fatal.
    pub fn none() -> Self {
        RetryPolicy { max_retries: 0 }
    }
}

/// Where and how often to write checkpoints.
#[derive(Clone, Debug)]
pub struct CheckpointConfig {
    /// Snapshot file path (written atomically via a `.tmp` sibling).
    pub path: PathBuf,
    /// Write a snapshot every this many best-energy improvements. A
    /// snapshot is also written after a failure and at successful
    /// completion regardless of this cadence.
    pub every_improvements: usize,
}

impl CheckpointConfig {
    /// Checkpoints at `path` with the default cadence (every 10
    /// improvements).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CheckpointConfig {
            path: path.into(),
            every_improvements: 10,
        }
    }
}

/// Resilience knobs accepted by [`run_vqe_with`] and
/// [`crate::adapt::run_adapt_vqe_with`].
#[derive(Clone, Debug, Default)]
pub struct ResilienceOptions {
    /// Periodic checkpointing (off by default).
    pub checkpoint: Option<CheckpointConfig>,
    /// Resume from a previously written checkpoint.
    pub resume: Option<ResumeState>,
    /// Transient-failure retry budget.
    pub retry: RetryPolicy,
    /// Testing hook: inject a fatal failure after this many *fresh*
    /// (non-replayed) successful evaluations — the `--kill-after-evals`
    /// switch the kill-and-resume smoke test uses.
    pub abort_after_evals: Option<usize>,
}

/// A loaded checkpoint, ready to hand to a `*_with` driver.
#[derive(Clone, Debug)]
pub struct ResumeState {
    doc: JsonValue,
}

impl ResumeState {
    /// Loads and validates a checkpoint file.
    pub fn load(path: &Path) -> Result<Self> {
        let context = |e: &dyn std::fmt::Display| {
            Error::Invalid(format!("checkpoint {}: {e}", path.display()))
        };
        let text = std::fs::read_to_string(path).map_err(|e| context(&e))?;
        let doc = JsonValue::parse(&text).map_err(|e| context(&e))?;
        match doc.get("version").and_then(JsonValue::as_u64) {
            Some(CHECKPOINT_VERSION) => Ok(ResumeState { doc }),
            v => Err(context(&format!(
                "unsupported checkpoint version {v:?} (expected {CHECKPOINT_VERSION})"
            ))),
        }
    }

    /// The run kind recorded in the checkpoint (`"vqe"` or `"adapt"`).
    pub fn kind(&self) -> &str {
        self.doc
            .get("kind")
            .and_then(JsonValue::as_str)
            .unwrap_or("")
    }

    /// Best energy recorded at snapshot time, if any evaluation succeeded.
    pub fn best_energy(&self) -> Option<f64> {
        self.doc.get("best")?.get("energy")?.as_f64()
    }

    /// Successful evaluations recorded at snapshot time.
    pub fn evaluations(&self) -> usize {
        self.doc
            .get("eval_log")
            .and_then(JsonValue::as_array)
            .map_or(0, <[JsonValue]>::len)
    }

    /// The per-evaluation gradient log, parallel to `eval_log`: `None`
    /// for plain energy evaluations, `Some(∂E/∂θ)` for fused adjoint
    /// evaluations. Checkpoints written by gradient-free runs have no
    /// `grad_log` field; that reads as all-`None`.
    fn grad_log(&self) -> Result<Vec<Option<Vec<f64>>>> {
        let Some(items) = self.doc.get("grad_log").and_then(JsonValue::as_array) else {
            return Ok(vec![None; self.evaluations()]);
        };
        items
            .iter()
            .map(|v| {
                if matches!(v, JsonValue::Null) {
                    return Ok(None);
                }
                let entries = v.as_array().ok_or_else(|| {
                    Error::Invalid("non-array entry in checkpoint grad_log".into())
                })?;
                entries
                    .iter()
                    .map(|g| {
                        g.as_f64().ok_or_else(|| {
                            Error::Invalid("non-numeric entry in checkpoint grad_log".into())
                        })
                    })
                    .collect::<Result<Vec<f64>>>()
                    .map(Some)
            })
            .collect()
    }

    /// The ordered successful-energy log to replay.
    fn eval_log(&self) -> Result<Vec<f64>> {
        let items = self
            .doc
            .get("eval_log")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| Error::Invalid("checkpoint is missing eval_log".into()))?;
        items
            .iter()
            .map(|v| {
                v.as_f64().ok_or_else(|| {
                    Error::Invalid("non-numeric entry in checkpoint eval_log".into())
                })
            })
            .collect()
    }

    /// Verifies the checkpoint matches this run (kind, problem
    /// fingerprint, optimizer), restores the optimizer configuration, and
    /// returns the evaluation log to replay.
    fn prepare(
        &self,
        kind: &str,
        fingerprint: &JsonValue,
        optimizer: &mut dyn Optimizer,
    ) -> Result<Vec<f64>> {
        if self.kind() != kind {
            return Err(Error::Invalid(format!(
                "checkpoint kind {:?} cannot resume a {kind} run",
                self.kind()
            )));
        }
        let stored = self.doc.get("fingerprint").ok_or_else(|| {
            Error::Invalid("checkpoint is missing its problem fingerprint".into())
        })?;
        if stored.render() != fingerprint.render() {
            return Err(Error::Invalid(
                "checkpoint fingerprint does not match this problem \
                 (different Hamiltonian, ansatz, start point, or budget)"
                    .into(),
            ));
        }
        let opt = self
            .doc
            .get("optimizer")
            .ok_or_else(|| Error::Invalid("checkpoint is missing optimizer state".into()))?;
        let name = opt.get("name").and_then(JsonValue::as_str).unwrap_or("");
        if name != optimizer.name() {
            return Err(Error::Invalid(format!(
                "checkpoint was written by optimizer {name:?}, cannot resume with {:?}",
                optimizer.name()
            )));
        }
        optimizer.restore_state(opt.get("state").unwrap_or(&JsonValue::Null))?;
        self.eval_log()
    }
}

/// Writes `doc` to `path` atomically: render to `<path>.tmp`, then rename
/// over the target, so a crash mid-write can never leave a truncated
/// checkpoint behind.
fn write_atomic(path: &Path, doc: &JsonValue) -> Result<()> {
    let context =
        |e: &std::io::Error| Error::Invalid(format!("writing checkpoint {}: {e}", path.display()));
    let tmp = PathBuf::from(format!("{}.tmp", path.display()));
    std::fs::write(&tmp, doc.render()).map_err(|e| context(&e))?;
    std::fs::rename(&tmp, path).map_err(|e| context(&e))?;
    nwq_telemetry::counter_add("resilience.checkpoints_written", 1);
    Ok(())
}

/// The shared evaluation engine behind [`run_vqe_with`] and
/// [`crate::adapt::run_adapt_vqe_with`]: replays the resumed prefix,
/// retries transient failures with cache invalidation, enforces the kill
/// switch, tracks the best point, and writes checkpoints.
/// The execution engine a [`ResilientEvaluator`] drives: a plain energy
/// backend for derivative-free loops, a gradient-capable one when the
/// optimizer consumes fused adjoint evaluations.
pub(crate) enum Engine<'a> {
    Plain(&'a mut dyn Backend),
    Grad(&'a mut dyn GradientBackend),
}

impl Engine<'_> {
    fn plain(&mut self) -> &mut dyn Backend {
        match self {
            Engine::Plain(b) => *b,
            Engine::Grad(g) => g.as_backend(),
        }
    }
}

pub(crate) struct ResilientEvaluator<'a> {
    engine: Engine<'a>,
    retry: RetryPolicy,
    checkpoint: Option<CheckpointConfig>,
    abort_after_evals: Option<usize>,
    /// Header fields every snapshot starts with (version, kind,
    /// fingerprint, optimizer configuration).
    header: Vec<(String, JsonValue)>,
    /// Driver-provided informational fields (e.g. ADAPT pool selections).
    extra: Vec<(String, JsonValue)>,
    /// All successful energies, in evaluation order: the resumed prefix
    /// followed by fresh results.
    eval_log: Vec<f64>,
    /// Parallel to `eval_log`: the gradient of each fused adjoint
    /// evaluation, `None` for plain energy evaluations. Only serialized
    /// into snapshots when at least one gradient was recorded.
    grad_log: Vec<Option<Vec<f64>>>,
    /// Objective calls served so far; calls below `replay_until` are
    /// answered from `eval_log` without touching the backend.
    cursor: usize,
    replay_until: usize,
    fresh_evals: usize,
    best_energy: f64,
    best_params: Vec<f64>,
    improvements_since_ckpt: usize,
}

impl<'a> ResilientEvaluator<'a> {
    pub(crate) fn new(
        backend: &'a mut dyn Backend,
        opts: &ResilienceOptions,
        header: Vec<(String, JsonValue)>,
        resumed_log: Vec<f64>,
    ) -> Self {
        let resumed_grads = vec![None; resumed_log.len()];
        Self::with_engine(
            Engine::Plain(backend),
            opts,
            header,
            resumed_log,
            resumed_grads,
        )
    }

    /// A gradient-capable evaluator: like [`new`](Self::new) but driving a
    /// [`GradientBackend`] and replaying `resumed_grads` (parallel to
    /// `resumed_log`) for fused evaluations.
    pub(crate) fn new_grad(
        backend: &'a mut dyn GradientBackend,
        opts: &ResilienceOptions,
        header: Vec<(String, JsonValue)>,
        resumed_log: Vec<f64>,
        resumed_grads: Vec<Option<Vec<f64>>>,
    ) -> Self {
        Self::with_engine(
            Engine::Grad(backend),
            opts,
            header,
            resumed_log,
            resumed_grads,
        )
    }

    fn with_engine(
        engine: Engine<'a>,
        opts: &ResilienceOptions,
        header: Vec<(String, JsonValue)>,
        resumed_log: Vec<f64>,
        resumed_grads: Vec<Option<Vec<f64>>>,
    ) -> Self {
        debug_assert_eq!(resumed_log.len(), resumed_grads.len());
        let replay_until = resumed_log.len();
        ResilientEvaluator {
            engine,
            retry: opts.retry,
            checkpoint: opts.checkpoint.clone(),
            abort_after_evals: opts.abort_after_evals,
            header,
            extra: Vec::new(),
            eval_log: resumed_log,
            grad_log: resumed_grads,
            cursor: 0,
            replay_until,
            fresh_evals: 0,
            best_energy: f64::INFINITY,
            best_params: Vec::new(),
            improvements_since_ckpt: 0,
        }
    }

    /// Total successful evaluations so far (replayed + fresh).
    pub(crate) fn total_evals(&self) -> usize {
        self.eval_log.len()
    }

    /// Attaches/overwrites an informational snapshot field.
    pub(crate) fn set_extra(&mut self, key: &str, value: JsonValue) {
        if let Some(slot) = self.extra.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.extra.push((key.to_string(), value));
        }
    }

    /// One resilient objective evaluation at `theta`.
    pub(crate) fn eval(&mut self, ansatz: &Circuit, theta: &[f64], h: &PauliOp) -> Result<f64> {
        if self.cursor < self.replay_until {
            let e = self.eval_log[self.cursor];
            self.cursor += 1;
            nwq_telemetry::counter_add("resilience.evals_replayed", 1);
            self.note_success(e, theta);
            return Ok(e);
        }
        if let Some(limit) = self.abort_after_evals {
            if self.fresh_evals >= limit {
                return Err(Error::Invalid(format!(
                    "kill switch tripped after {limit} fresh evaluations"
                )));
            }
        }
        let mut attempt = 0;
        loop {
            let outcome = self.engine.plain().energy(ansatz, theta, h).and_then(|e| {
                if e.is_finite() {
                    Ok(e)
                } else {
                    nwq_telemetry::counter_add("resilience.nonfinite_detected", 1);
                    Err(Error::Numerical(
                        "non-finite energy returned by backend".into(),
                    ))
                }
            });
            match outcome {
                Ok(e) => {
                    self.cursor += 1;
                    self.fresh_evals += 1;
                    self.eval_log.push(e);
                    self.grad_log.push(None);
                    let improved = self.note_success(e, theta);
                    if improved {
                        self.maybe_checkpoint()?;
                    }
                    return Ok(e);
                }
                Err(e) if e.is_transient() && attempt < self.retry.max_retries => {
                    attempt += 1;
                    nwq_telemetry::counter_add("resilience.retries", 1);
                    // A transient fault may have poisoned cached derived
                    // state; drop it so the retry recomputes from scratch.
                    self.engine.plain().invalidate_cache();
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One resilient *fused* energy-and-gradient evaluation at `theta`
    /// (gradient engines only). Resumed prefixes are answered from the
    /// checkpoint's parallel gradient log without touching the backend —
    /// a replayed position recorded without a gradient means the resumed
    /// trajectory diverged and is an error.
    pub(crate) fn eval_grad(
        &mut self,
        ansatz: &Circuit,
        theta: &[f64],
        h: &PauliOp,
    ) -> Result<(f64, Vec<f64>)> {
        if self.cursor < self.replay_until {
            let e = self.eval_log[self.cursor];
            let g = self.grad_log[self.cursor].clone().ok_or_else(|| {
                Error::Invalid(
                    "checkpoint replay diverged: gradient requested at an \
                     evaluation recorded without one"
                        .into(),
                )
            })?;
            self.cursor += 1;
            nwq_telemetry::counter_add("resilience.evals_replayed", 1);
            self.note_success(e, theta);
            return Ok((e, g));
        }
        if let Some(limit) = self.abort_after_evals {
            if self.fresh_evals >= limit {
                return Err(Error::Invalid(format!(
                    "kill switch tripped after {limit} fresh evaluations"
                )));
            }
        }
        let mut attempt = 0;
        loop {
            let outcome = match &mut self.engine {
                Engine::Grad(b) => b.energy_and_gradient(ansatz, theta, h),
                Engine::Plain(_) => Err(Error::Invalid(
                    "fused gradient evaluation requires a gradient-capable backend".into(),
                )),
            }
            .and_then(|(e, g)| {
                if e.is_finite() && g.iter().all(|v| v.is_finite()) {
                    Ok((e, g))
                } else {
                    nwq_telemetry::counter_add("resilience.nonfinite_detected", 1);
                    Err(Error::Numerical(
                        "non-finite energy or gradient returned by backend".into(),
                    ))
                }
            });
            match outcome {
                Ok((e, g)) => {
                    self.cursor += 1;
                    self.fresh_evals += 1;
                    self.eval_log.push(e);
                    self.grad_log.push(Some(g.clone()));
                    let improved = self.note_success(e, theta);
                    if improved {
                        self.maybe_checkpoint()?;
                    }
                    return Ok((e, g));
                }
                Err(e) if e.is_transient() && attempt < self.retry.max_retries => {
                    attempt += 1;
                    nwq_telemetry::counter_add("resilience.retries", 1);
                    self.engine.plain().invalidate_cache();
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One resilient *batched* objective evaluation: all of `thetas` in
    /// one backend call (walker-batched on backends that support it),
    /// bitwise identical per entry to calling [`eval`](Self::eval) in
    /// order. Falls back to element-wise evaluation whenever any element
    /// would be served from the replay log or would trip the kill switch
    /// mid-batch — those paths have per-evaluation semantics that must be
    /// preserved exactly.
    pub(crate) fn eval_batch(
        &mut self,
        ansatz: &Circuit,
        thetas: &[Vec<f64>],
        h: &PauliOp,
    ) -> Result<Vec<f64>> {
        let replaying = self.cursor < self.replay_until;
        let kill_mid_batch = self
            .abort_after_evals
            .is_some_and(|limit| self.fresh_evals + thetas.len() > limit);
        if thetas.len() < 2 || replaying || kill_mid_batch {
            return thetas.iter().map(|t| self.eval(ansatz, t, h)).collect();
        }
        let mut attempt = 0;
        loop {
            let outcome = self
                .engine
                .plain()
                .energy_batch(ansatz, thetas, h)
                .and_then(|es| {
                    if es.iter().all(|e| e.is_finite()) {
                        Ok(es)
                    } else {
                        nwq_telemetry::counter_add("resilience.nonfinite_detected", 1);
                        Err(Error::Numerical(
                            "non-finite energy returned by backend".into(),
                        ))
                    }
                });
            match outcome {
                Ok(es) => {
                    let mut improved = false;
                    for (e, theta) in es.iter().zip(thetas) {
                        self.cursor += 1;
                        self.fresh_evals += 1;
                        self.eval_log.push(*e);
                        self.grad_log.push(None);
                        improved |= self.note_success(*e, theta);
                    }
                    if improved {
                        self.maybe_checkpoint()?;
                    }
                    return Ok(es);
                }
                Err(e) if e.is_transient() && attempt < self.retry.max_retries => {
                    attempt += 1;
                    nwq_telemetry::counter_add("resilience.retries", 1);
                    self.engine.plain().invalidate_cache();
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn note_success(&mut self, e: f64, theta: &[f64]) -> bool {
        if e < self.best_energy {
            self.best_energy = e;
            self.best_params = theta.to_vec();
            self.improvements_since_ckpt += 1;
            true
        } else {
            false
        }
    }

    fn snapshot(&self) -> JsonValue {
        let mut fields = self.header.clone();
        fields.extend(self.extra.iter().cloned());
        fields.push((
            "eval_log".into(),
            JsonValue::Array(self.eval_log.iter().map(|&e| JsonValue::Float(e)).collect()),
        ));
        if self.grad_log.iter().any(Option::is_some) {
            fields.push((
                "grad_log".into(),
                JsonValue::Array(
                    self.grad_log
                        .iter()
                        .map(|g| match g {
                            None => JsonValue::Null,
                            Some(v) => {
                                JsonValue::Array(v.iter().map(|&x| JsonValue::Float(x)).collect())
                            }
                        })
                        .collect(),
                ),
            ));
        }
        let best = if self.best_params.is_empty() {
            JsonValue::Null
        } else {
            JsonValue::Object(vec![
                ("energy".into(), JsonValue::Float(self.best_energy)),
                (
                    "params".into(),
                    JsonValue::Array(
                        self.best_params
                            .iter()
                            .map(|&p| JsonValue::Float(p))
                            .collect(),
                    ),
                ),
                (
                    "evaluations".into(),
                    JsonValue::Int(self.eval_log.len() as u64),
                ),
            ])
        };
        fields.push(("best".into(), best));
        JsonValue::Object(fields)
    }

    fn maybe_checkpoint(&mut self) -> Result<()> {
        let due = match &self.checkpoint {
            Some(cfg) => self.improvements_since_ckpt >= cfg.every_improvements.max(1),
            None => false,
        };
        if due {
            self.write_checkpoint()?;
        }
        Ok(())
    }

    fn write_checkpoint(&mut self) -> Result<()> {
        if let Some(cfg) = &self.checkpoint {
            write_atomic(&cfg.path, &self.snapshot())?;
            self.improvements_since_ckpt = 0;
        }
        Ok(())
    }

    /// Final snapshot after a successful run (propagates write errors).
    pub(crate) fn checkpoint_final(&mut self) -> Result<()> {
        self.write_checkpoint()
    }

    /// Best-effort snapshot on the way down; returns the path on success
    /// for embedding in [`Error::Interrupted`].
    pub(crate) fn checkpoint_on_failure(&mut self) -> Option<String> {
        let path = self.checkpoint.as_ref()?.path.display().to_string();
        self.write_checkpoint().ok()?;
        Some(path)
    }

    /// Wraps `cause` in [`Error::Interrupted`] after attempting a final
    /// checkpoint.
    pub(crate) fn interrupt(&mut self, cause: Error) -> Error {
        nwq_telemetry::counter_add("resilience.interrupted", 1);
        Error::Interrupted {
            checkpoint: self.checkpoint_on_failure(),
            cause: Box::new(cause),
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(hash, |h, &b| (h ^ u64::from(b)).wrapping_mul(FNV_PRIME))
}

/// 64-bit FNV-1a content fingerprint of a circuit: width, parameter count,
/// and the structural form of every gate (kind, qubits, parameter
/// expressions). Two circuits fingerprint equal iff they would compile to
/// the same `ExecPlan` for the same bindings — the identity the serving
/// layer batches and caches by.
pub fn circuit_content_fingerprint(circuit: &Circuit) -> u64 {
    let mut h = FNV_OFFSET;
    h = fnv1a(h, &(circuit.n_qubits() as u64).to_le_bytes());
    h = fnv1a(h, &(circuit.n_params() as u64).to_le_bytes());
    for gate in circuit.gates() {
        // The structural Debug form covers kind, qubits, and symbolic
        // parameter expressions deterministically.
        h = fnv1a(h, format!("{gate:?}").as_bytes());
        h = fnv1a(h, b";");
    }
    h
}

/// Content fingerprint of a `(Hamiltonian, ansatz)` pair: the circuit
/// fingerprint folded with every Pauli term's exact coefficient bits and
/// X/Z masks. Equal fingerprints mean an energy evaluation is the same
/// computation — safe to answer from a shared cache or to batch into one
/// expectation sweep across tenants.
pub fn problem_content_fingerprint(hamiltonian: &PauliOp, ansatz: &Circuit) -> u64 {
    let mut h = circuit_content_fingerprint(ansatz);
    h = fnv1a(h, &(hamiltonian.n_qubits() as u64).to_le_bytes());
    for (coeff, string) in hamiltonian.terms() {
        h = fnv1a(h, &coeff.re.to_bits().to_le_bytes());
        h = fnv1a(h, &coeff.im.to_bits().to_le_bytes());
        h = fnv1a(h, &string.x_mask().to_le_bytes());
        h = fnv1a(h, &string.z_mask().to_le_bytes());
    }
    h
}

/// Builds the VQE problem fingerprint stored in (and verified against)
/// checkpoints: resuming is only sound when the objective and the start
/// point are exactly those of the interrupted run.
fn vqe_fingerprint(problem: &VqeProblem, x0: &[f64], max_evals: usize) -> JsonValue {
    JsonValue::Object(vec![
        (
            "content_fp".into(),
            JsonValue::Int(problem_content_fingerprint(
                &problem.hamiltonian,
                &problem.ansatz,
            )),
        ),
        (
            "n_qubits".into(),
            JsonValue::Int(problem.ansatz.n_qubits() as u64),
        ),
        (
            "n_params".into(),
            JsonValue::Int(problem.ansatz.n_params() as u64),
        ),
        (
            "ansatz_gates".into(),
            JsonValue::Int(problem.ansatz.len() as u64),
        ),
        (
            "h_terms".into(),
            JsonValue::Int(problem.hamiltonian.terms().len() as u64),
        ),
        (
            "x0".into(),
            JsonValue::Array(x0.iter().map(|&x| JsonValue::Float(x)).collect()),
        ),
        ("max_evals".into(), JsonValue::Int(max_evals as u64)),
    ])
}

/// Builds the snapshot header shared by both run kinds. Call *after*
/// restoring the optimizer so the stored state reflects what actually ran.
pub(crate) fn snapshot_header(
    kind: &str,
    fingerprint: JsonValue,
    optimizer: &dyn Optimizer,
) -> Vec<(String, JsonValue)> {
    vec![
        ("version".into(), JsonValue::Int(CHECKPOINT_VERSION)),
        ("kind".into(), JsonValue::Str(kind.into())),
        ("fingerprint".into(), fingerprint),
        (
            "optimizer".into(),
            JsonValue::Object(vec![
                ("name".into(), JsonValue::Str(optimizer.name().into())),
                ("state".into(), optimizer.state_json()),
            ]),
        ),
    ]
}

/// Verifies and applies `opts.resume` (when present), returning the
/// evaluation log to replay.
pub(crate) fn prepare_resume(
    opts: &ResilienceOptions,
    kind: &str,
    fingerprint: &JsonValue,
    optimizer: &mut dyn Optimizer,
) -> Result<Vec<f64>> {
    match &opts.resume {
        Some(state) => state.prepare(kind, fingerprint, optimizer),
        None => Ok(Vec::new()),
    }
}

/// [`crate::vqe::run_vqe`] with resilience: checkpoint/restart, bounded
/// retries of transient failures, and prompt abort (wrapped in
/// [`Error::Interrupted`]) once the retry budget is exhausted.
pub fn run_vqe_with(
    problem: &VqeProblem,
    backend: &mut dyn Backend,
    optimizer: &mut dyn Optimizer,
    x0: &[f64],
    max_evals: usize,
    opts: &ResilienceOptions,
) -> Result<VqeResult> {
    if x0.len() < problem.ansatz.n_params() {
        return Err(Error::ParameterMismatch {
            expected: problem.ansatz.n_params(),
            got: x0.len(),
        });
    }
    if !problem.hamiltonian.is_hermitian(1e-9) {
        return Err(Error::Invalid("VQE observable must be Hermitian".into()));
    }
    let _span = nwq_telemetry::span!("vqe.run");
    let fingerprint = vqe_fingerprint(problem, x0, max_evals);
    let resumed_log = prepare_resume(opts, "vqe", &fingerprint, optimizer)?;
    let header = snapshot_header("vqe", fingerprint, optimizer);
    let mut ev = ResilientEvaluator::new(backend, opts, header, resumed_log);

    let mut history: Vec<f64> = Vec::new();
    let telemetry = nwq_telemetry::enabled();
    let ansatz_gates = problem.ansatz.len() as u64;
    let mut last_mark = std::time::Instant::now();
    let result = {
        // The driver feeds the optimizer through its *batched* entry
        // point: optimizers that group independent evaluations (SPSA's
        // ±perturbation pair) send them as one multi-θ batch, which a
        // walker-batched backend evolves in a single blocked sweep. The
        // trajectory is identical to the scalar entry either way.
        let mut objective = |thetas: &[Vec<f64>]| -> Result<Vec<f64>> {
            let es = ev.eval_batch(&problem.ansatz, thetas, &problem.hamiltonian)?;
            for &e in &es {
                let prev_best = history.last().copied().unwrap_or(f64::INFINITY);
                let best = prev_best.min(e);
                history.push(best);
                // One record per *improvement*, not per evaluation — keeps
                // the artifact bounded for long optimizer runs.
                if telemetry && best < prev_best {
                    nwq_telemetry::record_iteration(nwq_telemetry::IterationRecord {
                        iteration: history.len() - 1,
                        energy: best,
                        grad_norm: None,
                        evaluations: history.len() as u64,
                        gates: ansatz_gates,
                        wall_ms: last_mark.elapsed().as_secs_f64() * 1e3,
                        label: None,
                    });
                    last_mark = std::time::Instant::now();
                }
            }
            Ok(es)
        };
        optimizer.try_minimize_batched(&mut objective, x0, max_evals)
    };
    match result {
        Ok(r) => {
            ev.checkpoint_final()?;
            Ok(VqeResult {
                energy: r.value,
                params: r.params,
                evaluations: r.evals,
                converged: r.converged,
                history,
            })
        }
        Err(cause) => Err(ev.interrupt(cause)),
    }
}

/// The VQE problem fingerprint for gradient-driven runs: the plain VQE
/// fingerprint plus the gradient source, since replaying a trajectory is
/// only sound when the gradients are computed the same way.
fn vqe_grad_fingerprint(
    problem: &VqeProblem,
    x0: &[f64],
    max_evals: usize,
    source: &GradSource,
) -> JsonValue {
    match vqe_fingerprint(problem, x0, max_evals) {
        JsonValue::Object(mut fields) => {
            fields.push(("grad_source".into(), source.fingerprint_json()));
            JsonValue::Object(fields)
        }
        other => other,
    }
}

/// The gradient-consuming VQE objective fed to a
/// [`GradOptimizer`]: fused adjoint evaluations go through
/// [`ResilientEvaluator::eval_grad`] (and the checkpoint gradient log);
/// shift-rule and finite-difference gradients ride the *batched* energy
/// path — one walker-batched sweep of all `2·n` probes — and replay via
/// the ordinary evaluation log.
struct VqeGradObjective<'a, 'b> {
    ev: &'b mut ResilientEvaluator<'a>,
    problem: &'b VqeProblem,
    source: GradSource,
    history: &'b mut Vec<f64>,
    telemetry: bool,
    ansatz_gates: u64,
    last_mark: std::time::Instant,
}

impl VqeGradObjective<'_, '_> {
    /// Best-so-far bookkeeping per *candidate point* (gradient probes are
    /// not candidates and are excluded).
    fn note(&mut self, e: f64, grad_norm: Option<f64>) {
        let prev_best = self.history.last().copied().unwrap_or(f64::INFINITY);
        let best = prev_best.min(e);
        self.history.push(best);
        if self.telemetry && best < prev_best {
            nwq_telemetry::record_iteration(nwq_telemetry::IterationRecord {
                iteration: self.history.len() - 1,
                energy: best,
                grad_norm,
                evaluations: self.ev.total_evals() as u64,
                gates: self.ansatz_gates,
                wall_ms: self.last_mark.elapsed().as_secs_f64() * 1e3,
                label: None,
            });
            self.last_mark = std::time::Instant::now();
        }
    }

    /// Evaluates the `2·n` two-term probes `x ± s·e_i` as one resilient
    /// batch, in the interleaved (+, −) order per parameter.
    fn shifted_energies(&mut self, x: &[f64], s: f64) -> Result<Vec<f64>> {
        let mut probes = Vec::with_capacity(2 * x.len());
        for i in 0..x.len() {
            let mut plus = x.to_vec();
            plus[i] += s;
            probes.push(plus);
            let mut minus = x.to_vec();
            minus[i] -= s;
            probes.push(minus);
        }
        self.ev
            .eval_batch(&self.problem.ansatz, &probes, &self.problem.hamiltonian)
    }
}

impl GradObjective for VqeGradObjective<'_, '_> {
    fn value(&mut self, x: &[f64]) -> Result<f64> {
        let e = self
            .ev
            .eval(&self.problem.ansatz, x, &self.problem.hamiltonian)?;
        self.note(e, None);
        Ok(e)
    }

    fn value_and_grad(&mut self, x: &[f64]) -> Result<(f64, Vec<f64>)> {
        let (e, g) = match self.source {
            GradSource::Adjoint => {
                self.ev
                    .eval_grad(&self.problem.ansatz, x, &self.problem.hamiltonian)?
            }
            GradSource::ParameterShift { shift, denom } => {
                let e = self
                    .ev
                    .eval(&self.problem.ansatz, x, &self.problem.hamiltonian)?;
                let es = self.shifted_energies(x, shift)?;
                let g = (0..x.len())
                    .map(|i| (es[2 * i] - es[2 * i + 1]) / denom)
                    .collect();
                (e, g)
            }
            GradSource::FiniteDifference(eps) => {
                let e = self
                    .ev
                    .eval(&self.problem.ansatz, x, &self.problem.hamiltonian)?;
                let es = self.shifted_energies(x, eps)?;
                let g = (0..x.len())
                    .map(|i| (es[2 * i] - es[2 * i + 1]) / (2.0 * eps))
                    .collect();
                (e, g)
            }
        };
        let gnorm = g.iter().fold(0.0f64, |a: f64, v: &f64| a.max(v.abs()));
        self.note(e, Some(gnorm));
        Ok((e, g))
    }

    fn grad_cost(&self, n_params: usize) -> usize {
        self.source.cost(n_params)
    }
}

/// [`crate::vqe::run_vqe_grad`] with resilience: checkpoint/restart
/// (fused adjoint evaluations snapshot their gradients alongside the
/// energies), bounded retries of transient failures, and prompt abort
/// wrapped in [`Error::Interrupted`].
///
/// `max_evals` is a budget in *energy-evaluation equivalents*: a fused
/// gradient costs [`GradSource::cost`] (≈ 4 for adjoint, `2·n + 1` for
/// shift rules), which keeps gradient-driven and derivative-free runs
/// directly comparable.
pub fn run_vqe_grad_with(
    problem: &VqeProblem,
    backend: &mut dyn GradientBackend,
    optimizer: &mut dyn GradOptimizer,
    source: GradSource,
    x0: &[f64],
    max_evals: usize,
    opts: &ResilienceOptions,
) -> Result<VqeResult> {
    if x0.len() < problem.ansatz.n_params() {
        return Err(Error::ParameterMismatch {
            expected: problem.ansatz.n_params(),
            got: x0.len(),
        });
    }
    if !problem.hamiltonian.is_hermitian(1e-9) {
        return Err(Error::Invalid("VQE observable must be Hermitian".into()));
    }
    let _span = nwq_telemetry::span!("vqe.grad.run");
    let fingerprint = vqe_grad_fingerprint(problem, x0, max_evals, &source);
    let resumed_log = prepare_resume(opts, "vqe-grad", &fingerprint, optimizer)?;
    let resumed_grads = match &opts.resume {
        Some(state) => {
            let grads = state.grad_log()?;
            if grads.len() != resumed_log.len() {
                return Err(Error::Invalid(format!(
                    "checkpoint grad_log length {} does not match eval_log length {}",
                    grads.len(),
                    resumed_log.len()
                )));
            }
            grads
        }
        None => Vec::new(),
    };
    let header = snapshot_header("vqe-grad", fingerprint, optimizer);
    let mut ev = ResilientEvaluator::new_grad(backend, opts, header, resumed_log, resumed_grads);

    let mut history: Vec<f64> = Vec::new();
    let telemetry = nwq_telemetry::enabled();
    let ansatz_gates = problem.ansatz.len() as u64;
    let result = {
        let mut objective = VqeGradObjective {
            ev: &mut ev,
            problem,
            source,
            history: &mut history,
            telemetry,
            ansatz_gates,
            last_mark: std::time::Instant::now(),
        };
        optimizer.try_minimize_grad(&mut objective, x0, max_evals)
    };
    match result {
        Ok(r) => {
            ev.checkpoint_final()?;
            Ok(VqeResult {
                energy: r.value,
                params: r.params,
                evaluations: r.evals,
                converged: r.converged,
                history,
            })
        }
        Err(cause) => Err(ev.interrupt(cause)),
    }
}

/// Wraps any [`Backend`] with deterministic, seeded fault injection:
/// evaluation failures surface as transient [`Error::Backend`] and
/// NaN-amplitude faults as non-finite energies, exercising the retry and
/// health-guard paths of the drivers above.
pub struct FaultyBackend {
    inner: BoxedBackend,
    injector: FaultInjector,
}

impl FaultyBackend {
    /// Decorates `inner` with faults drawn from `spec`. The inner box is
    /// `Send` so a fault-injecting backend can still be owned by a worker
    /// thread.
    pub fn new(inner: BoxedBackend, spec: FaultSpec) -> Self {
        FaultyBackend {
            inner,
            injector: FaultInjector::new(spec),
        }
    }

    /// Decorates a concrete backend (convenience over [`FaultyBackend::new`]).
    pub fn wrap(inner: impl Backend + Send + 'static, spec: FaultSpec) -> Self {
        FaultyBackend::new(Box::new(inner), spec)
    }

    /// Faults injected so far, by class.
    pub fn fault_stats(&self) -> FaultStats {
        self.injector.stats()
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &dyn Backend {
        self.inner.as_ref()
    }
}

impl Backend for FaultyBackend {
    fn energy(&mut self, ansatz: &Circuit, params: &[f64], observable: &PauliOp) -> Result<f64> {
        // Both draws happen before the inner call so the fault sequence is
        // a pure function of the seed, independent of inner behaviour.
        let fail = self.injector.should_fail_eval();
        let nan = self.injector.should_inject_nan();
        if fail {
            return Err(Error::Backend("injected evaluation failure".into()));
        }
        if nan {
            // Models corrupted amplitudes reaching the reduction: the
            // readout "completes" but the result is garbage.
            return Ok(f64::NAN);
        }
        self.inner.energy(ansatz, params, observable)
    }

    fn stats(&self) -> crate::backend::BackendStats {
        self.inner.stats()
    }

    fn name(&self) -> &'static str {
        "faulty"
    }

    fn invalidate_cache(&mut self) {
        self.inner.invalidate_cache();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BackendStats, DirectBackend};
    use nwq_circuit::ParamExpr;
    use nwq_opt::{NelderMead, Spsa};

    fn toy_problem() -> VqeProblem {
        let mut ansatz = Circuit::new(2);
        ansatz
            .ry(0, ParamExpr::var(0))
            .cx(0, 1)
            .ry(1, ParamExpr::var(1));
        VqeProblem {
            hamiltonian: PauliOp::parse("1.0 ZZ + 1.0 XX").unwrap(),
            ansatz,
        }
    }

    fn tmp_checkpoint(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("nwq-resilience-{}-{name}.json", std::process::id()))
    }

    /// Fails every evaluation with a structural (non-transient) error.
    struct BrokenBackend {
        attempts: u64,
    }

    impl Backend for BrokenBackend {
        fn energy(&mut self, _: &Circuit, _: &[f64], _: &PauliOp) -> Result<f64> {
            self.attempts += 1;
            Err(Error::Invalid("backend is permanently broken".into()))
        }
        fn stats(&self) -> BackendStats {
            BackendStats::default()
        }
        fn name(&self) -> &'static str {
            "broken"
        }
    }

    #[test]
    fn content_fingerprints_separate_problems_not_instances() {
        let p = toy_problem();
        // Same content, fresh instances → identical fingerprint.
        let a = problem_content_fingerprint(&p.hamiltonian, &p.ansatz);
        let b = {
            let q = toy_problem();
            problem_content_fingerprint(&q.hamiltonian, &q.ansatz)
        };
        assert_eq!(a, b);
        // Different Hamiltonian coefficient → different fingerprint.
        let h2 = PauliOp::parse("1.0 ZZ + 0.5 XX").unwrap();
        assert_ne!(a, problem_content_fingerprint(&h2, &p.ansatz));
        // Different ansatz structure → different fingerprint.
        let mut other = Circuit::new(2);
        other.ry(1, nwq_circuit::ParamExpr::var(0)).cx(0, 1);
        assert_ne!(
            circuit_content_fingerprint(&p.ansatz),
            circuit_content_fingerprint(&other)
        );
        assert_ne!(a, problem_content_fingerprint(&p.hamiltonian, &other));
        // Gate order matters: ry·cx vs cx·ry are different circuits.
        let mut swapped = Circuit::new(2);
        swapped.cx(0, 1).ry(0, nwq_circuit::ParamExpr::var(0));
        let mut original = Circuit::new(2);
        original.ry(0, nwq_circuit::ParamExpr::var(0)).cx(0, 1);
        assert_ne!(
            circuit_content_fingerprint(&swapped),
            circuit_content_fingerprint(&original)
        );
    }

    #[test]
    fn fatal_error_aborts_promptly_without_poisoning() {
        let problem = toy_problem();
        let mut backend = BrokenBackend { attempts: 0 };
        let mut opt = NelderMead::default();
        let err = run_vqe_with(
            &problem,
            &mut backend,
            &mut opt,
            &[0.4, 0.2],
            500,
            &ResilienceOptions::default(),
        )
        .unwrap_err();
        // Non-transient: no retries, aborted at the very first evaluation.
        assert_eq!(backend.attempts, 1);
        match err {
            Error::Interrupted { checkpoint, cause } => {
                assert!(checkpoint.is_none());
                assert!(matches!(*cause, Error::Invalid(_)));
            }
            other => panic!("expected Interrupted, got {other}"),
        }
    }

    #[test]
    fn retries_recover_from_injected_eval_failures() {
        let problem = toy_problem();
        let mut backend =
            FaultyBackend::wrap(DirectBackend::new(), FaultSpec::eval_failures(0.1, 42));
        let mut opt = NelderMead::default();
        let r = run_vqe_with(
            &problem,
            &mut backend,
            &mut opt,
            &[1.0, 2.5],
            2000,
            &ResilienceOptions::default(),
        )
        .unwrap();
        assert!((r.energy + 2.0).abs() < 1e-4, "energy {}", r.energy);
        assert!(
            backend.fault_stats().eval_failures > 0,
            "10% fault rate over a long run must fire"
        );
    }

    #[test]
    fn nan_injection_is_detected_and_retried() {
        let problem = toy_problem();
        let spec = FaultSpec {
            nan_amplitude: 0.1,
            seed: 9,
            ..FaultSpec::default()
        };
        let mut backend = FaultyBackend::wrap(DirectBackend::new(), spec);
        let mut opt = NelderMead::default();
        let r = run_vqe_with(
            &problem,
            &mut backend,
            &mut opt,
            &[1.0, 2.5],
            2000,
            &ResilienceOptions::default(),
        )
        .unwrap();
        assert!(r.energy.is_finite());
        assert!((r.energy + 2.0).abs() < 1e-4, "energy {}", r.energy);
        assert!(backend.fault_stats().nan_amplitudes > 0);
    }

    #[test]
    fn exhausted_retry_budget_interrupts_with_checkpoint() {
        let problem = toy_problem();
        let path = tmp_checkpoint("exhausted");
        let spec = FaultSpec::eval_failures(1.0, 3); // every evaluation fails
        let mut backend = FaultyBackend::wrap(DirectBackend::new(), spec);
        let mut opt = NelderMead::default();
        let opts = ResilienceOptions {
            checkpoint: Some(CheckpointConfig::new(&path)),
            retry: RetryPolicy { max_retries: 2 },
            ..Default::default()
        };
        let err =
            run_vqe_with(&problem, &mut backend, &mut opt, &[0.4, 0.2], 500, &opts).unwrap_err();
        match err {
            Error::Interrupted { checkpoint, cause } => {
                assert_eq!(checkpoint.as_deref(), path.to_str());
                assert!(cause.is_transient(), "cause should be the backend fault");
            }
            other => panic!("expected Interrupted, got {other}"),
        }
        // 1 initial try + 2 retries, nothing more.
        assert_eq!(backend.fault_stats().eval_failures, 3);
        let resumed = ResumeState::load(&path).unwrap();
        assert_eq!(resumed.kind(), "vqe");
        assert_eq!(resumed.evaluations(), 0); // nothing ever succeeded
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn vqe_kill_and_resume_is_bitwise_identical() {
        let problem = toy_problem();
        let x0 = [1.0, 2.5];
        let max_evals = 400;
        let clean = {
            let mut backend = DirectBackend::new();
            let mut opt = NelderMead::default();
            crate::vqe::run_vqe(&problem, &mut backend, &mut opt, &x0, max_evals).unwrap()
        };

        let path = tmp_checkpoint("vqe-kill");
        let killed = {
            let mut backend = DirectBackend::new();
            let mut opt = NelderMead::default();
            let opts = ResilienceOptions {
                checkpoint: Some(CheckpointConfig::new(&path)),
                abort_after_evals: Some(37),
                ..Default::default()
            };
            run_vqe_with(&problem, &mut backend, &mut opt, &x0, max_evals, &opts).unwrap_err()
        };
        assert!(
            matches!(
                killed,
                Error::Interrupted {
                    checkpoint: Some(_),
                    ..
                }
            ),
            "{killed}"
        );

        let resumed = {
            let mut backend = DirectBackend::new();
            let mut opt = NelderMead::default();
            let opts = ResilienceOptions {
                resume: Some(ResumeState::load(&path).unwrap()),
                ..Default::default()
            };
            run_vqe_with(&problem, &mut backend, &mut opt, &x0, max_evals, &opts).unwrap()
        };
        assert_eq!(resumed.energy.to_bits(), clean.energy.to_bits());
        assert_eq!(resumed.evaluations, clean.evaluations);
        assert_eq!(resumed.params.len(), clean.params.len());
        for (a, b) in resumed.params.iter().zip(&clean.params) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(resumed.history, clean.history);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn spsa_vqe_walker_batching_preserves_scalar_trajectory() {
        // The driver now feeds SPSA's ±perturbation pairs to the backend
        // as width-2 batches (walker-evolved on a single-thread pool). The
        // result must be bitwise what the scalar entry point produces.
        let problem = toy_problem();
        let x0 = [0.9, 0.4];
        let mk_opt = || Spsa {
            a: 0.3,
            ..Default::default()
        };
        let scalar = {
            let mut backend = DirectBackend::new();
            mk_opt()
                .try_minimize(
                    &mut |t: &[f64]| backend.energy(&problem.ansatz, t, &problem.hamiltonian),
                    &x0,
                    240,
                )
                .unwrap()
        };
        nwq_telemetry::set_enabled(true);
        let batches_before = nwq_telemetry::counter_value("walkers.batches");
        let mut backend = DirectBackend::new();
        let r = crate::vqe::run_vqe(&problem, &mut backend, &mut mk_opt(), &x0, 240).unwrap();
        let batches_after = nwq_telemetry::counter_value("walkers.batches");
        nwq_telemetry::set_enabled(false);
        assert_eq!(r.energy.to_bits(), scalar.value.to_bits());
        assert_eq!(r.evaluations, scalar.evals);
        for (a, b) in r.params.iter().zip(&scalar.params) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // On a single-thread pool the ±pairs must actually take the
        // walker path (a multi-thread pool keeps the Rayon batch map).
        if !nwq_statevec::kernels::parallel_dispatch_enabled() {
            assert!(batches_after > batches_before, "walker path not taken");
        }
    }

    #[test]
    fn spsa_kill_and_resume_is_bitwise_identical() {
        let problem = toy_problem();
        let x0 = [0.9, 0.4];
        let max_evals = 240;
        let mk_opt = || Spsa {
            a: 0.3,
            ..Default::default()
        };
        let clean = {
            let mut backend = DirectBackend::new();
            let mut opt = mk_opt();
            crate::vqe::run_vqe(&problem, &mut backend, &mut opt, &x0, max_evals).unwrap()
        };
        let path = tmp_checkpoint("spsa-kill");
        {
            let mut backend = DirectBackend::new();
            let mut opt = mk_opt();
            let opts = ResilienceOptions {
                checkpoint: Some(CheckpointConfig::new(&path)),
                abort_after_evals: Some(51),
                ..Default::default()
            };
            run_vqe_with(&problem, &mut backend, &mut opt, &x0, max_evals, &opts).unwrap_err();
        }
        let resumed = {
            let mut backend = DirectBackend::new();
            let mut opt = mk_opt();
            let opts = ResilienceOptions {
                resume: Some(ResumeState::load(&path).unwrap()),
                ..Default::default()
            };
            run_vqe_with(&problem, &mut backend, &mut opt, &x0, max_evals, &opts).unwrap()
        };
        assert_eq!(resumed.energy.to_bits(), clean.energy.to_bits());
        assert_eq!(resumed.evaluations, clean.evaluations);
        for (a, b) in resumed.params.iter().zip(&clean.params) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_rejects_mismatched_problem_and_optimizer() {
        let problem = toy_problem();
        let path = tmp_checkpoint("mismatch");
        {
            let mut backend = DirectBackend::new();
            let mut opt = NelderMead::default();
            let opts = ResilienceOptions {
                checkpoint: Some(CheckpointConfig::new(&path)),
                ..Default::default()
            };
            run_vqe_with(&problem, &mut backend, &mut opt, &[0.4, 0.2], 200, &opts).unwrap();
        }
        let resume = ResumeState::load(&path).unwrap();
        // Different starting point → fingerprint mismatch.
        let mut backend = DirectBackend::new();
        let mut opt = NelderMead::default();
        let opts = ResilienceOptions {
            resume: Some(resume.clone()),
            ..Default::default()
        };
        let err =
            run_vqe_with(&problem, &mut backend, &mut opt, &[0.5, 0.2], 200, &opts).unwrap_err();
        assert!(matches!(err, Error::Invalid(_)), "{err}");
        // Different optimizer → rejected by name.
        let mut spsa = Spsa::default();
        let err =
            run_vqe_with(&problem, &mut backend, &mut spsa, &[0.4, 0.2], 200, &opts).unwrap_err();
        assert!(err.to_string().contains("optimizer"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_write_is_atomic_no_tmp_left_behind() {
        let problem = toy_problem();
        let path = tmp_checkpoint("atomic");
        let mut backend = DirectBackend::new();
        let mut opt = NelderMead::default();
        let opts = ResilienceOptions {
            checkpoint: Some(CheckpointConfig {
                path: path.clone(),
                every_improvements: 1,
            }),
            ..Default::default()
        };
        run_vqe_with(&problem, &mut backend, &mut opt, &[1.0, 2.5], 300, &opts).unwrap();
        assert!(path.exists());
        assert!(!PathBuf::from(format!("{}.tmp", path.display())).exists());
        let resumed = ResumeState::load(&path).unwrap();
        assert!(resumed.best_energy().unwrap() < -1.9);
        std::fs::remove_file(&path).ok();
    }

    fn h2_grad_problem() -> (VqeProblem, f64) {
        let m = nwq_chem::molecules::h2_sto3g();
        let h = m.to_qubit_hamiltonian().unwrap();
        let exact = crate::exact::ground_energy_default(&h).unwrap();
        let ansatz = nwq_chem::uccsd::uccsd_ansatz(4, 2).unwrap();
        (
            VqeProblem {
                hamiltonian: h,
                ansatz,
            },
            exact,
        )
    }

    #[test]
    fn adjoint_gradient_matches_parameter_shift_rule() {
        // Acceptance bar: adjoint = analytic, parameter shift (π/4 rule,
        // exact for excitation generators) = analytic → agreement to 1e-10.
        use crate::backend::GradientBackend;
        let (problem, _) = h2_grad_problem();
        let theta = [0.11, -0.23, 0.37];
        let mut backend = DirectBackend::new();
        let (e, g) = backend
            .energy_and_gradient(&problem.ansatz, &theta, &problem.hamiltonian)
            .unwrap();
        let e_plain = backend
            .energy(&problem.ansatz, &theta, &problem.hamiltonian)
            .unwrap();
        assert!((e - e_plain).abs() < 1e-12, "{e} vs {e_plain}");
        let s = std::f64::consts::FRAC_PI_4;
        for (j, gj) in g.iter().enumerate() {
            let mut plus = theta.to_vec();
            plus[j] += s;
            let mut minus = theta.to_vec();
            minus[j] -= s;
            let ep = backend
                .energy(&problem.ansatz, &plus, &problem.hamiltonian)
                .unwrap();
            let em = backend
                .energy(&problem.ansatz, &minus, &problem.hamiltonian)
                .unwrap();
            let shift = ep - em; // π/4 rule: denom 1
            assert!((gj - shift).abs() < 1e-10, "param {j}: {gj} vs {shift}");
        }
    }

    #[test]
    fn lbfgs_adjoint_h2_chemical_accuracy_within_17_equivalents() {
        // The headline claim: adjoint gradients + L-BFGS solve H2 in ≤ 17
        // energy-evaluation equivalents, vs 85 plain evaluations for the
        // committed Nelder–Mead baseline — a 5× reduction.
        let (problem, exact) = h2_grad_problem();
        let x0 = vec![0.0; problem.ansatz.n_params()];
        let mut backend = DirectBackend::new();
        let mut opt = nwq_opt::Lbfgs::default();
        let r = crate::vqe::run_vqe_grad(
            &problem,
            &mut backend,
            &mut opt,
            GradSource::Adjoint,
            &x0,
            17,
        )
        .unwrap();
        assert!(r.evaluations <= 17, "used {} equivalents", r.evaluations);
        assert!(
            (r.energy - exact).abs() < 1.6e-3,
            "E {} vs FCI {exact} in {} equivalents",
            r.energy,
            r.evaluations
        );
    }

    #[test]
    fn adam_adjoint_h2_reaches_chemical_accuracy() {
        let (problem, exact) = h2_grad_problem();
        let x0 = vec![0.0; problem.ansatz.n_params()];
        let mut backend = DirectBackend::new();
        let mut opt = nwq_opt::Adam::default();
        let r = crate::vqe::run_vqe_grad(
            &problem,
            &mut backend,
            &mut opt,
            GradSource::Adjoint,
            &x0,
            400,
        )
        .unwrap();
        assert!(
            (r.energy - exact).abs() < 1.6e-3,
            "E {} vs FCI {exact} in {} equivalents",
            r.energy,
            r.evaluations
        );
    }

    #[test]
    fn shift_source_run_agrees_with_adjoint_run() {
        // Same optimizer, two gradient sources: the π/4 shift rule is
        // exact for UCCSD, so both runs must land at the same minimum
        // (within optimizer tolerance), with the shift run charged
        // 2n + 1 equivalents per gradient.
        let (problem, exact) = h2_grad_problem();
        let x0 = vec![0.0; problem.ansatz.n_params()];
        let run = |source: GradSource, budget: usize| {
            let mut backend = DirectBackend::new();
            let mut opt = nwq_opt::Lbfgs::default();
            crate::vqe::run_vqe_grad(&problem, &mut backend, &mut opt, source, &x0, budget).unwrap()
        };
        let adj = run(GradSource::Adjoint, 60);
        let shift = run(GradSource::shift_excitations(), 200);
        assert!((adj.energy - exact).abs() < 1.6e-3);
        assert!((shift.energy - exact).abs() < 1.6e-3);
        assert!(
            (adj.energy - shift.energy).abs() < 1e-6,
            "adjoint {} vs shift {}",
            adj.energy,
            shift.energy
        );
    }

    #[test]
    fn grad_kill_and_resume_is_bitwise_identical() {
        // The gradient log must checkpoint and replay alongside the energy
        // log: a killed adjoint run resumed from disk retraces the exact
        // fused-evaluation trajectory.
        let (problem, _) = h2_grad_problem();
        let x0 = vec![0.0; problem.ansatz.n_params()];
        let max_evals = 60;
        let clean = {
            let mut backend = DirectBackend::new();
            let mut opt = nwq_opt::Lbfgs::default();
            crate::vqe::run_vqe_grad(
                &problem,
                &mut backend,
                &mut opt,
                GradSource::Adjoint,
                &x0,
                max_evals,
            )
            .unwrap()
        };
        let path = tmp_checkpoint("grad-kill");
        {
            let mut backend = DirectBackend::new();
            let mut opt = nwq_opt::Lbfgs::default();
            let opts = ResilienceOptions {
                checkpoint: Some(CheckpointConfig::new(&path)),
                abort_after_evals: Some(5),
                ..Default::default()
            };
            let err = run_vqe_grad_with(
                &problem,
                &mut backend,
                &mut opt,
                GradSource::Adjoint,
                &x0,
                max_evals,
                &opts,
            )
            .unwrap_err();
            assert!(
                matches!(
                    err,
                    Error::Interrupted {
                        checkpoint: Some(_),
                        ..
                    }
                ),
                "{err}"
            );
        }
        let state = ResumeState::load(&path).unwrap();
        assert_eq!(state.kind(), "vqe-grad");
        let resumed = {
            let mut backend = DirectBackend::new();
            let mut opt = nwq_opt::Lbfgs::default();
            let opts = ResilienceOptions {
                resume: Some(state),
                ..Default::default()
            };
            run_vqe_grad_with(
                &problem,
                &mut backend,
                &mut opt,
                GradSource::Adjoint,
                &x0,
                max_evals,
                &opts,
            )
            .unwrap()
        };
        assert_eq!(resumed.energy.to_bits(), clean.energy.to_bits());
        assert_eq!(resumed.evaluations, clean.evaluations);
        for (a, b) in resumed.params.iter().zip(&clean.params) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(resumed.history, clean.history);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn grad_checkpoint_rejects_plain_vqe_resume() {
        // A plain VQE checkpoint has no gradient log; resuming a gradient
        // run from it must fail (kind mismatch) rather than silently
        // replaying energies without gradients.
        let problem = toy_problem();
        let path = tmp_checkpoint("grad-kind-mismatch");
        {
            let mut backend = DirectBackend::new();
            let mut opt = NelderMead::default();
            let opts = ResilienceOptions {
                checkpoint: Some(CheckpointConfig::new(&path)),
                ..Default::default()
            };
            run_vqe_with(&problem, &mut backend, &mut opt, &[1.0, 2.5], 200, &opts).unwrap();
        }
        let (grad_problem, _) = h2_grad_problem();
        let mut backend = DirectBackend::new();
        let mut opt = nwq_opt::Lbfgs::default();
        let opts = ResilienceOptions {
            resume: Some(ResumeState::load(&path).unwrap()),
            ..Default::default()
        };
        let err = run_vqe_grad_with(
            &grad_problem,
            &mut backend,
            &mut opt,
            GradSource::Adjoint,
            &vec![0.0; grad_problem.ansatz.n_params()],
            60,
            &opts,
        )
        .unwrap_err();
        assert!(matches!(err, Error::Invalid(_)), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn plain_engine_rejects_fused_gradient_evaluations() {
        let problem = toy_problem();
        let mut backend = DirectBackend::new();
        let opt = NelderMead::default();
        let fp = vqe_fingerprint(&problem, &[0.0, 0.0], 100);
        let header = snapshot_header("vqe", fp, &opt);
        let opts = ResilienceOptions::default();
        let mut ev = ResilientEvaluator::new(&mut backend, &opts, header, Vec::new());
        let err = ev
            .eval_grad(&problem.ansatz, &[0.0, 0.0], &problem.hamiltonian)
            .unwrap_err();
        assert!(
            err.to_string().contains("gradient-capable"),
            "unexpected error: {err}"
        );
    }
}
