//! # nwq-core
//!
//! The end-to-end VQE workflow of *Enabling Scalable VQE Simulation on
//! Leading HPC Systems* (SC-W 2023):
//!
//! - [`backend`] — XACC-style execution backends spanning the paper's
//!   design space (non-caching baseline, §4.1 cached measurement, §4.1+§4.2
//!   direct expectation, shot sampling, simulated multi-rank);
//! - [`vqe`] — the variational loop (§3.1);
//! - [`adapt`] — ADAPT-VQE with pool-gradient screening (§5.3, Fig 5);
//! - [`qpe`] — Trotterized quantum phase estimation;
//! - [`workflow`] — the Fig 2 pipeline: coupled-cluster downfolding →
//!   qubit Hamiltonian → VQE/ADAPT on the optimized simulator;
//! - [`accounting`] — the Fig 3 gate-cost model (caching vs non-caching);
//! - [`exact`] — matrix-free Lanczos reference energies.
//!
//! ## Quickstart
//!
//! ```
//! use nwq_core::backend::DirectBackend;
//! use nwq_core::vqe::{run_vqe, VqeProblem};
//! use nwq_chem::{molecules, uccsd};
//! use nwq_opt::NelderMead;
//!
//! let h2 = molecules::h2_sto3g();
//! let problem = VqeProblem {
//!     hamiltonian: h2.to_qubit_hamiltonian().unwrap(),
//!     ansatz: uccsd::uccsd_ansatz(4, 2).unwrap(),
//! };
//! let mut backend = DirectBackend::new();
//! let mut optimizer = NelderMead::for_vqe();
//! let x0 = vec![0.0; problem.ansatz.n_params()];
//! let result = run_vqe(&problem, &mut backend, &mut optimizer, &x0, 3000).unwrap();
//! assert!((result.energy + 1.137).abs() < 2e-3); // FCI total energy of H2
//! ```

#![warn(missing_docs)]

pub mod accounting;
pub mod adapt;
pub mod backend;
pub mod exact;
pub mod qpe;
pub mod resilience;
pub mod vqd;
pub mod vqe;
pub mod workflow;

pub use adapt::{run_adapt_vqe, run_adapt_vqe_with, AdaptConfig, AdaptResult};
pub use backend::{
    Backend, BackendStats, BoxedBackend, CachedMeasureBackend, DensityBackend, DirectBackend,
    DistributedBackend, GradientBackend, NonCachingBackend, SamplingBackend,
};
pub use exact::{ground_energy_sector_default, Sector};
pub use qpe::{run_qpe, QpeConfig, QpeOutcome};
pub use resilience::{
    circuit_content_fingerprint, problem_content_fingerprint, run_vqe_grad_with, run_vqe_with,
    CheckpointConfig, FaultyBackend, ResilienceOptions, ResumeState, RetryPolicy,
};
pub use vqd::{run_vqd, VqdConfig, VqdResult};
pub use vqe::{run_vqe, run_vqe_grad, GradSource, VqeProblem, VqeResult};
pub use workflow::{run_vqe_workflow, WorkflowConfig, WorkflowResult};
