//! Execution backends — the XACC-style abstraction (paper §3).
//!
//! A [`Backend`] turns `(ansatz, θ, observable)` into an energy. The four
//! implementations span the paper's design space:
//!
//! | backend | ansatz executions per E(θ) | measurement | paper section |
//! |---|---|---|---|
//! | [`NonCachingBackend`] | one per measurement group | exact diagonal readout | Fig 3 baseline |
//! | [`CachedMeasureBackend`] | one | basis changes on cached state | §4.1 |
//! | [`DirectBackend`] | one | direct amplitude reduction, no basis gates | §4.1 + §4.2 |
//! | [`SamplingBackend`] | one | finite shots (statistical noise) | §4.2.1 baseline |
//!
//! A fifth, [`DistributedBackend`], runs the ansatz on the simulated
//! multi-rank engine and reads out directly — the multi-node path.

use nwq_circuit::Circuit;
use nwq_common::{Error, Result};
use nwq_pauli::grouping::{group_qubit_wise, group_singletons};
use nwq_pauli::PauliOp;
use nwq_statevec::cache::PostAnsatzCache;
use nwq_statevec::executor::Executor;
use nwq_statevec::expval::{energy_cached, energy_direct_batched, energy_non_caching};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Cumulative work counters for a backend.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BackendStats {
    /// Energy evaluations served.
    pub evaluations: u64,
    /// Total gates applied across all evaluations.
    pub gates_applied: u64,
    /// Ansatz circuit executions.
    pub ansatz_runs: u64,
}

/// An owned, thread-movable backend — the form worker pools hold. Every
/// backend in this module is `Send` (plain owned data, no interior
/// mutability), so boxing with the bound costs nothing and lets a server
/// hand each worker thread its own engine.
pub type BoxedBackend = Box<dyn Backend + Send>;

/// An energy-evaluation engine for variational algorithms.
pub trait Backend {
    /// Evaluates `⟨ψ(θ)|H|ψ(θ)⟩`.
    fn energy(&mut self, ansatz: &Circuit, params: &[f64], observable: &PauliOp) -> Result<f64>;

    /// Evaluates one energy per parameter set, in input order. The default
    /// runs the sets sequentially through [`energy`](Self::energy);
    /// backends with a genuinely batched engine (walker-batched
    /// statevectors, device-side batching) override this. Results must be
    /// bitwise identical to the sequential path — callers treat the two
    /// entry points as interchangeable.
    fn energy_batch(
        &mut self,
        ansatz: &Circuit,
        param_sets: &[Vec<f64>],
        observable: &PauliOp,
    ) -> Result<Vec<f64>> {
        param_sets
            .iter()
            .map(|p| self.energy(ansatz, p, observable))
            .collect()
    }

    /// Work counters.
    fn stats(&self) -> BackendStats;

    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Drops cached derived state (post-ansatz states, compiled plans) so
    /// the next evaluation recomputes from scratch — the recovery hook the
    /// resilience layer pulls between retries, since a transient fault may
    /// have poisoned whatever was cached. No-op for stateless backends.
    fn invalidate_cache(&mut self) {}
}

/// An energy engine that can also produce the *analytic* gradient
/// `∂E/∂θ` — via adjoint differentiation, where the full gradient costs a
/// small constant number of statevector evolutions (≈ 4) regardless of
/// the parameter count, versus `2·n` circuit evaluations for the
/// parameter-shift rule.
pub trait GradientBackend: Backend {
    /// Evaluates `⟨ψ(θ)|H|ψ(θ)⟩` and its full gradient in one adjoint
    /// sweep.
    fn energy_and_gradient(
        &mut self,
        ansatz: &Circuit,
        params: &[f64],
        observable: &PauliOp,
    ) -> Result<(f64, Vec<f64>)>;

    /// Upcast to the plain-energy interface (explicit because dyn-trait
    /// upcasting coercion is not assumed from the pinned toolchain).
    fn as_backend(&mut self) -> &mut dyn Backend;
}

fn check_widths(ansatz: &Circuit, observable: &PauliOp) -> Result<()> {
    if ansatz.n_qubits() != observable.n_qubits() {
        return Err(Error::DimensionMismatch {
            expected: ansatz.n_qubits(),
            got: observable.n_qubits(),
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------------

/// Re-prepares the ansatz for every measurement group (Fig 3 baseline).
#[derive(Debug, Default)]
pub struct NonCachingBackend {
    stats: BackendStats,
}

impl NonCachingBackend {
    /// A fresh baseline backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Backend for NonCachingBackend {
    fn energy(&mut self, ansatz: &Circuit, params: &[f64], observable: &PauliOp) -> Result<f64> {
        check_widths(ansatz, observable)?;
        let groups = group_singletons(observable);
        let eval = energy_non_caching(ansatz, params, &groups, 0.0)?;
        self.stats.evaluations += 1;
        self.stats.gates_applied += eval.gates_applied;
        self.stats.ansatz_runs += groups.len() as u64;
        Ok(eval.energy)
    }

    fn stats(&self) -> BackendStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "non-caching"
    }
}

// ---------------------------------------------------------------------------

/// Caches the post-ansatz state, then applies per-group basis changes
/// (paper §4.1), with qubit-wise-commuting grouping to shrink the group
/// count.
#[derive(Debug, Default)]
pub struct CachedMeasureBackend {
    stats: BackendStats,
}

impl CachedMeasureBackend {
    /// A fresh caching backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Backend for CachedMeasureBackend {
    fn energy(&mut self, ansatz: &Circuit, params: &[f64], observable: &PauliOp) -> Result<f64> {
        check_widths(ansatz, observable)?;
        let groups = group_qubit_wise(observable);
        let eval = energy_cached(ansatz, params, &groups, 0.0)?;
        self.stats.evaluations += 1;
        self.stats.gates_applied += eval.gates_applied;
        self.stats.ansatz_runs += 1;
        Ok(eval.energy)
    }

    fn stats(&self) -> BackendStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "cached-measure"
    }
}

// ---------------------------------------------------------------------------

/// The paper's fastest path: cached post-ansatz state plus *direct*
/// expectation values (§4.2) — zero measurement gates.
#[derive(Debug)]
pub struct DirectBackend {
    cache: PostAnsatzCache,
    executor: Executor,
    stats: BackendStats,
}

impl Default for DirectBackend {
    fn default() -> Self {
        DirectBackend {
            cache: PostAnsatzCache::unbounded(),
            executor: Executor::new(),
            stats: BackendStats::default(),
        }
    }
}

impl DirectBackend {
    /// A direct backend with an unlimited device-memory model.
    pub fn new() -> Self {
        Self::default()
    }

    /// A direct backend with a bounded device tier (spills to host above
    /// the budget, per §4.1.4).
    pub fn with_device_budget(bytes: u128) -> Self {
        DirectBackend {
            cache: PostAnsatzCache::new(bytes),
            ..Default::default()
        }
    }

    /// Cache statistics (hits mean reused post-ansatz states).
    pub fn cache_stats(&self) -> nwq_statevec::cache::CacheStats {
        self.cache.stats()
    }

    /// Execution statistics of the backend's own executor (fused blocks,
    /// amplitude sweeps) — the plan-layer effect, per backend instance.
    pub fn executor_stats(&self) -> nwq_statevec::stats::ExecStats {
        self.executor.stats()
    }
}

impl Backend for DirectBackend {
    fn energy(&mut self, ansatz: &Circuit, params: &[f64], observable: &PauliOp) -> Result<f64> {
        check_widths(ansatz, observable)?;
        // Cache misses bind the ansatz's globally cached PlanTemplate (the
        // structural fusion/coalescing pass runs once per circuit shape,
        // process-wide; each θ only replays the recorded arithmetic); the
        // energy readout batches Pauli terms by flip-mask. `gates_applied`
        // stays the logical gate count so the Fig 3 cost comparison is
        // independent of how much the plan fuses.
        let misses_before = self.cache.stats().misses;
        let state = self
            .cache
            .get_or_prepare_plan(ansatz, params, &mut self.executor)?;
        let e = energy_direct_batched(state, observable)?;
        self.stats.evaluations += 1;
        if self.cache.stats().misses != misses_before {
            self.stats.ansatz_runs += 1;
            self.stats.gates_applied += ansatz.len() as u64;
        }
        Ok(e)
    }

    /// Multi-θ evaluation through the walker-batched engine: one plan
    /// bind per θ, one blocked kernel sweep per op for all walkers, and a
    /// shared flip-group phase in the readout
    /// ([`nwq_statevec::batch::batched_energies`]). Bitwise identical per
    /// entry to the sequential path. The post-ansatz cache is neither
    /// consulted nor populated here — batch entries are fresh θ by
    /// construction (optimizer probes), so a lookup would only add misses.
    fn energy_batch(
        &mut self,
        ansatz: &Circuit,
        param_sets: &[Vec<f64>],
        observable: &PauliOp,
    ) -> Result<Vec<f64>> {
        if param_sets.len() < 2 {
            return param_sets
                .iter()
                .map(|p| self.energy(ansatz, p, observable))
                .collect();
        }
        check_widths(ansatz, observable)?;
        let energies = nwq_statevec::batch::batched_energies(ansatz, param_sets, observable)?;
        let n = param_sets.len() as u64;
        self.stats.evaluations += n;
        self.stats.ansatz_runs += n;
        self.stats.gates_applied += ansatz.len() as u64 * n;
        Ok(energies)
    }

    fn stats(&self) -> BackendStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "direct"
    }

    fn invalidate_cache(&mut self) {
        self.cache.invalidate();
    }
}

impl GradientBackend for DirectBackend {
    /// Adjoint differentiation over the compiled plan: |ψ⟩ forward once,
    /// φ = H|ψ⟩ once, then one backward inverse-replay accumulating every
    /// `∂E/∂θ_j` — about four statevector-evolution equivalents total
    /// ([`nwq_statevec::adjoint::energy_and_gradient`]). The dagger tape
    /// is derived once per circuit shape and cached process-wide alongside
    /// the forward template.
    fn energy_and_gradient(
        &mut self,
        ansatz: &Circuit,
        params: &[f64],
        observable: &PauliOp,
    ) -> Result<(f64, Vec<f64>)> {
        check_widths(ansatz, observable)?;
        let g = nwq_statevec::adjoint::energy_and_gradient(ansatz, params, observable)?;
        self.stats.evaluations += 1;
        self.stats.ansatz_runs += 1;
        self.stats.gates_applied += ansatz.len() as u64;
        Ok((g.energy, g.gradient))
    }

    fn as_backend(&mut self) -> &mut dyn Backend {
        self
    }
}

// ---------------------------------------------------------------------------

/// Traditional finite-shot estimation (the baseline of §4.2.1): caching
/// and grouping are still used, but each group is read out by sampling.
#[derive(Debug)]
pub struct SamplingBackend {
    shots_per_group: usize,
    rng: StdRng,
    stats: BackendStats,
}

impl SamplingBackend {
    /// A sampling backend with the given per-group shot budget and seed.
    pub fn new(shots_per_group: usize, seed: u64) -> Self {
        SamplingBackend {
            shots_per_group,
            rng: StdRng::seed_from_u64(seed),
            stats: BackendStats::default(),
        }
    }
}

impl Backend for SamplingBackend {
    fn energy(&mut self, ansatz: &Circuit, params: &[f64], observable: &PauliOp) -> Result<f64> {
        check_widths(ansatz, observable)?;
        let groups = group_qubit_wise(observable);
        let mut ex = Executor::new();
        let cached = ex.run(ansatz, params)?;
        let mut energy = 0.0;
        for g in &groups {
            let basis = nwq_circuit::basis::group_basis_circuit(ansatz.n_qubits(), g)?;
            let mut st = cached.clone();
            ex.run_on(&basis, &[], &mut st)?;
            // Diagonalize the strings for post-rotation readout.
            let diag = nwq_pauli::grouping::MeasurementGroup {
                terms: g
                    .terms
                    .iter()
                    .map(|&(c, s)| (c, nwq_circuit::basis::diagonalized(&s)))
                    .collect(),
                basis: g.basis.clone(),
            };
            energy += nwq_statevec::measure::sampled_group_energy(
                &st,
                &diag,
                self.shots_per_group,
                &mut self.rng,
            )?;
        }
        self.stats.evaluations += 1;
        self.stats.gates_applied += ex.stats().total_gates();
        self.stats.ansatz_runs += 1;
        Ok(energy)
    }

    fn stats(&self) -> BackendStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "sampling"
    }
}

// ---------------------------------------------------------------------------

/// Runs the ansatz on the simulated multi-rank distributed engine, then
/// reads the energy directly from the gathered state.
#[derive(Debug)]
pub struct DistributedBackend {
    n_ranks: usize,
    comm: nwq_dist::CommStats,
    stats: BackendStats,
}

impl DistributedBackend {
    /// A distributed backend over `n_ranks` simulated ranks.
    pub fn new(n_ranks: usize) -> Self {
        DistributedBackend {
            n_ranks,
            comm: Default::default(),
            stats: Default::default(),
        }
    }

    /// Accumulated simulated communication.
    pub fn comm_stats(&self) -> nwq_dist::CommStats {
        self.comm
    }
}

impl Backend for DistributedBackend {
    fn energy(&mut self, ansatz: &Circuit, params: &[f64], observable: &PauliOp) -> Result<f64> {
        check_widths(ansatz, observable)?;
        let (state, comm) = nwq_dist::run_and_gather(ansatz, params, self.n_ranks)?;
        self.comm += comm;
        self.stats.evaluations += 1;
        self.stats.ansatz_runs += 1;
        self.stats.gates_applied += ansatz.len() as u64;
        state.energy(observable)
    }

    fn stats(&self) -> BackendStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "distributed"
    }
}

// ---------------------------------------------------------------------------

/// Density-matrix execution under a gate-level noise model (the DM-Sim
/// path): energies are exact traces `Tr(ρH)` over the noisy mixed state.
#[derive(Debug)]
pub struct DensityBackend {
    noise: nwq_statevec::density::NoiseModel,
    stats: BackendStats,
}

impl DensityBackend {
    /// A density-matrix backend with the given noise model.
    pub fn new(noise: nwq_statevec::density::NoiseModel) -> Self {
        DensityBackend {
            noise,
            stats: BackendStats::default(),
        }
    }

    /// Noiseless density-matrix execution (agrees with [`DirectBackend`]).
    pub fn noiseless() -> Self {
        DensityBackend::new(nwq_statevec::density::NoiseModel::noiseless())
    }
}

impl Backend for DensityBackend {
    fn energy(&mut self, ansatz: &Circuit, params: &[f64], observable: &PauliOp) -> Result<f64> {
        check_widths(ansatz, observable)?;
        let rho = nwq_statevec::density::run_noisy(ansatz, params, &self.noise)?;
        self.stats.evaluations += 1;
        self.stats.ansatz_runs += 1;
        self.stats.gates_applied += ansatz.len() as u64;
        rho.energy(observable)
    }

    fn stats(&self) -> BackendStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "density-matrix"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwq_circuit::ParamExpr;

    /// Compile-time thread-safety audit: a worker pool moves backends into
    /// threads (`Send`) and shares immutable handles across them (`Sync`).
    /// Every concrete backend is plain owned data — if someone introduces
    /// an `Rc`/`RefCell`/raw pointer into a backend or its statevec
    /// internals, this stops compiling rather than failing at runtime.
    #[test]
    fn backends_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BackendStats>();
        assert_send_sync::<NonCachingBackend>();
        assert_send_sync::<CachedMeasureBackend>();
        assert_send_sync::<DirectBackend>();
        assert_send_sync::<SamplingBackend>();
        assert_send_sync::<DistributedBackend>();
        assert_send_sync::<DensityBackend>();
        // DirectBackend internals, audited individually so a regression
        // names the offending type.
        assert_send_sync::<PostAnsatzCache>();
        assert_send_sync::<Executor>();
        assert_send_sync::<nwq_statevec::cache::CacheStats>();
        assert_send_sync::<nwq_statevec::stats::ExecStats>();
        // The boxed trait-object path workers own must be movable.
        fn assert_send<T: Send + ?Sized>() {}
        assert_send::<BoxedBackend>();
        assert_send::<crate::resilience::FaultyBackend>();
    }

    fn toy() -> (Circuit, PauliOp) {
        let mut ansatz = Circuit::new(2);
        ansatz.ry(0, ParamExpr::var(0)).cx(0, 1);
        let h = PauliOp::parse("1.0 ZZ + 1.0 XX").unwrap();
        (ansatz, h)
    }

    #[test]
    fn all_backends_agree_on_exact_energy() {
        let (ansatz, h) = toy();
        let params = [0.7];
        let mut direct = DirectBackend::new();
        let reference = direct.energy(&ansatz, &params, &h).unwrap();
        let mut nc = NonCachingBackend::new();
        let mut cm = CachedMeasureBackend::new();
        let mut dist = DistributedBackend::new(1);
        for (name, e) in [
            ("non-caching", nc.energy(&ansatz, &params, &h).unwrap()),
            ("cached", cm.energy(&ansatz, &params, &h).unwrap()),
            ("distributed", dist.energy(&ansatz, &params, &h).unwrap()),
        ] {
            assert!((e - reference).abs() < 1e-10, "{name}: {e} vs {reference}");
        }
    }

    #[test]
    fn sampling_converges_to_direct() {
        let (ansatz, h) = toy();
        let params = [0.7];
        let mut direct = DirectBackend::new();
        let reference = direct.energy(&ansatz, &params, &h).unwrap();
        let mut sampling = SamplingBackend::new(400_000, 3);
        let e = sampling.energy(&ansatz, &params, &h).unwrap();
        assert!((e - reference).abs() < 0.02, "{e} vs {reference}");
    }

    #[test]
    fn gate_cost_ordering_matches_paper() {
        // non-caching ≥ cached-measure ≥ direct in gates per evaluation.
        let (ansatz, h) = toy();
        let params = [0.4];
        let mut nc = NonCachingBackend::new();
        let mut cm = CachedMeasureBackend::new();
        let mut d = DirectBackend::new();
        nc.energy(&ansatz, &params, &h).unwrap();
        cm.energy(&ansatz, &params, &h).unwrap();
        d.energy(&ansatz, &params, &h).unwrap();
        assert!(nc.stats().gates_applied >= cm.stats().gates_applied);
        assert!(cm.stats().gates_applied >= d.stats().gates_applied);
        // Direct applies exactly the ansatz, nothing else.
        assert_eq!(d.stats().gates_applied, ansatz.len() as u64);
    }

    #[test]
    fn energy_batch_is_bitwise_identical_to_sequential() {
        // The walker-batched override must be indistinguishable (to the
        // bit) from evaluating each θ on a fresh backend.
        let (ansatz, h) = toy();
        let sets: Vec<Vec<f64>> = (0..6).map(|k| vec![0.1 + 0.3 * k as f64]).collect();
        let mut d = DirectBackend::new();
        let batch = d.energy_batch(&ansatz, &sets, &h).unwrap();
        assert_eq!(batch.len(), sets.len());
        assert_eq!(d.stats().evaluations, sets.len() as u64);
        for (p, &e) in sets.iter().zip(&batch) {
            let seq = DirectBackend::new().energy(&ansatz, p, &h).unwrap();
            assert_eq!(e.to_bits(), seq.to_bits());
        }
    }

    #[test]
    fn direct_backend_caches_between_identical_calls() {
        let (ansatz, h) = toy();
        let mut d = DirectBackend::new();
        d.energy(&ansatz, &[0.4], &h).unwrap();
        d.energy(&ansatz, &[0.4], &h).unwrap(); // hit
        d.energy(&ansatz, &[0.5], &h).unwrap(); // miss
        assert_eq!(d.cache_stats().hits, 1);
        assert_eq!(d.cache_stats().misses, 2);
        assert_eq!(d.stats().ansatz_runs, 2);
    }

    #[test]
    fn repeated_theta_hits_cache_and_is_visible_in_telemetry() {
        // BENCH_vqe.json once showed misses == evaluations with hits
        // untested and invisible; pin both the cache behaviour and the
        // telemetry counter. The registry is process-global and other tests
        // in this binary record while it is enabled, so assert on deltas
        // with `>=` rather than absolute values.
        let (ansatz, h) = toy();
        nwq_telemetry::set_enabled(true);
        let hits_before = nwq_telemetry::counter_value("cache.hits");
        let misses_before = nwq_telemetry::counter_value("cache.misses");
        let mut d = DirectBackend::new();
        let e1 = d.energy(&ansatz, &[0.25], &h).unwrap();
        let e2 = d.energy(&ansatz, &[0.25], &h).unwrap();
        let hits_after = nwq_telemetry::counter_value("cache.hits");
        let misses_after = nwq_telemetry::counter_value("cache.misses");
        nwq_telemetry::set_enabled(false);
        assert_eq!(e1, e2, "cache hit must reproduce the energy exactly");
        assert!(hits_after > hits_before, "repeated θ must hit");
        assert!(misses_after > misses_before);
        assert!((d.cache_stats().hit_rate() - 0.5).abs() < 1e-15);
        // The second evaluation did not re-run the ansatz.
        assert_eq!(d.stats().ansatz_runs, 1);
        assert_eq!(d.stats().evaluations, 2);
    }

    #[test]
    fn direct_backend_executes_fused_plans() {
        // The seed baseline's gap: executor.fused_blocks == 0 across a VQE
        // run because symbolic ansätze never fused. The plan path must fuse;
        // backend-local stats keep this race-free under parallel tests.
        let (ansatz, h) = toy();
        let mut d = DirectBackend::new();
        d.energy(&ansatz, &[0.7], &h).unwrap();
        let ex = d.executor_stats();
        assert!(
            ex.fused_blocks > 0,
            "plan execution must report fused blocks"
        );
        // ry(0)·cx(0,1) fuses into one block: one 4-amplitude sweep beats
        // the two sweeps the unfused path would make.
        assert!(
            ex.amplitude_updates < ansatz.len() as u64 * 4,
            "fused plan must sweep fewer amplitudes than gate-by-gate"
        );
    }

    #[test]
    fn noiseless_density_backend_matches_direct() {
        let (ansatz, h) = toy();
        let mut direct = DirectBackend::new();
        let mut dm = DensityBackend::noiseless();
        for theta in [[0.0], [0.4], [1.3]] {
            let a = direct.energy(&ansatz, &theta, &h).unwrap();
            let b = dm.energy(&ansatz, &theta, &h).unwrap();
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn noisy_density_backend_raises_toy_energy() {
        let (ansatz, h) = toy();
        // Depolarizing noise contracts every expectation toward the
        // maximally-mixed value Tr(H)/4 = 0.
        let theta = [std::f64::consts::FRAC_PI_2];
        let mut clean = DensityBackend::noiseless();
        let mut noisy =
            DensityBackend::new(nwq_statevec::density::NoiseModel::depolarizing(0.02, 0.05));
        let e_clean = clean.energy(&ansatz, &theta, &h).unwrap();
        let e_noisy = noisy.energy(&ansatz, &theta, &h).unwrap();
        assert!(
            e_clean.abs() > 0.5,
            "toy point should be far from mixed value"
        );
        assert!(
            e_noisy.abs() < e_clean.abs() - 1e-4,
            "{e_noisy} vs {e_clean}"
        );
    }

    #[test]
    fn width_mismatch_rejected() {
        let (ansatz, _) = toy();
        let h3 = PauliOp::parse("1.0 ZZZ").unwrap();
        assert!(DirectBackend::new().energy(&ansatz, &[0.1], &h3).is_err());
    }

    #[test]
    fn distributed_backend_counts_comm() {
        let mut ansatz = Circuit::new(4);
        ansatz.h(3).cx(3, 0); // touches global qubits at 4 ranks
        let h = PauliOp::parse("1.0 ZIII").unwrap();
        let mut dist = DistributedBackend::new(4);
        dist.energy(&ansatz, &[], &h).unwrap();
        assert!(dist.comm_stats().messages > 0);
        assert_eq!(dist.stats().evaluations, 1);
    }
}
