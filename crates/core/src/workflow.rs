//! The end-to-end execution flow of paper Fig 2:
//! coupled-cluster downfolding → qubit Hamiltonian (the XACC role) →
//! UCCSD/ADAPT VQE on the optimized simulator.

use crate::adapt::{run_adapt_vqe, AdaptConfig, AdaptResult};
use crate::backend::{Backend, DirectBackend};
use crate::exact::{ground_energy_sector, LanczosConfig, Sector};
use crate::vqe::{run_vqe, VqeProblem, VqeResult};
use nwq_chem::downfold::{downfold_to_active, DownfoldReport};
use nwq_chem::pool::OperatorPool;
use nwq_chem::uccsd::uccsd_ansatz;
use nwq_chem::MolecularIntegrals;
use nwq_common::Result;
use nwq_opt::NelderMead;
use nwq_pauli::PauliOp;

/// Configuration of the full workflow.
#[derive(Clone, Debug)]
pub struct WorkflowConfig {
    /// Core orbitals to freeze in the downfold.
    pub n_frozen: usize,
    /// Active spatial orbitals to keep.
    pub n_active: usize,
    /// VQE energy-evaluation budget.
    pub max_evals: usize,
    /// Also compute the exact (Lanczos) reference energy.
    pub compute_exact: bool,
}

/// Artifacts of one workflow run.
#[derive(Clone, Debug)]
pub struct WorkflowResult {
    /// Downfolding summary (core energy, external MP2 fold).
    pub downfold: DownfoldReport,
    /// Active-space qubit count.
    pub n_qubits: usize,
    /// Pauli terms in the downfolded observable (Fig 1b's quantity).
    pub n_terms: usize,
    /// HF energy of the active problem (start of the variational descent).
    pub hf_energy: f64,
    /// The VQE outcome.
    pub vqe: VqeResult,
    /// Lanczos reference energy of the active Hamiltonian, if requested.
    pub exact_energy: Option<f64>,
}

/// Runs downfold → JW → UCCSD-VQE with the direct backend (the paper's
/// fast path) and a Nelder–Mead optimizer.
pub fn run_vqe_workflow(
    integrals: &MolecularIntegrals,
    config: &WorkflowConfig,
) -> Result<WorkflowResult> {
    let (active, report) = downfold_to_active(integrals, config.n_frozen, config.n_active)?;
    let hamiltonian = active.to_qubit_hamiltonian()?;
    let n_qubits = hamiltonian.n_qubits();
    let n_terms = hamiltonian.num_terms();
    let ansatz = uccsd_ansatz(n_qubits, active.n_electrons())?;
    let problem = VqeProblem {
        hamiltonian: hamiltonian.clone(),
        ansatz,
    };
    let mut backend = DirectBackend::new();
    let mut optimizer = NelderMead::for_vqe();
    let x0 = vec![0.0; problem.ansatz.n_params()];
    let vqe = run_vqe(
        &problem,
        &mut backend,
        &mut optimizer,
        &x0,
        config.max_evals,
    )?;
    let exact_energy = if config.compute_exact {
        // Restrict to the molecule's own (closed-shell) sector: the global
        // qubit ground state may carry a different electron count, which a
        // particle-conserving ansatz can never reach.
        Some(ground_energy_sector(
            &hamiltonian,
            Sector::closed_shell(active.n_electrons()),
            LanczosConfig::default(),
        )?)
    } else {
        None
    };
    Ok(WorkflowResult {
        downfold: report,
        n_qubits,
        n_terms,
        hf_energy: active.hf_total_energy(),
        vqe,
        exact_energy,
    })
}

/// Runs downfold → JW → ADAPT-VQE (the Fig 5 path) with a caller-supplied
/// backend.
pub fn run_adapt_workflow(
    integrals: &MolecularIntegrals,
    n_frozen: usize,
    n_active: usize,
    backend: &mut dyn Backend,
    config: &AdaptConfig,
) -> Result<(PauliOp, AdaptResult, DownfoldReport)> {
    let (active, report) = downfold_to_active(integrals, n_frozen, n_active)?;
    let hamiltonian = active.to_qubit_hamiltonian()?;
    let pool = OperatorPool::singles_doubles(hamiltonian.n_qubits(), active.n_electrons())?;
    let mut optimizer = NelderMead::for_vqe();
    let result = run_adapt_vqe(
        &hamiltonian,
        &pool,
        active.n_electrons(),
        backend,
        &mut optimizer,
        config,
    )?;
    Ok((hamiltonian, result, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwq_chem::molecules::{h2_sto3g, water_model};

    #[test]
    fn h2_full_workflow_no_downfold() {
        let m = h2_sto3g();
        let cfg = WorkflowConfig {
            n_frozen: 0,
            n_active: 2,
            max_evals: 4000,
            compute_exact: true,
        };
        let r = run_vqe_workflow(&m, &cfg).unwrap();
        assert_eq!(r.n_qubits, 4);
        let exact = r.exact_energy.unwrap();
        assert!(
            (r.vqe.energy - exact).abs() < 1.6e-3,
            "{} vs {exact}",
            r.vqe.energy
        );
        assert!(r.vqe.energy < r.hf_energy);
        assert!(r.n_terms > 4);
    }

    #[test]
    fn downfolded_water_workflow_runs() {
        // 5-orbital model downfolded to a 3-orbital (6-qubit) active space.
        let m = water_model(5, 6);
        let cfg = WorkflowConfig {
            n_frozen: 1,
            n_active: 3,
            max_evals: 1500,
            compute_exact: true,
        };
        let r = run_vqe_workflow(&m, &cfg).unwrap();
        assert_eq!(r.n_qubits, 6);
        assert_eq!(r.downfold.frozen_core, 1);
        assert_eq!(r.downfold.discarded_virtuals, 1);
        let exact = r.exact_energy.unwrap();
        // Variational: VQE at or above the active-space exact energy.
        assert!(r.vqe.energy >= exact - 1e-8);
        // And it captures correlation relative to HF.
        assert!(r.vqe.energy <= r.hf_energy + 1e-9);
    }

    #[test]
    fn adapt_workflow_on_small_active_space() {
        let m = water_model(4, 4);
        let mut backend = DirectBackend::new();
        let cfg = AdaptConfig {
            max_iterations: 4,
            inner_max_evals: 800,
            ..Default::default()
        };
        let (h, r, report) = run_adapt_workflow(&m, 0, 3, &mut backend, &cfg).unwrap();
        assert_eq!(h.n_qubits(), 6);
        assert!(report.discarded_virtuals == 1);
        // ADAPT found at least one operator and lowered the energy.
        assert!(!r.iterations.is_empty());
        let hf = {
            let (active, _) = downfold_to_active(&m, 0, 3).unwrap();
            active.hf_total_energy()
        };
        assert!(r.energy < hf + 1e-9, "ADAPT {} vs HF {hf}", r.energy);
    }
}
