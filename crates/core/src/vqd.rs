//! Variational Quantum Deflation — excited states on top of VQE.
//!
//! VQD (Higgott–Wang–Brierley) finds the k-th eigenstate by minimizing
//! `E(θ) + Σ_{j<k} β_j |⟨ψ(θ)|ψ_j⟩|²`: the overlap penalties deflate the
//! previously found states out of the search space. On a statevector
//! simulator the overlaps are exact inner products — no SWAP tests
//! needed — making VQD a natural companion to the paper's direct
//! expectation machinery (and a cross-check for QPE's spectral lines).

use crate::vqe::VqeProblem;
use nwq_common::{Error, Result};
use nwq_opt::Optimizer;
use nwq_statevec::{simulate_plan, StateVector};

/// VQD configuration.
#[derive(Clone, Debug)]
pub struct VqdConfig {
    /// Number of eigenstates to compute (including the ground state).
    pub n_states: usize,
    /// Overlap penalty weight; must exceed the spectral gaps of interest.
    pub beta: f64,
    /// Optimizer evaluation budget per state.
    pub max_evals_per_state: usize,
}

impl Default for VqdConfig {
    fn default() -> Self {
        VqdConfig {
            n_states: 2,
            beta: 10.0,
            max_evals_per_state: 3000,
        }
    }
}

/// One deflation level.
#[derive(Clone, Debug)]
pub struct VqdState {
    /// Optimized parameters for this eigenstate.
    pub params: Vec<f64>,
    /// The energy `⟨ψ|H|ψ⟩` (without penalties).
    pub energy: f64,
    /// Largest residual overlap with the previously found states.
    pub max_overlap: f64,
}

/// Outcome of a VQD run: states ordered by discovery (ascending energy
/// for a well-chosen β and expressive ansatz).
#[derive(Clone, Debug)]
pub struct VqdResult {
    /// The computed eigenstates.
    pub states: Vec<VqdState>,
}

impl VqdResult {
    /// The computed energies in discovery order.
    pub fn energies(&self) -> Vec<f64> {
        self.states.iter().map(|s| s.energy).collect()
    }
}

/// Runs VQD: repeatedly minimizes the deflated objective, seeding each
/// state from `initial_points[k]` (one start per requested state).
pub fn run_vqd(
    problem: &VqeProblem,
    optimizer_factory: &mut dyn FnMut() -> Box<dyn Optimizer>,
    initial_points: &[Vec<f64>],
    config: &VqdConfig,
) -> Result<VqdResult> {
    if initial_points.len() < config.n_states {
        return Err(Error::ParameterMismatch {
            expected: config.n_states,
            got: initial_points.len(),
        });
    }
    if !problem.hamiltonian.is_hermitian(1e-9) {
        return Err(Error::Invalid("VQD observable must be Hermitian".into()));
    }
    let mut found: Vec<StateVector> = Vec::new();
    let mut states: Vec<VqdState> = Vec::new();
    for x0 in initial_points.iter().take(config.n_states) {
        // A fallible objective aborts the sweep at the first failure
        // instead of poisoning the optimizer with infinite values.
        let result = {
            let mut objective =
                |theta: &[f64]| deflated_objective(problem, theta, &found, config.beta);
            let mut opt = optimizer_factory();
            opt.try_minimize(&mut objective, x0, config.max_evals_per_state)?
        };
        let state = simulate_plan(&problem.ansatz, &result.params)?;
        let energy = state.energy(&problem.hamiltonian)?;
        let max_overlap = found
            .iter()
            .map(|f| state.fidelity(f).unwrap_or(1.0))
            .fold(0.0, f64::max);
        found.push(state);
        states.push(VqdState {
            params: result.params,
            energy,
            max_overlap,
        });
    }
    Ok(VqdResult { states })
}

fn deflated_objective(
    problem: &VqeProblem,
    theta: &[f64],
    found: &[StateVector],
    beta: f64,
) -> Result<f64> {
    let state = simulate_plan(&problem.ansatz, theta)?;
    let mut value = state.energy(&problem.hamiltonian)?;
    for f in found {
        value += beta * state.fidelity(f)?;
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{lowest_eigenvalues, LanczosConfig};
    use nwq_circuit::hea::hardware_efficient_ansatz;
    use nwq_opt::NelderMead;
    use nwq_pauli::PauliOp;

    fn nm_factory() -> Box<dyn Optimizer> {
        Box::new(NelderMead {
            initial_step: 0.4,
            ..Default::default()
        })
    }

    #[test]
    fn two_lowest_states_of_single_qubit_field() {
        // H = 0.7 Z: spectrum {−0.7, +0.7}.
        let h = PauliOp::parse("0.7 Z").unwrap();
        let ansatz = hardware_efficient_ansatz(1, 1).unwrap();
        let problem = VqeProblem {
            hamiltonian: h,
            ansatz,
        };
        let starts = vec![vec![0.3; 4], vec![2.5; 4]];
        let cfg = VqdConfig {
            n_states: 2,
            beta: 5.0,
            max_evals_per_state: 1500,
        };
        let r = run_vqd(&problem, &mut nm_factory, &starts, &cfg).unwrap();
        let e = r.energies();
        assert!((e[0] + 0.7).abs() < 1e-5, "{e:?}");
        assert!((e[1] - 0.7).abs() < 1e-5, "{e:?}");
        assert!(
            r.states[1].max_overlap < 1e-4,
            "overlap {}",
            r.states[1].max_overlap
        );
    }

    #[test]
    fn spectrum_of_toy_two_qubit_hamiltonian() {
        // H = ZZ + XX: spectrum {−2, 0, 0, 2}. VQD with 3 states must
        // find −2 and then two (near-)zero states.
        let h = PauliOp::parse("1.0 ZZ + 1.0 XX").unwrap();
        let exact = lowest_eigenvalues(&h, 2, LanczosConfig::default()).unwrap();
        assert!((exact[0] + 2.0).abs() < 1e-9);
        assert!(exact[1].abs() < 1e-9);
        let ansatz = hardware_efficient_ansatz(2, 2).unwrap();
        let problem = VqeProblem {
            hamiltonian: h,
            ansatz,
        };
        let starts: Vec<Vec<f64>> = (0..3)
            .map(|k| {
                (0..problem.ansatz.n_params())
                    .map(|i| 0.4 + 0.25 * (k as f64) + 0.13 * (i as f64))
                    .collect()
            })
            .collect();
        let cfg = VqdConfig {
            n_states: 3,
            beta: 8.0,
            max_evals_per_state: 5000,
        };
        let r = run_vqd(&problem, &mut nm_factory, &starts, &cfg).unwrap();
        let e = r.energies();
        assert!((e[0] - exact[0]).abs() < 1e-3, "ground {e:?} vs {exact:?}");
        assert!(
            (e[1] - exact[1]).abs() < 0.05,
            "first excited {e:?} vs {exact:?}"
        );
        // Deflation keeps states (nearly) orthogonal.
        for s in &r.states[1..] {
            assert!(s.max_overlap < 0.05, "overlap {}", s.max_overlap);
        }
    }

    #[test]
    fn lanczos_k_lowest_matches_known_spectra() {
        // ZZ + XX has spectrum {−2, 0, 0, 2}: single-vector Lanczos sees
        // the three *distinct* levels (degeneracy is invisible to it and
        // requesting a fourth level errors).
        let h = PauliOp::parse("1.0 ZZ + 1.0 XX").unwrap();
        let e = lowest_eigenvalues(&h, 3, LanczosConfig::default()).unwrap();
        for (got, want) in e.iter().zip(&[-2.0, 0.0, 2.0]) {
            assert!((got - want).abs() < 1e-8, "{e:?}");
        }
        assert!(lowest_eigenvalues(&h, 4, LanczosConfig::default()).is_err());
        // H2 spectrum sanity: ground matches ground_energy.
        let m = nwq_chem::molecules::h2_sto3g();
        let h2 = m.to_qubit_hamiltonian().unwrap();
        let spectrum = lowest_eigenvalues(&h2, 3, LanczosConfig::default()).unwrap();
        let ground = crate::exact::ground_energy_default(&h2).unwrap();
        assert!((spectrum[0] - ground).abs() < 1e-8);
        assert!(spectrum[1] >= spectrum[0] - 1e-10);
        assert!(spectrum[2] >= spectrum[1] - 1e-10);
    }

    #[test]
    fn validation_errors() {
        let h = PauliOp::parse("1.0 Z").unwrap();
        let ansatz = hardware_efficient_ansatz(1, 1).unwrap();
        let problem = VqeProblem {
            hamiltonian: h,
            ansatz,
        };
        let cfg = VqdConfig {
            n_states: 2,
            ..Default::default()
        };
        // Too few starting points.
        assert!(run_vqd(&problem, &mut nm_factory, &[vec![0.0; 4]], &cfg).is_err());
    }
}
