//! Quantum phase estimation through the simulator workflow.
//!
//! QPE estimates an eigenphase of `U = exp(−iHt)` by phase kickback onto an
//! ancilla register followed by an inverse QFT. The controlled evolution is
//! first-order Trotterized with a fixed substep `δt = t / trotter_steps`
//! (so the power `U^{2^k}` uses `2^k · trotter_steps` substeps and the
//! Trotter error stays uniform per unit time).
//!
//! Register layout: system qubits `0..n_sys`, ancillas
//! `n_sys..n_sys+n_ancilla` with ancilla `k` holding phase bit `k`.
//! An eigenvalue `E` appears at phase `φ ≡ −Et/2π (mod 1)`, i.e. the
//! estimator resolves energies within a window of width `2π/t` at a
//! resolution of `2π/(t·2^m)`; use [`QpeOutcome::energy_near`] to unwrap
//! against a reference (e.g. the Hartree–Fock energy).

use nwq_circuit::exp_pauli::TrotterOrder;
use nwq_circuit::qft::append_iqft;
use nwq_circuit::{Circuit, Gate};
use nwq_common::{Error, Result};
use nwq_pauli::{PauliOp, PauliString};
use std::f64::consts::PI;

/// QPE configuration.
#[derive(Clone, Copy, Debug)]
pub struct QpeConfig {
    /// Phase-register width (resolution bits).
    pub n_ancilla: usize,
    /// Evolution time `t` of `U = exp(−iHt)`; the energy window is
    /// `(−2π/t, 0]` before unwrapping.
    pub t: f64,
    /// Trotter substeps per unit power of `U`.
    pub trotter_steps: usize,
    /// Product-formula order for the controlled evolution.
    pub order: TrotterOrder,
}

impl Default for QpeConfig {
    fn default() -> Self {
        QpeConfig {
            n_ancilla: 5,
            t: 1.0,
            trotter_steps: 4,
            order: TrotterOrder::First,
        }
    }
}

/// QPE readout.
#[derive(Clone, Debug)]
pub struct QpeOutcome {
    /// Most probable phase-register value.
    pub peak: usize,
    /// Estimated phase `peak / 2^m ∈ [0, 1)`.
    pub phase: f64,
    /// Raw energy estimate `−2πφ/t` in the window `(−2π/t, 0]`.
    pub energy: f64,
    /// Probability of the peak outcome.
    pub peak_probability: f64,
    /// Full marginal distribution over the phase register.
    pub distribution: Vec<f64>,
    /// Evolution time used (needed for unwrapping).
    pub t: f64,
}

impl QpeOutcome {
    /// Energy resolution of the estimate, `2π/(t·2^m)`.
    pub fn resolution(&self) -> f64 {
        2.0 * PI / (self.t * self.distribution.len() as f64)
    }

    /// Unwraps the phase estimate to the energy branch nearest
    /// `reference` (adds the multiple of `2π/t` minimizing the distance).
    pub fn energy_near(&self, reference: f64) -> f64 {
        let window = 2.0 * PI / self.t;
        let k = ((reference - self.energy) / window).round();
        self.energy + k * window
    }
}

/// Appends one controlled Trotter substep `controlled-exp(−iH δt)` of the
/// requested product-formula order.
fn append_controlled_step(
    circuit: &mut Circuit,
    h: &PauliOp,
    control: usize,
    dt: f64,
    order: TrotterOrder,
) -> Result<()> {
    let sweep = |circuit: &mut Circuit, scale: f64, reverse: bool| -> Result<()> {
        let terms: Vec<_> = if reverse {
            h.terms().iter().rev().collect()
        } else {
            h.terms().iter().collect()
        };
        for &&(coeff, string) in &terms {
            if coeff.im.abs() > 1e-10 {
                return Err(Error::Invalid(
                    "QPE requires a Hermitian Hamiltonian".into(),
                ));
            }
            let c = coeff.re;
            if string.is_identity() {
                // Controlled global phase e^{−ic·δt·scale}.
                circuit.push(Gate::P(control, (-c * dt * scale).into()))?;
                continue;
            }
            append_controlled_exp_pauli(circuit, &string, control, 2.0 * c * dt * scale)?;
        }
        Ok(())
    };
    match order {
        TrotterOrder::First => sweep(circuit, 1.0, false),
        TrotterOrder::Second => {
            sweep(circuit, 0.5, false)?;
            sweep(circuit, 0.5, true)
        }
    }
}

/// Appends `controlled-exp(−iθ/2·P)`: the standard basis-change + CNOT
/// ladder with the central RZ replaced by its controlled decomposition
/// `CX·RZ(−θ/2)·CX·RZ(θ/2)`.
pub fn append_controlled_exp_pauli(
    circuit: &mut Circuit,
    string: &PauliString,
    control: usize,
    theta: f64,
) -> Result<()> {
    if string.op(control) != nwq_pauli::Pauli::I {
        return Err(Error::DuplicateQubit(control));
    }
    let support: Vec<usize> = string.iter_ops().map(|(q, _)| q).collect();
    // Basis changes.
    for (q, p) in string.iter_ops() {
        match p {
            nwq_pauli::Pauli::X => {
                circuit.push(Gate::H(q))?;
            }
            nwq_pauli::Pauli::Y => {
                circuit.push(Gate::Sdg(q))?;
                circuit.push(Gate::H(q))?;
            }
            _ => {}
        }
    }
    // Infallible: callers skip identity strings, so `support` is non-empty.
    let last = *support.last().expect("non-identity string");
    for w in support.windows(2) {
        circuit.push(Gate::CX(w[0], w[1]))?;
    }
    // Controlled-RZ(θ) on `last`.
    circuit.push(Gate::CX(control, last))?;
    circuit.push(Gate::RZ(last, (-theta * 0.5).into()))?;
    circuit.push(Gate::CX(control, last))?;
    circuit.push(Gate::RZ(last, (theta * 0.5).into()))?;
    for w in support.windows(2).rev() {
        circuit.push(Gate::CX(w[0], w[1]))?;
    }
    for (q, p) in string.iter_ops() {
        match p {
            nwq_pauli::Pauli::X => {
                circuit.push(Gate::H(q))?;
            }
            nwq_pauli::Pauli::Y => {
                circuit.push(Gate::H(q))?;
                circuit.push(Gate::S(q))?;
            }
            _ => {}
        }
    }
    Ok(())
}

/// Builds the full QPE circuit: state preparation on the system register,
/// Hadamards on the ancillas, controlled powers of the Trotterized
/// evolution, and the inverse QFT on the ancillas.
pub fn qpe_circuit(h: &PauliOp, state_prep: &Circuit, config: &QpeConfig) -> Result<Circuit> {
    if config.n_ancilla == 0 {
        return Err(Error::Invalid("QPE needs at least one ancilla".into()));
    }
    if config.trotter_steps == 0 {
        return Err(Error::Invalid("trotter_steps must be positive".into()));
    }
    let n_sys = h.n_qubits();
    if state_prep.n_qubits() != n_sys {
        return Err(Error::DimensionMismatch {
            expected: n_sys,
            got: state_prep.n_qubits(),
        });
    }
    let n_total = n_sys + config.n_ancilla;
    let h_wide = h.resized(n_total)?;
    let mut c = Circuit::new(n_total);
    // State preparation acts on the system qubits (indices unchanged).
    for g in state_prep.gates() {
        c.push(g.clone())?;
    }
    for k in 0..config.n_ancilla {
        c.push(Gate::H(n_sys + k))?;
    }
    let dt = config.t / config.trotter_steps as f64;
    for k in 0..config.n_ancilla {
        let control = n_sys + k;
        let reps = config.trotter_steps << k;
        for _ in 0..reps {
            append_controlled_step(&mut c, &h_wide, control, dt, config.order)?;
        }
    }
    append_iqft(&mut c, n_sys, config.n_ancilla)?;
    Ok(c)
}

/// Runs QPE and reads the phase-register marginal from the exact
/// statevector (the simulator analog of repeated measurement).
pub fn run_qpe(h: &PauliOp, state_prep: &Circuit, config: &QpeConfig) -> Result<QpeOutcome> {
    let circuit = qpe_circuit(h, state_prep, config)?;
    let state = nwq_statevec::simulate_plan(&circuit, &[])?;
    let n_sys = h.n_qubits();
    let m = config.n_ancilla;
    let mut distribution = vec![0.0f64; 1 << m];
    for (idx, amp) in state.amplitudes().iter().enumerate() {
        distribution[idx >> n_sys] += amp.norm_sqr();
    }
    let (peak, &peak_probability) = distribution
        .iter()
        .enumerate()
        // total_cmp keeps this panic-free even if a fault left NaN
        // probabilities in the distribution.
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty distribution");
    let phase = peak as f64 / (1usize << m) as f64;
    let energy = -2.0 * PI * phase / config.t;
    Ok(QpeOutcome {
        peak,
        phase,
        energy,
        peak_probability,
        distribution,
        t: config.t,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qpe_on_diagonal_hamiltonian_exact() {
        // H = Z on |1⟩: E = −1. Commuting (single term): Trotter exact.
        // Choose t = π/4 so φ = −E t / 2π = 1/8 exactly at 3 ancillas.
        let h = PauliOp::parse("1.0 Z").unwrap();
        let mut prep = Circuit::new(1);
        prep.x(0);
        let cfg = QpeConfig {
            n_ancilla: 3,
            t: PI / 4.0,
            trotter_steps: 1,
            order: TrotterOrder::First,
        };
        let out = run_qpe(&h, &prep, &cfg).unwrap();
        assert_eq!(out.peak, 1, "distribution {:?}", out.distribution);
        assert!((out.peak_probability - 1.0).abs() < 1e-9);
        assert!((out.energy_near(-1.0) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn qpe_on_plus_one_eigenstate() {
        // H = Z on |0⟩: E = +1 → wraps; unwrap near +1.
        let h = PauliOp::parse("1.0 Z").unwrap();
        let prep = Circuit::new(1);
        let cfg = QpeConfig {
            n_ancilla: 3,
            t: PI / 4.0,
            trotter_steps: 1,
            order: TrotterOrder::First,
        };
        let out = run_qpe(&h, &prep, &cfg).unwrap();
        assert!((out.energy_near(1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn qpe_commuting_two_qubit_hamiltonian() {
        // H = ZZ + 0.5 ZI on |11⟩: E = 1·(+1) + 0.5·(−1) = 0.5.
        let h = PauliOp::parse("1.0 ZZ + 0.5 ZI").unwrap();
        let mut prep = Circuit::new(2);
        prep.x(0).x(1);
        let cfg = QpeConfig {
            n_ancilla: 4,
            t: PI / 2.0,
            trotter_steps: 1,
            order: TrotterOrder::First,
        };
        let out = run_qpe(&h, &prep, &cfg).unwrap();
        assert!(
            (out.energy_near(0.5) - 0.5).abs() < out.resolution() / 2.0 + 1e-9,
            "E {} res {}",
            out.energy_near(0.5),
            out.resolution()
        );
    }

    #[test]
    fn qpe_superposed_eigenstates_bimodal() {
        // |+⟩ under H = Z: equal weight on E = ±1 peaks.
        let h = PauliOp::parse("1.0 Z").unwrap();
        let mut prep = Circuit::new(1);
        prep.h(0);
        let cfg = QpeConfig {
            n_ancilla: 3,
            t: PI / 4.0,
            trotter_steps: 1,
            order: TrotterOrder::First,
        };
        let out = run_qpe(&h, &prep, &cfg).unwrap();
        // φ(E=−1) = 1/8 → bin 1; φ(E=+1) = 7/8 → bin 7.
        assert!((out.distribution[1] - 0.5).abs() < 1e-9);
        assert!((out.distribution[7] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn qpe_h2_coarse_estimate() {
        // Non-commuting molecular Hamiltonian: Trotter-limited, coarse
        // settings for test speed; the example binary runs full accuracy.
        let m = nwq_chem::molecules::h2_sto3g();
        let h = m.to_qubit_hamiltonian().unwrap();
        let mut prep = Circuit::new(4);
        nwq_chem::uccsd::append_hf_state(&mut prep, 2).unwrap();
        let cfg = QpeConfig {
            n_ancilla: 4,
            t: 1.5,
            trotter_steps: 6,
            order: TrotterOrder::First,
        };
        let out = run_qpe(&h, &prep, &cfg).unwrap();
        let e = out.energy_near(m.hf_total_energy());
        // HF overlaps the ground state strongly; expect within a few
        // resolution bins of FCI (−1.137).
        assert!((e + 1.137).abs() < 0.3, "QPE estimate {e}");
    }

    #[test]
    fn controlled_exp_pauli_matches_uncontrolled_when_control_set() {
        use nwq_circuit::reference;
        let s = PauliString::parse("XZ").unwrap().resized(3).unwrap();
        let theta = 0.73;
        // With control (qubit 2) set, the controlled version ≡ plain exp.
        let mut controlled = Circuit::new(3);
        controlled.x(2);
        append_controlled_exp_pauli(&mut controlled, &s, 2, theta).unwrap();
        let mut plain = Circuit::new(3);
        plain.x(2);
        nwq_circuit::exp_pauli::append_exp_pauli(&mut plain, &s, theta.into()).unwrap();
        let a = reference::run(&controlled, &[]).unwrap();
        let b = reference::run(&plain, &[]).unwrap();
        assert!(reference::states_equivalent(&a, &b, 1e-10));
    }

    #[test]
    fn controlled_exp_pauli_identity_when_control_clear() {
        use nwq_circuit::reference;
        let s = PauliString::parse("YX").unwrap().resized(3).unwrap();
        let mut controlled = Circuit::new(3);
        // Prepare a non-trivial system state, control (qubit 2) stays |0⟩.
        controlled.h(0).cx(0, 1);
        let before = reference::run(&controlled, &[]).unwrap();
        append_controlled_exp_pauli(&mut controlled, &s, 2, 1.1).unwrap();
        let after = reference::run(&controlled, &[]).unwrap();
        assert!(reference::states_equivalent(&before, &after, 1e-10));
    }

    #[test]
    fn second_order_trotter_improves_h2_peak() {
        // Same substep budget, higher-order formula: the ground-state
        // peak must not get worse, and typically sharpens.
        let m = nwq_chem::molecules::h2_sto3g();
        let h = m.to_qubit_hamiltonian().unwrap();
        let mut prep = Circuit::new(4);
        nwq_chem::uccsd::append_hf_state(&mut prep, 2).unwrap();
        let base = QpeConfig {
            n_ancilla: 4,
            t: 1.5,
            trotter_steps: 4,
            order: TrotterOrder::First,
        };
        let first = run_qpe(&h, &prep, &base).unwrap();
        let second = run_qpe(
            &h,
            &prep,
            &QpeConfig {
                order: TrotterOrder::Second,
                ..base
            },
        )
        .unwrap();
        let fci = -1.13728;
        let err1 = (first.energy_near(fci) - fci).abs();
        let err2 = (second.energy_near(fci) - fci).abs();
        assert!(err2 <= err1 + second.resolution() / 2.0, "{err2} vs {err1}");
        assert!(second.peak_probability > 0.5);
    }

    #[test]
    fn config_validation() {
        let h = PauliOp::parse("1.0 Z").unwrap();
        let prep = Circuit::new(1);
        assert!(qpe_circuit(
            &h,
            &prep,
            &QpeConfig {
                n_ancilla: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(qpe_circuit(
            &h,
            &prep,
            &QpeConfig {
                trotter_steps: 0,
                ..Default::default()
            }
        )
        .is_err());
        let wide_prep = Circuit::new(2);
        assert!(qpe_circuit(&h, &wide_prep, &QpeConfig::default()).is_err());
    }

    #[test]
    fn control_on_support_rejected() {
        let s = PauliString::parse("XZ").unwrap();
        let mut c = Circuit::new(2);
        assert!(append_controlled_exp_pauli(&mut c, &s, 0, 0.5).is_err());
    }
}
