//! Exact ground-state energies by Lanczos iteration.
//!
//! Reference energies for the ADAPT-VQE convergence study (Fig 5's ΔE
//! axis) need the true ground state of 12-qubit Hamiltonians — too big for
//! dense diagonalization but easy for Lanczos with matrix-free
//! `H|v⟩` products ([`nwq_pauli::apply::apply_op`]).

use nwq_common::{Error, Result, C64};
use nwq_pauli::PauliOp;

/// Configuration for the Lanczos solver.
#[derive(Clone, Copy, Debug)]
pub struct LanczosConfig {
    /// Maximum Krylov dimension.
    pub max_dim: usize,
    /// Convergence threshold on the ground-eigenvalue change per step.
    pub tol: f64,
    /// Seed for the deterministic pseudo-random start vector.
    pub seed: u64,
}

impl Default for LanczosConfig {
    fn default() -> Self {
        LanczosConfig {
            max_dim: 160,
            tol: 1e-11,
            seed: 11,
        }
    }
}

fn dot(a: &[C64], b: &[C64]) -> C64 {
    a.iter().zip(b).map(|(x, y)| x.conj() * *y).sum()
}

fn norm(a: &[C64]) -> f64 {
    a.iter().map(|x| x.norm_sqr()).sum::<f64>().sqrt()
}

fn axpy(y: &mut [C64], alpha: C64, x: &[C64]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * *xi;
    }
}

/// `k`-th smallest eigenvalue (0-indexed) of a symmetric tridiagonal
/// matrix via Sturm-sequence bisection.
fn tridiag_kth_eig(a: &[f64], b: &[f64], k: usize) -> f64 {
    let n = a.len();
    debug_assert!(k < n);
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for i in 0..n {
        let r = if n == 1 {
            0.0
        } else if i == 0 {
            b[0].abs()
        } else if i == n - 1 {
            b[n - 2].abs()
        } else {
            b[i - 1].abs() + b[i].abs()
        };
        lo = lo.min(a[i] - r);
        hi = hi.max(a[i] + r);
    }
    let count_below = |x: f64| -> usize {
        let mut count = 0;
        let mut d = a[0] - x;
        if d < 0.0 {
            count += 1;
        }
        for i in 1..n {
            let denom = if d.abs() < 1e-300 {
                1e-300_f64.copysign(d)
            } else {
                d
            };
            d = a[i] - x - b[i - 1] * b[i - 1] / denom;
            if d < 0.0 {
                count += 1;
            }
        }
        count
    };
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if count_below(mid) > k {
            hi = mid;
        } else {
            lo = mid;
        }
        if hi - lo < 1e-13 * (1.0 + hi.abs()) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Smallest eigenvalue of a symmetric tridiagonal matrix (diagonal `a`,
/// off-diagonal `b`) via Sturm-sequence bisection.
fn tridiag_smallest_eig(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len();
    debug_assert_eq!(b.len() + 1, n.max(1));
    if n == 1 {
        return a[0];
    }
    // Gershgorin bounds.
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for i in 0..n {
        let r = if i == 0 {
            b[0].abs()
        } else if i == n - 1 {
            b[n - 2].abs()
        } else {
            b[i - 1].abs() + b[i].abs()
        };
        lo = lo.min(a[i] - r);
        hi = hi.max(a[i] + r);
    }
    // Count of eigenvalues < x by the Sturm sequence.
    let count_below = |x: f64| -> usize {
        let mut count = 0;
        let mut d = a[0] - x;
        if d < 0.0 {
            count += 1;
        }
        for i in 1..n {
            let denom = if d.abs() < 1e-300 {
                1e-300_f64.copysign(d)
            } else {
                d
            };
            d = a[i] - x - b[i - 1] * b[i - 1] / denom;
            if d < 0.0 {
                count += 1;
            }
        }
        count
    };
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if count_below(mid) >= 1 {
            hi = mid;
        } else {
            lo = mid;
        }
        if hi - lo < 1e-13 * (1.0 + hi.abs()) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Computes the ground-state energy of a Hermitian Pauli operator by
/// Lanczos with full reorthogonalization.
pub fn ground_energy(h: &PauliOp, config: LanczosConfig) -> Result<f64> {
    if !h.is_hermitian(1e-9) {
        return Err(Error::Invalid(
            "Lanczos requires a Hermitian operator".into(),
        ));
    }
    if h.is_zero() {
        return Ok(0.0);
    }
    let dim = 1usize << h.n_qubits();
    // Deterministic start vector (splitmix-style hashing).
    let mut state = config.seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    };
    let mut v: Vec<C64> = (0..dim).map(|_| C64::new(next(), next())).collect();
    let n0 = norm(&v);
    for x in v.iter_mut() {
        *x = *x * (1.0 / n0);
    }

    let mut basis: Vec<Vec<C64>> = vec![v.clone()];
    let mut alphas: Vec<f64> = Vec::new();
    let mut betas: Vec<f64> = Vec::new();
    let mut prev_eig = f64::INFINITY;

    for k in 0..config.max_dim.min(dim) {
        let mut w = nwq_pauli::apply::apply_op(h, &basis[k])?;
        let alpha = dot(&basis[k], &w).re;
        alphas.push(alpha);
        // w -= alpha v_k + beta v_{k-1}; then full reorthogonalization.
        axpy(&mut w, C64::real(-alpha), &basis[k]);
        if k > 0 {
            axpy(&mut w, C64::real(-betas[k - 1]), &basis[k - 1]);
        }
        for prev in &basis {
            let overlap = dot(prev, &w);
            if overlap.norm() > 0.0 {
                axpy(&mut w, -overlap, prev);
            }
        }
        let eig = tridiag_smallest_eig(&alphas, &betas);
        if (prev_eig - eig).abs() < config.tol {
            return Ok(eig);
        }
        prev_eig = eig;
        let beta = norm(&w);
        if beta < 1e-13 {
            // Krylov space exhausted: eigenvalue is exact.
            return Ok(eig);
        }
        betas.push(beta);
        for x in w.iter_mut() {
            *x = *x * (1.0 / beta);
        }
        basis.push(w);
    }
    Ok(prev_eig)
}

/// Convenience wrapper with default configuration.
pub fn ground_energy_default(h: &PauliOp) -> Result<f64> {
    ground_energy(h, LanczosConfig::default())
}

/// A symmetry sector of the Fock space, selected by occupation pattern.
///
/// Electronic Hamiltonians conserve particle number (and, without
/// spin–orbit terms, each spin's particle number separately), while the
/// *global* ground state of the qubit operator may live in a different
/// sector than the molecule's neutral, spin-balanced one. Variational
/// algorithms built from particle-conserving excitations can only reach
/// their own sector, so their reference energy must be sector-restricted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sector {
    /// Fixed total particle number.
    Particles(usize),
    /// Fixed α (even qubits) and β (odd qubits) particle numbers, in the
    /// interleaved spin-orbital convention.
    Spin {
        /// α electrons (even qubit indices).
        n_alpha: usize,
        /// β electrons (odd qubit indices).
        n_beta: usize,
    },
}

impl Sector {
    /// The balanced sector of a closed-shell molecule with `n_electrons`.
    pub fn closed_shell(n_electrons: usize) -> Self {
        Sector::Spin {
            n_alpha: n_electrons / 2,
            n_beta: n_electrons - n_electrons / 2,
        }
    }

    /// Whether basis state `idx` belongs to the sector.
    #[inline]
    pub fn contains(&self, idx: u64) -> bool {
        const ALPHA_MASK: u64 = 0x5555_5555_5555_5555;
        match *self {
            Sector::Particles(n) => idx.count_ones() as usize == n,
            Sector::Spin { n_alpha, n_beta } => {
                (idx & ALPHA_MASK).count_ones() as usize == n_alpha
                    && (idx & !ALPHA_MASK).count_ones() as usize == n_beta
            }
        }
    }
}

/// Ground-state energy restricted to a symmetry sector. The Hamiltonian
/// must commute with the sector (electronic Hamiltonians do); the Krylov
/// space is seeded inside the sector and re-projected each iteration to
/// suppress numerical drift.
pub fn ground_energy_sector(h: &PauliOp, sector: Sector, config: LanczosConfig) -> Result<f64> {
    if !h.is_hermitian(1e-9) {
        return Err(Error::Invalid(
            "Lanczos requires a Hermitian operator".into(),
        ));
    }
    let dim = 1usize << h.n_qubits();
    let mut state = config.seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    };
    let project = |v: &mut Vec<C64>| {
        for (i, x) in v.iter_mut().enumerate() {
            if !sector.contains(i as u64) {
                *x = C64::default();
            }
        }
    };
    let mut v: Vec<C64> = (0..dim).map(|_| C64::new(next(), next())).collect();
    project(&mut v);
    let n0 = norm(&v);
    if n0 < 1e-12 {
        return Err(Error::Invalid("sector is empty for this register".into()));
    }
    for x in v.iter_mut() {
        *x = *x * (1.0 / n0);
    }

    let mut basis: Vec<Vec<C64>> = vec![v];
    let mut alphas: Vec<f64> = Vec::new();
    let mut betas: Vec<f64> = Vec::new();
    let mut prev_eig = f64::INFINITY;
    for k in 0..config.max_dim.min(dim) {
        let mut w = nwq_pauli::apply::apply_op(h, &basis[k])?;
        project(&mut w);
        let alpha = dot(&basis[k], &w).re;
        alphas.push(alpha);
        axpy(&mut w, C64::real(-alpha), &basis[k]);
        if k > 0 {
            axpy(&mut w, C64::real(-betas[k - 1]), &basis[k - 1]);
        }
        for prev in &basis {
            let overlap = dot(prev, &w);
            if overlap.norm() > 0.0 {
                axpy(&mut w, -overlap, prev);
            }
        }
        let eig = tridiag_smallest_eig(&alphas, &betas);
        if (prev_eig - eig).abs() < config.tol {
            return Ok(eig);
        }
        prev_eig = eig;
        let beta = norm(&w);
        if beta < 1e-13 {
            return Ok(eig);
        }
        betas.push(beta);
        for x in w.iter_mut() {
            *x = *x * (1.0 / beta);
        }
        basis.push(w);
    }
    Ok(prev_eig)
}

/// Sector-restricted ground energy with default configuration.
pub fn ground_energy_sector_default(h: &PauliOp, sector: Sector) -> Result<f64> {
    ground_energy_sector(h, sector, LanczosConfig::default())
}

/// The `k` lowest *distinct* eigenvalues of a Hermitian Pauli operator by
/// Lanczos with full reorthogonalization (reference spectrum for
/// excited-state methods like VQD).
///
/// Single-vector Lanczos cannot resolve degeneracy: each degenerate level
/// contributes one Krylov direction, so multiplicities are not reported
/// (VQD itself, by contrast, does find degenerate partners through
/// deflation). Errors if the Krylov space holds fewer than `k` distinct
/// levels.
pub fn lowest_eigenvalues(h: &PauliOp, k: usize, config: LanczosConfig) -> Result<Vec<f64>> {
    if !h.is_hermitian(1e-9) {
        return Err(Error::Invalid(
            "Lanczos requires a Hermitian operator".into(),
        ));
    }
    let dim = 1usize << h.n_qubits();
    if k == 0 {
        return Ok(Vec::new());
    }
    if k > dim {
        return Err(Error::DimensionMismatch {
            expected: dim,
            got: k,
        });
    }
    let mut state = config.seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    };
    let mut v: Vec<C64> = (0..dim).map(|_| C64::new(next(), next())).collect();
    let n0 = norm(&v);
    for x in v.iter_mut() {
        *x = *x * (1.0 / n0);
    }
    let mut basis = vec![v];
    let mut alphas: Vec<f64> = Vec::new();
    let mut betas: Vec<f64> = Vec::new();
    let mut prev: Vec<f64> = vec![f64::INFINITY; k];
    for step in 0..config.max_dim.min(dim) {
        let mut w = nwq_pauli::apply::apply_op(h, &basis[step])?;
        let alpha = dot(&basis[step], &w).re;
        alphas.push(alpha);
        axpy(&mut w, C64::real(-alpha), &basis[step]);
        if step > 0 {
            axpy(&mut w, C64::real(-betas[step - 1]), &basis[step - 1]);
        }
        for prev_v in &basis {
            let overlap = dot(prev_v, &w);
            if overlap.norm() > 0.0 {
                axpy(&mut w, -overlap, prev_v);
            }
        }
        if alphas.len() >= k {
            let current: Vec<f64> = (0..k)
                .map(|j| tridiag_kth_eig(&alphas, &betas, j))
                .collect();
            let converged = current
                .iter()
                .zip(&prev)
                .all(|(c, p)| (c - p).abs() < config.tol);
            if converged {
                return Ok(current);
            }
            prev = current;
        }
        let beta = norm(&w);
        if beta < 1e-13 {
            break;
        }
        betas.push(beta);
        for x in w.iter_mut() {
            *x = *x * (1.0 / beta);
        }
        basis.push(w);
    }
    if alphas.len() < k {
        return Err(Error::Numerical(
            "Krylov space smaller than requested k".into(),
        ));
    }
    Ok((0..k)
        .map(|j| tridiag_kth_eig(&alphas, &betas, j))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwq_pauli::matrix::dense_ground_state;

    #[test]
    fn toy_hamiltonian_ground_energy() {
        let h = PauliOp::parse("1.0 ZZ + 1.0 XX").unwrap();
        let e = ground_energy_default(&h).unwrap();
        assert!((e + 2.0).abs() < 1e-9, "{e}");
    }

    #[test]
    fn single_qubit_field() {
        let h = PauliOp::parse("1.0 X").unwrap();
        assert!((ground_energy_default(&h).unwrap() + 1.0).abs() < 1e-10);
        let h = PauliOp::parse("0.5 Z").unwrap();
        assert!((ground_energy_default(&h).unwrap() + 0.5).abs() < 1e-10);
    }

    #[test]
    fn matches_dense_power_iteration() {
        let h = PauliOp::parse("0.7 XY + 0.4 ZI + 0.3 IZ + 0.2 YY + 0.1 XX").unwrap();
        let (e_dense, _) = dense_ground_state(&h, 3000);
        let e_lanczos = ground_energy_default(&h).unwrap();
        assert!(
            (e_dense - e_lanczos).abs() < 1e-6,
            "{e_dense} vs {e_lanczos}"
        );
    }

    #[test]
    fn h2_fci_energy() {
        let m = nwq_chem::molecules::h2_sto3g();
        let h = m.to_qubit_hamiltonian().unwrap();
        let e = ground_energy_default(&h).unwrap();
        assert!((e + 1.1373).abs() < 2e-3, "{e}");
    }

    #[test]
    fn transverse_field_ising_known_energy() {
        // H = −(Z0Z1 + Z1Z2) − g(X0+X1+X2), g = 1: small chain, compare
        // against dense reference.
        let h = PauliOp::parse("-1.0 ZZI - 1.0 IZZ - 1.0 XII - 1.0 IXI - 1.0 IIX").unwrap();
        let (e_dense, _) = dense_ground_state(&h, 3000);
        let e = ground_energy_default(&h).unwrap();
        assert!((e - e_dense).abs() < 1e-7);
    }

    #[test]
    fn rejects_non_hermitian() {
        let h = PauliOp::single(nwq_common::C_I, nwq_pauli::PauliString::parse("X").unwrap());
        assert!(ground_energy_default(&h).is_err());
    }

    #[test]
    fn zero_operator_energy_zero() {
        let h = PauliOp::zero(3);
        assert_eq!(ground_energy_default(&h).unwrap(), 0.0);
    }

    #[test]
    fn degenerate_spectrum_handled() {
        // H = Z⊗I has eigenvalues ±1 each doubly degenerate.
        let h = PauliOp::parse("1.0 ZI").unwrap();
        assert!((ground_energy_default(&h).unwrap() + 1.0).abs() < 1e-10);
    }

    #[test]
    fn sector_restriction_basics() {
        // H = −Σ n_p (JW: n_p = (I−Z_p)/2): global ground fills every
        // orbital (E = −4); the 2-particle sector ground is −2.
        let mut f = nwq_chem::fermion::FermionOp::zero();
        for p in 0..4 {
            f.add_assign(nwq_chem::fermion::FermionOp::one_body(-1.0, p, p));
        }
        let h = nwq_chem::jw::jordan_wigner(&f, 4).unwrap();
        let global = ground_energy_default(&h).unwrap();
        assert!((global + 4.0).abs() < 1e-9);
        let sector = ground_energy_sector_default(&h, Sector::Particles(2)).unwrap();
        assert!((sector + 2.0).abs() < 1e-9);
        // Spin-resolved: one α + one β — orbitals 0 (α) and 1 (β).
        let spin = ground_energy_sector_default(
            &h,
            Sector::Spin {
                n_alpha: 1,
                n_beta: 1,
            },
        )
        .unwrap();
        assert!((spin + 2.0).abs() < 1e-9);
    }

    #[test]
    fn sector_membership_masks() {
        let s = Sector::Spin {
            n_alpha: 2,
            n_beta: 1,
        };
        // Qubits 0, 2 are α; qubit 1 is β.
        assert!(s.contains(0b0111));
        assert!(!s.contains(0b1110));
        assert!(Sector::Particles(3).contains(0b0111));
        assert!(!Sector::Particles(3).contains(0b0011));
        let cs = Sector::closed_shell(4);
        assert_eq!(
            cs,
            Sector::Spin {
                n_alpha: 2,
                n_beta: 2
            }
        );
    }

    #[test]
    fn empty_sector_rejected() {
        let h = PauliOp::parse("1.0 ZZ").unwrap();
        assert!(ground_energy_sector_default(&h, Sector::Particles(5)).is_err());
    }

    #[test]
    fn sector_energy_at_least_global() {
        let m = nwq_chem::molecules::water_model(3, 4);
        let h = m.to_qubit_hamiltonian().unwrap();
        let global = ground_energy_default(&h).unwrap();
        let sector = ground_energy_sector_default(&h, Sector::closed_shell(4)).unwrap();
        assert!(sector >= global - 1e-9, "sector {sector} < global {global}");
    }

    #[test]
    fn twelve_qubit_water_model_runs() {
        // The Fig 5 reference computation: must converge in reasonable time.
        let m = nwq_chem::molecules::water_fig5();
        let h = m.to_qubit_hamiltonian().unwrap();
        let e = ground_energy_default(&h).unwrap();
        // Variational sanity: at or below the HF energy.
        assert!(
            e <= m.hf_total_energy() + 1e-9,
            "E0 {e} vs HF {}",
            m.hf_total_energy()
        );
    }
}
