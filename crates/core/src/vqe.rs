//! The VQE driver — the classical–quantum loop of paper §3.1.

use crate::backend::{Backend, GradientBackend};
use nwq_circuit::Circuit;
use nwq_common::Result;
use nwq_opt::{GradOptimizer, Optimizer};
use nwq_pauli::PauliOp;
use nwq_telemetry::JsonValue;

/// A VQE problem instance: observable plus parameterized ansatz.
#[derive(Clone, Debug)]
pub struct VqeProblem {
    /// The Hermitian observable whose ground energy is sought.
    pub hamiltonian: PauliOp,
    /// The parameterized state-preparation circuit.
    pub ansatz: Circuit,
}

/// Outcome of a VQE run.
#[derive(Clone, Debug)]
pub struct VqeResult {
    /// Minimized energy.
    pub energy: f64,
    /// Optimal parameters.
    pub params: Vec<f64>,
    /// Energy evaluations consumed.
    pub evaluations: usize,
    /// Whether the optimizer reported convergence.
    pub converged: bool,
    /// Best-so-far energy after each evaluation (monotone non-increasing).
    pub history: Vec<f64>,
}

/// How the gradient-driven VQE drivers obtain `∂E/∂θ`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GradSource {
    /// Analytic adjoint differentiation: the full gradient from one
    /// forward sweep, one `H|ψ⟩` application, and one backward
    /// inverse-replay — about four statevector-evolution equivalents
    /// regardless of the parameter count. Requires a
    /// [`GradientBackend`].
    Adjoint,
    /// Two-term shift rule `∂E/∂θ_j = [E(θ+s·e_j) − E(θ−s·e_j)] / denom`,
    /// evaluated as one walker-batched sweep of all `2·n` probes. Exact
    /// only when the shift matches the generator spectrum — see the
    /// constructors.
    ParameterShift {
        /// Per-parameter shift `s`.
        shift: f64,
        /// Divisor applied to the energy difference.
        denom: f64,
    },
    /// Central finite differences with the given step (a fallback for
    /// parameters with no known shift rule).
    FiniteDifference(f64),
}

impl GradSource {
    /// The π/2 shift rule, exact for rotation generators with eigenvalues
    /// ±1 (hardware-efficient RX/RY/RZ layers). **Silently returns zero**
    /// for π-periodic fermionic excitation parameters — use
    /// [`GradSource::shift_excitations`] for UCCSD-style ansätze.
    pub fn shift_rotations() -> Self {
        GradSource::ParameterShift {
            shift: std::f64::consts::FRAC_PI_2,
            denom: 2.0,
        }
    }

    /// The π/4 shift rule, exact for fermionic single/double excitation
    /// generators (eigenvalues {0, ±i}, π-periodic energy) — the UCCSD
    /// case.
    pub fn shift_excitations() -> Self {
        GradSource::ParameterShift {
            shift: std::f64::consts::FRAC_PI_4,
            denom: 1.0,
        }
    }

    /// Stable identifier used in checkpoints and reports.
    pub fn name(&self) -> &'static str {
        match self {
            GradSource::Adjoint => "adjoint",
            GradSource::ParameterShift { .. } => "parameter-shift",
            GradSource::FiniteDifference(_) => "finite-difference",
        }
    }

    /// Cost of one fused value-and-gradient evaluation in
    /// energy-evaluation equivalents.
    pub(crate) fn cost(&self, n_params: usize) -> usize {
        match self {
            GradSource::Adjoint => 4,
            _ => 2 * n_params + 1,
        }
    }

    /// Checkpoint-fingerprint encoding: resuming is only sound when the
    /// gradients are computed the same way.
    pub(crate) fn fingerprint_json(&self) -> JsonValue {
        let mut fields = vec![("name".into(), JsonValue::Str(self.name().into()))];
        match *self {
            GradSource::Adjoint => {}
            GradSource::ParameterShift { shift, denom } => {
                fields.push(("shift".into(), JsonValue::Float(shift)));
                fields.push(("denom".into(), JsonValue::Float(denom)));
            }
            GradSource::FiniteDifference(eps) => {
                fields.push(("eps".into(), JsonValue::Float(eps)));
            }
        }
        JsonValue::Object(fields)
    }
}

/// Runs VQE: minimizes `⟨ψ(θ)|H|ψ(θ)⟩` over θ with the given backend and
/// optimizer, starting from `x0` (pass zeros for a HF start).
///
/// Backend failures abort the run promptly (after the default transient
/// retry budget) instead of silently poisoning the optimizer with infinite
/// objective values; see [`crate::resilience::run_vqe_with`] for
/// checkpointing and custom retry policies.
pub fn run_vqe(
    problem: &VqeProblem,
    backend: &mut dyn Backend,
    optimizer: &mut dyn Optimizer,
    x0: &[f64],
    max_evals: usize,
) -> Result<VqeResult> {
    crate::resilience::run_vqe_with(
        problem,
        backend,
        optimizer,
        x0,
        max_evals,
        &crate::resilience::ResilienceOptions::default(),
    )
}

/// Runs VQE driven by gradients: the optimizer consumes fused
/// energy-and-gradient evaluations whose cost (in energy-evaluation
/// equivalents, counted against `max_evals`) depends on `source` —
/// ≈ 4 per gradient for [`GradSource::Adjoint`] independent of the
/// parameter count, `2·n + 1` for the shift/finite-difference rules.
///
/// See [`crate::resilience::run_vqe_grad_with`] for checkpointing and
/// custom retry policies.
pub fn run_vqe_grad(
    problem: &VqeProblem,
    backend: &mut dyn GradientBackend,
    optimizer: &mut dyn GradOptimizer,
    source: GradSource,
    x0: &[f64],
    max_evals: usize,
) -> Result<VqeResult> {
    crate::resilience::run_vqe_grad_with(
        problem,
        backend,
        optimizer,
        source,
        x0,
        max_evals,
        &crate::resilience::ResilienceOptions::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{DirectBackend, SamplingBackend};
    use crate::exact::ground_energy_default;
    use nwq_chem::molecules::h2_sto3g;
    use nwq_chem::uccsd::uccsd_ansatz;
    use nwq_circuit::ParamExpr;
    use nwq_opt::{NelderMead, Spsa};

    fn toy_problem() -> VqeProblem {
        // H = ZZ + XX with RY/CX ansatz reaches the Bell ground state
        // (E = −2) at θ = ±π/2 … entangler structure: use two params.
        let mut ansatz = Circuit::new(2);
        ansatz
            .ry(0, ParamExpr::var(0))
            .cx(0, 1)
            .ry(1, ParamExpr::var(1));
        VqeProblem {
            hamiltonian: PauliOp::parse("1.0 ZZ + 1.0 XX").unwrap(),
            ansatz,
        }
    }

    #[test]
    fn toy_vqe_reaches_ground_state() {
        let problem = toy_problem();
        let exact = ground_energy_default(&problem.hamiltonian).unwrap();
        let mut backend = DirectBackend::new();
        let mut opt = NelderMead::default();
        // Start in the basin of the global minimum (θ = (π/2, π)); the
        // landscape also has an E = 0 stationary region that traps a
        // simplex started near the origin.
        let r = run_vqe(&problem, &mut backend, &mut opt, &[1.0, 2.5], 2000).unwrap();
        assert!((r.energy - exact).abs() < 1e-5, "{} vs {exact}", r.energy);
        assert!(r.energy >= exact - 1e-9, "variational bound violated");
    }

    #[test]
    fn h2_uccsd_vqe_hits_fci() {
        let m = h2_sto3g();
        let h = m.to_qubit_hamiltonian().unwrap();
        let ansatz = uccsd_ansatz(4, 2).unwrap();
        let exact = ground_energy_default(&h).unwrap();
        let problem = VqeProblem {
            hamiltonian: h,
            ansatz,
        };
        let mut backend = DirectBackend::new();
        let mut opt = NelderMead::for_vqe();
        let x0 = vec![0.0; problem.ansatz.n_params()];
        let r = run_vqe(&problem, &mut backend, &mut opt, &x0, 4000).unwrap();
        // Chemical accuracy vs FCI.
        assert!(
            (r.energy - exact).abs() < 1.6e-3,
            "VQE {} vs FCI {exact}",
            r.energy
        );
        // And below HF (correlation captured).
        assert!(r.energy < m.hf_total_energy() - 1e-4);
    }

    #[test]
    fn history_is_monotone_best_so_far() {
        let problem = toy_problem();
        let mut backend = DirectBackend::new();
        let mut opt = NelderMead::default();
        let r = run_vqe(&problem, &mut backend, &mut opt, &[0.9, 0.4], 300).unwrap();
        for w in r.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
        assert_eq!(r.history.len(), r.evaluations);
    }

    #[test]
    fn spsa_with_sampling_backend_improves_energy() {
        let problem = toy_problem();
        let mut backend = SamplingBackend::new(4000, 5);
        let start = {
            let mut b = DirectBackend::new();
            b.energy(&problem.ansatz, &[0.9, 0.4], &problem.hamiltonian)
                .unwrap()
        };
        let mut opt = Spsa {
            a: 0.3,
            ..Default::default()
        };
        let r = run_vqe(&problem, &mut backend, &mut opt, &[0.9, 0.4], 600).unwrap();
        // Check true (noiseless) energy at the found parameters improved.
        let mut b = DirectBackend::new();
        let true_e = b
            .energy(&problem.ansatz, &r.params, &problem.hamiltonian)
            .unwrap();
        assert!(true_e < start, "{true_e} !< {start}");
    }

    #[test]
    fn parameter_count_validated() {
        let problem = toy_problem();
        let mut backend = DirectBackend::new();
        let mut opt = NelderMead::default();
        assert!(run_vqe(&problem, &mut backend, &mut opt, &[0.1], 100).is_err());
    }

    #[test]
    fn non_hermitian_observable_rejected() {
        let mut problem = toy_problem();
        problem.hamiltonian = PauliOp::single(
            nwq_common::C_I,
            nwq_pauli::PauliString::parse("XY").unwrap(),
        );
        let mut backend = DirectBackend::new();
        let mut opt = NelderMead::default();
        assert!(run_vqe(&problem, &mut backend, &mut opt, &[0.0, 0.0], 100).is_err());
    }
}
