//! ADAPT-VQE (paper §5.3, Fig 5).
//!
//! Instead of a fixed UCCSD circuit, ADAPT-VQE grows the ansatz one
//! operator per iteration: screen the pool by the energy gradient
//! `|⟨ψ|[H, A_k]|ψ⟩|`, append `e^{θ A_k}` for the winner (one new layer
//! per iteration, as the paper notes), re-optimize all parameters, repeat
//! until the largest gradient or the energy improvement stalls.

use crate::backend::Backend;
use crate::resilience::{prepare_resume, snapshot_header, ResilienceOptions, ResilientEvaluator};
use nwq_chem::pool::OperatorPool;
use nwq_chem::uccsd::{append_generator_exponential, append_hf_state};
use nwq_circuit::Circuit;
use nwq_common::{Error, Result};
use nwq_opt::Optimizer;
use nwq_pauli::PauliOp;
use nwq_statevec::executor::simulate_plan;
use nwq_telemetry::JsonValue;

/// ADAPT-VQE configuration.
#[derive(Clone, Debug)]
pub struct AdaptConfig {
    /// Stop after this many growth iterations.
    pub max_iterations: usize,
    /// Stop when the largest pool gradient magnitude falls below this.
    pub grad_tol: f64,
    /// Inner-loop optimizer evaluation budget per iteration.
    pub inner_max_evals: usize,
    /// Optional energy target: stop once `E − target ≤ accuracy`.
    pub target_energy: Option<f64>,
    /// Accuracy threshold used with `target_energy` (1 mHa = chemical
    /// accuracy in the paper's Fig 5).
    pub accuracy: f64,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig {
            max_iterations: 30,
            grad_tol: 1e-4,
            inner_max_evals: 3000,
            target_energy: None,
            accuracy: 1e-3,
        }
    }
}

/// One ADAPT iteration record.
#[derive(Clone, Debug)]
pub struct AdaptIteration {
    /// Name of the operator appended this iteration.
    pub operator: String,
    /// Largest pool gradient magnitude at selection time.
    pub max_gradient: f64,
    /// Optimized energy after appending.
    pub energy: f64,
    /// Ansatz gate count after appending.
    pub ansatz_gates: usize,
}

/// Outcome of an ADAPT-VQE run.
#[derive(Clone, Debug)]
pub struct AdaptResult {
    /// Final energy.
    pub energy: f64,
    /// Final parameters (one per appended operator).
    pub params: Vec<f64>,
    /// The grown ansatz circuit.
    pub ansatz: Circuit,
    /// Per-iteration records (Fig 5's series).
    pub iterations: Vec<AdaptIteration>,
    /// Why the loop stopped.
    pub stop_reason: StopReason,
    /// Successful backend energy evaluations across the whole run
    /// (initial HF energy plus every inner-loop evaluation).
    pub total_evaluations: usize,
}

/// Why ADAPT-VQE terminated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// Pool gradients all below tolerance.
    GradientConverged,
    /// Reached the configured accuracy vs the target energy.
    ReachedAccuracy,
    /// Exhausted `max_iterations`.
    IterationLimit,
}

/// Runs ADAPT-VQE for `hamiltonian` with the given pool, starting from the
/// Hartree–Fock determinant of `n_electrons` electrons.
pub fn run_adapt_vqe(
    hamiltonian: &PauliOp,
    pool: &OperatorPool,
    n_electrons: usize,
    backend: &mut dyn Backend,
    optimizer: &mut dyn Optimizer,
    config: &AdaptConfig,
) -> Result<AdaptResult> {
    run_adapt_vqe_with(
        hamiltonian,
        pool,
        n_electrons,
        backend,
        optimizer,
        config,
        &ResilienceOptions::default(),
    )
}

/// [`run_adapt_vqe`] with resilience: checkpoint/restart, bounded retries
/// of transient failures, and prompt abort (wrapped in
/// [`Error::Interrupted`]) once the retry budget is exhausted.
///
/// Restart replays the checkpoint's successful-energy log from the start
/// of the run; because pool screening and the inner optimizers are
/// deterministic given that log, the resumed trajectory — operator
/// selections included — is bitwise identical to an uninterrupted run.
pub fn run_adapt_vqe_with(
    hamiltonian: &PauliOp,
    pool: &OperatorPool,
    n_electrons: usize,
    backend: &mut dyn Backend,
    optimizer: &mut dyn Optimizer,
    config: &AdaptConfig,
    opts: &ResilienceOptions,
) -> Result<AdaptResult> {
    if pool.is_empty() {
        return Err(Error::Invalid("ADAPT pool is empty".into()));
    }
    let _span = nwq_telemetry::span!("adapt.run");
    let fingerprint = adapt_fingerprint(hamiltonian, pool, n_electrons, config);
    let resumed_log = prepare_resume(opts, "adapt", &fingerprint, optimizer)?;
    let header = snapshot_header("adapt", fingerprint, optimizer);
    let mut ev = ResilientEvaluator::new(backend, opts, header, resumed_log);
    match adapt_loop(hamiltonian, pool, n_electrons, optimizer, config, &mut ev) {
        Ok((energy, params, ansatz, iterations, stop_reason)) => {
            ev.checkpoint_final()?;
            Ok(AdaptResult {
                energy,
                params,
                ansatz,
                iterations,
                stop_reason,
                total_evaluations: ev.total_evals(),
            })
        }
        Err(cause) => Err(ev.interrupt(cause)),
    }
}

fn adapt_fingerprint(
    hamiltonian: &PauliOp,
    pool: &OperatorPool,
    n_electrons: usize,
    config: &AdaptConfig,
) -> JsonValue {
    JsonValue::Object(vec![
        (
            "n_qubits".into(),
            JsonValue::Int(hamiltonian.n_qubits() as u64),
        ),
        (
            "h_terms".into(),
            JsonValue::Int(hamiltonian.terms().len() as u64),
        ),
        ("pool_size".into(), JsonValue::Int(pool.ops.len() as u64)),
        ("n_electrons".into(), JsonValue::Int(n_electrons as u64)),
        (
            "max_iterations".into(),
            JsonValue::Int(config.max_iterations as u64),
        ),
        ("grad_tol".into(), JsonValue::Float(config.grad_tol)),
        (
            "inner_max_evals".into(),
            JsonValue::Int(config.inner_max_evals as u64),
        ),
        ("accuracy".into(), JsonValue::Float(config.accuracy)),
        (
            "target_energy".into(),
            config
                .target_energy
                .map_or(JsonValue::Null, JsonValue::Float),
        ),
    ])
}

type AdaptLoopOutput = (f64, Vec<f64>, Circuit, Vec<AdaptIteration>, StopReason);

fn adapt_loop(
    hamiltonian: &PauliOp,
    pool: &OperatorPool,
    n_electrons: usize,
    optimizer: &mut dyn Optimizer,
    config: &AdaptConfig,
    ev: &mut ResilientEvaluator<'_>,
) -> Result<AdaptLoopOutput> {
    let n_qubits = hamiltonian.n_qubits();
    let mut ansatz = Circuit::new(n_qubits);
    append_hf_state(&mut ansatz, n_electrons)?;
    let mut params: Vec<f64> = Vec::new();
    let mut chosen: Vec<String> = Vec::new();
    let mut iterations: Vec<AdaptIteration> = Vec::new();
    let mut energy = ev.eval(&ansatz, &params, hamiltonian)?;
    let mut stop_reason = StopReason::IterationLimit;

    for _iter in 0..config.max_iterations {
        let iter_start = std::time::Instant::now();
        // Screening: gradients need the current state. The shared-φ
        // analytic path applies H once for the whole pool instead of
        // forming one H·A commutator per candidate.
        let state = simulate_plan(&ansatz, &params)?;
        let grads = pool.gradients_via_phi(hamiltonian, state.amplitudes())?;
        let (best_k, best_g) = grads
            .iter()
            .enumerate()
            .map(|(k, g)| (k, g.abs()))
            // total_cmp keeps screening panic-free if a corrupted state
            // produces NaN gradients.
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty pool");
        if best_g < config.grad_tol {
            stop_reason = StopReason::GradientConverged;
            break;
        }
        // Grow the ansatz by one layer.
        append_generator_exponential(&mut ansatz, &pool.ops[best_k].generator, params.len())?;
        chosen.push(pool.ops[best_k].name.clone());
        ev.set_extra(
            "chosen_operators",
            JsonValue::Array(chosen.iter().cloned().map(JsonValue::Str).collect()),
        );
        params.push(0.0);

        // Re-optimize all parameters (warm start from previous optimum).
        let r = optimizer.try_minimize(
            &mut |theta| ev.eval(&ansatz, theta, hamiltonian),
            &params,
            config.inner_max_evals,
        )?;
        params = r.params;
        energy = r.value;
        iterations.push(AdaptIteration {
            operator: pool.ops[best_k].name.clone(),
            max_gradient: best_g,
            energy,
            ansatz_gates: ansatz.len(),
        });
        if nwq_telemetry::enabled() {
            nwq_telemetry::record_iteration(nwq_telemetry::IterationRecord {
                iteration: iterations.len() - 1,
                energy,
                grad_norm: Some(best_g),
                evaluations: r.evals as u64,
                gates: ansatz.len() as u64,
                wall_ms: iter_start.elapsed().as_secs_f64() * 1e3,
                label: Some(pool.ops[best_k].name.clone()),
            });
        }
        if let Some(target) = config.target_energy {
            if energy - target <= config.accuracy {
                stop_reason = StopReason::ReachedAccuracy;
                break;
            }
        }
    }
    Ok((energy, params, ansatz, iterations, stop_reason))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::DirectBackend;
    use crate::exact::ground_energy_default;
    use nwq_chem::molecules::h2_sto3g;
    use nwq_opt::NelderMead;

    #[test]
    fn h2_adapt_reaches_chemical_accuracy() {
        let m = h2_sto3g();
        let h = m.to_qubit_hamiltonian().unwrap();
        let exact = ground_energy_default(&h).unwrap();
        let pool = OperatorPool::singles_doubles(4, 2).unwrap();
        let mut backend = DirectBackend::new();
        let mut opt = NelderMead::for_vqe();
        let config = AdaptConfig {
            target_energy: Some(exact),
            max_iterations: 6,
            ..Default::default()
        };
        let r = run_adapt_vqe(&h, &pool, 2, &mut backend, &mut opt, &config).unwrap();
        assert!(
            r.energy - exact <= 1e-3,
            "ADAPT {} vs exact {exact}",
            r.energy
        );
        assert_eq!(r.stop_reason, StopReason::ReachedAccuracy);
        // H2's dominant operator is the double excitation; it should be
        // picked first (Brillouin: singles have zero gradient at HF).
        assert_eq!(r.iterations[0].operator, "0,1->2,3");
    }

    #[test]
    fn energies_monotone_non_increasing() {
        let m = h2_sto3g();
        let h = m.to_qubit_hamiltonian().unwrap();
        let pool = OperatorPool::singles_doubles(4, 2).unwrap();
        let mut backend = DirectBackend::new();
        let mut opt = NelderMead::for_vqe();
        let config = AdaptConfig {
            max_iterations: 3,
            ..Default::default()
        };
        let r = run_adapt_vqe(&h, &pool, 2, &mut backend, &mut opt, &config).unwrap();
        let mut prev = f64::INFINITY;
        for it in &r.iterations {
            assert!(it.energy <= prev + 1e-9);
            prev = it.energy;
        }
    }

    #[test]
    fn each_iteration_adds_one_layer() {
        // Paper: "each adaptive iteration increases the ansatz depth by
        // only 1 layer" — gates grow monotonically, one operator at a time.
        let m = h2_sto3g();
        let h = m.to_qubit_hamiltonian().unwrap();
        let pool = OperatorPool::singles_doubles(4, 2).unwrap();
        let mut backend = DirectBackend::new();
        let mut opt = NelderMead::for_vqe();
        let config = AdaptConfig {
            max_iterations: 3,
            grad_tol: 1e-8,
            ..Default::default()
        };
        let r = run_adapt_vqe(&h, &pool, 2, &mut backend, &mut opt, &config).unwrap();
        assert_eq!(r.params.len(), r.iterations.len());
        let mut prev_gates = 0;
        for it in &r.iterations {
            assert!(it.ansatz_gates > prev_gates);
            prev_gates = it.ansatz_gates;
        }
    }

    #[test]
    fn gradient_convergence_stops_loop() {
        // A Hamiltonian whose ground state *is* HF: all gradients vanish.
        let h = PauliOp::parse("-1.0 ZIII - 1.0 IZII + 1.0 IIZI + 1.0 IIIZ").unwrap();
        let pool = OperatorPool::singles_doubles(4, 2).unwrap();
        let mut backend = DirectBackend::new();
        let mut opt = NelderMead::for_vqe();
        let r = run_adapt_vqe(
            &h,
            &pool,
            2,
            &mut backend,
            &mut opt,
            &AdaptConfig::default(),
        )
        .unwrap();
        assert_eq!(r.stop_reason, StopReason::GradientConverged);
        assert!(r.iterations.is_empty());
        assert!((r.energy + 4.0).abs() < 1e-10);
    }

    #[test]
    fn adapt_kill_and_resume_is_bitwise_identical() {
        let m = h2_sto3g();
        let h = m.to_qubit_hamiltonian().unwrap();
        let pool = OperatorPool::singles_doubles(4, 2).unwrap();
        let config = AdaptConfig {
            max_iterations: 3,
            grad_tol: 1e-8,
            inner_max_evals: 400,
            ..Default::default()
        };
        let clean = {
            let mut backend = DirectBackend::new();
            let mut opt = NelderMead::for_vqe();
            run_adapt_vqe(&h, &pool, 2, &mut backend, &mut opt, &config).unwrap()
        };
        let path = std::env::temp_dir().join(format!(
            "nwq-resilience-{}-adapt-kill.json",
            std::process::id()
        ));
        {
            let mut backend = DirectBackend::new();
            let mut opt = NelderMead::for_vqe();
            let opts = crate::resilience::ResilienceOptions {
                checkpoint: Some(crate::resilience::CheckpointConfig::new(&path)),
                abort_after_evals: Some(clean.total_evaluations / 2),
                ..Default::default()
            };
            let err = run_adapt_vqe_with(&h, &pool, 2, &mut backend, &mut opt, &config, &opts)
                .unwrap_err();
            assert!(
                matches!(
                    err,
                    Error::Interrupted {
                        checkpoint: Some(_),
                        ..
                    }
                ),
                "{err}"
            );
        }
        let resumed = {
            let mut backend = DirectBackend::new();
            let mut opt = NelderMead::for_vqe();
            let opts = crate::resilience::ResilienceOptions {
                resume: Some(crate::resilience::ResumeState::load(&path).unwrap()),
                ..Default::default()
            };
            run_adapt_vqe_with(&h, &pool, 2, &mut backend, &mut opt, &config, &opts).unwrap()
        };
        assert_eq!(resumed.energy.to_bits(), clean.energy.to_bits());
        assert_eq!(resumed.total_evaluations, clean.total_evaluations);
        assert_eq!(resumed.iterations.len(), clean.iterations.len());
        for (a, b) in resumed.iterations.iter().zip(&clean.iterations) {
            assert_eq!(a.operator, b.operator);
            assert_eq!(a.energy.to_bits(), b.energy.to_bits());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn analytic_screening_matches_legacy_selection() {
        // The analytic shared-φ screening must reproduce the legacy
        // commutator-expectation loop on the committed H2 pool: same
        // winning operator (index 2, the "0,1->2,3" double excitation),
        // same sign, same magnitude to floating-point accuracy.
        let m = h2_sto3g();
        let h = m.to_qubit_hamiltonian().unwrap();
        let pool = OperatorPool::singles_doubles(4, 2).unwrap();
        let mut ansatz = Circuit::new(4);
        append_hf_state(&mut ansatz, 2).unwrap();
        let state = simulate_plan(&ansatz, &[]).unwrap();
        let legacy = pool.gradients(&h, state.amplitudes()).unwrap();
        let analytic = pool.gradients_via_phi(&h, state.amplitudes()).unwrap();
        assert_eq!(legacy.len(), analytic.len());
        for (l, a) in legacy.iter().zip(&analytic) {
            assert!((l - a).abs() < 1e-12, "{l} vs {a}");
            assert_eq!(l.signum(), a.signum());
        }
        let pick = |g: &[f64]| {
            g.iter()
                .enumerate()
                .max_by(|x, y| x.1.abs().total_cmp(&y.1.abs()))
                .map(|(k, _)| k)
                .unwrap()
        };
        assert_eq!(pick(&legacy), pick(&analytic));
        assert_eq!(pick(&analytic), 2);
        assert_eq!(pool.ops[2].name, "0,1->2,3");
    }

    #[test]
    fn empty_pool_rejected() {
        let h = PauliOp::parse("1.0 ZZ").unwrap();
        let pool = OperatorPool { ops: Vec::new() };
        let mut backend = DirectBackend::new();
        let mut opt = NelderMead::default();
        assert!(run_adapt_vqe(
            &h,
            &pool,
            1,
            &mut backend,
            &mut opt,
            &AdaptConfig::default()
        )
        .is_err());
    }
}
