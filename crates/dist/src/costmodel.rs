//! Interconnect cost model.
//!
//! Converts [`CommStats`](crate::comm::CommStats) and gate counts into a
//! modeled wall-clock time for an HPC system, using the classic
//! latency–bandwidth (α–β) model plus a per-amplitude compute rate. The
//! default parameters approximate a Perlmutter-like machine (Slingshot-11
//! NICs, A100-class node throughput); they are inputs to scaling *shape*
//! studies, not absolute-time claims.

use crate::comm::CommStats;

/// α–β communication model plus a flat compute rate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Per-message latency in seconds (α).
    pub latency_s: f64,
    /// Link bandwidth in bytes/second (1/β).
    pub bandwidth_bps: f64,
    /// Amplitude updates per second per rank (device throughput).
    pub updates_per_s: f64,
}

impl CostModel {
    /// Perlmutter-like defaults: ~2 µs MPI latency, ~25 GB/s effective
    /// per-NIC bandwidth, ~10^10 amplitude updates/s per GPU.
    pub fn perlmutter_like() -> Self {
        CostModel {
            latency_s: 2e-6,
            bandwidth_bps: 25e9,
            updates_per_s: 1e10,
        }
    }

    /// Modeled communication time for the given counters, assuming the
    /// per-rank exchanges of one gate proceed concurrently across rank
    /// pairs (so each gate pays one partition transfer, not `n_ranks`).
    ///
    /// The model consumes whatever planner produced the counters: feed
    /// it [`plan_communication`](crate::comm::plan_communication) (the
    /// θ-aware lean plan — elided diagonals, half-shard payloads, fused
    /// windows) and the smaller `bytes` shrink the β term directly, so
    /// halving the moved payload halves the bandwidth-bound share of the
    /// modeled time.
    pub fn comm_time_s(&self, stats: &CommStats, n_ranks: usize) -> f64 {
        if stats.messages == 0 {
            return 0.0;
        }
        // Per global gate, all pair exchanges happen in parallel; the
        // critical path is one message of the average size per gate.
        let per_gate_bytes = stats.avg_message_bytes();
        let gates = stats.global_gates as f64;
        let concurrent_msgs = (stats.messages as f64 / gates / n_ranks as f64).max(1.0);
        gates * concurrent_msgs * (self.latency_s + per_gate_bytes / self.bandwidth_bps)
    }

    /// Modeled compute time: every gate updates all local amplitudes.
    pub fn compute_time_s(&self, total_gates: u64, n_qubits: usize, n_ranks: usize) -> f64 {
        let local_amps = (1u128 << n_qubits) as f64 / n_ranks as f64;
        total_gates as f64 * local_amps / self.updates_per_s
    }

    /// Total modeled time.
    pub fn total_time_s(
        &self,
        stats: &CommStats,
        total_gates: u64,
        n_qubits: usize,
        n_ranks: usize,
    ) -> f64 {
        self.comm_time_s(stats, n_ranks) + self.compute_time_s(total_gates, n_qubits, n_ranks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(messages: u64, bytes: u64, global: u64, local: u64) -> CommStats {
        CommStats {
            messages,
            bytes,
            global_gates: global,
            local_gates: local,
            ..CommStats::default()
        }
    }

    #[test]
    fn zero_comm_zero_time() {
        let m = CostModel::perlmutter_like();
        assert_eq!(m.comm_time_s(&stats(0, 0, 0, 10), 4), 0.0);
    }

    #[test]
    fn comm_time_scales_with_bytes() {
        let m = CostModel::perlmutter_like();
        let t_small = m.comm_time_s(&stats(4, 4 * 1024, 1, 0), 4);
        let t_big = m.comm_time_s(&stats(4, 4 * 1024 * 1024, 1, 0), 4);
        assert!(t_big > t_small);
    }

    #[test]
    fn half_shard_payloads_halve_bandwidth_bound_time() {
        // In the bandwidth-dominated regime, the lean planner's
        // half-shard payloads (same message count, half the bytes) must
        // halve the modeled comm time to within the latency term.
        let m = CostModel::perlmutter_like();
        let full_bytes = 4u64 * (16 << 20);
        let full = m.comm_time_s(&stats(4, full_bytes, 1, 0), 4);
        let half = m.comm_time_s(&stats(4, full_bytes / 2, 1, 0), 4);
        let alpha = m.latency_s;
        assert!(
            (half - full / 2.0).abs() <= alpha,
            "half-payload time {half} vs full/2 {}",
            full / 2.0
        );
        // And a fully elided (diagonal) schedule costs nothing at all.
        assert_eq!(
            m.comm_time_s(
                &CommStats {
                    exchanges_elided: 8,
                    bytes_saved: full_bytes,
                    global_gates: 2,
                    ..CommStats::default()
                },
                4
            ),
            0.0
        );
    }

    #[test]
    fn compute_time_halves_with_doubled_ranks() {
        let m = CostModel::perlmutter_like();
        let t2 = m.compute_time_s(100, 20, 2);
        let t4 = m.compute_time_s(100, 20, 4);
        assert!((t2 / t4 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn strong_scaling_crossover_exists() {
        // With a fixed problem, adding ranks cuts compute but adds
        // communication; beyond some rank count total time rises again —
        // the canonical distributed-statevector tradeoff.
        let m = CostModel::perlmutter_like();
        let n_qubits = 24;
        let total_gates = 10_000u64;
        let time_at = |n_ranks: usize| {
            let n_global = n_ranks.trailing_zeros() as usize;
            let part_bytes = 16u64 << (n_qubits - n_global);
            // Assume 30 % of gates touch a global qubit.
            let global = total_gates * 3 / 10;
            let msgs = global * 2 * (n_ranks as u64 / 2);
            let s = stats(msgs, msgs * part_bytes, global, total_gates - global);
            m.total_time_s(&s, total_gates, n_qubits, n_ranks)
        };
        let t1 = time_at(1);
        let t4 = time_at(4);
        assert!(t4 < t1, "scaling must help initially: {t4} !< {t1}");
    }
}
