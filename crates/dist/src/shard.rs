//! Real sharded execution: one OS worker thread per rank, true message
//! exchange on global-qubit gates.
//!
//! This is the executing backend behind [`crate::exec::run_distributed`].
//! Where [`crate::partition::DistStateVector`]'s own `apply_*` methods
//! *simulate* multi-rank execution by walking a single `Vec<Vec<C64>>`,
//! this module actually distributes the register: each rank's shard is
//! owned by its own thread, and a gate on a global qubit moves the
//! partner shard through a channel (the in-process analog of an MPI
//! sendrecv — same payload sizes, same message counts, same pairing).
//!
//! The execution is compiled first: the coordinator resolves every gate
//! matrix once, classifies it local/global against the PGAS layout, and
//! precomputes any injected faults so all workers replay one deterministic
//! step list. Workers then run lock-free — the only cross-thread traffic
//! is the amplitude payloads themselves.
//!
//! Bitwise parity with the single-node simulator is a hard invariant
//! (pinned by tests and proptests across 1/2/4/8 shards): the per-shard
//! apply paths in [`nwq_statevec::kernels`] mirror the single-node
//! kernels' arithmetic exactly, including the diagonal fast paths.

use crate::comm::CommStats;
use crate::faults::{FaultInjector, FaultSchedule};
use crate::partition::DistStateVector;
use crate::snapshot::SnapshotStore;
use nwq_circuit::{Circuit, Gate, GateMatrix};
use nwq_common::{Error, Mat2, Mat4, Result, C64, C_ONE, C_ZERO};
use nwq_statevec::kernels;
use nwq_statevec::{ExecPlan, PlanOp};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Options for [`run_sharded`].
#[derive(Clone, Copy, Debug)]
pub struct ShardOptions {
    /// Fuse runs of ≥ 2 consecutive rank-local gates through the compiled
    /// [`ExecPlan`] machinery (template cache + rebind). Fusion multiplies
    /// matrices, so the result is no longer *bitwise* identical to the
    /// per-gate path — the parity harness runs unfused; benches opt in.
    pub fuse_local: bool,
    /// Per-attempt receive deadline (milliseconds) on every pair-exchange.
    /// A partner that neither delivers nor disconnects within the deadline
    /// is retried with exponential backoff; after the retry budget the
    /// exchange fails instead of blocking forever.
    pub exchange_timeout_ms: u64,
    /// Bounded retry budget per exchange receive. Attempt `k` waits
    /// `exchange_timeout_ms << k`, so the defaults tolerate ~1 min of
    /// stall before declaring the partner lost.
    pub exchange_retries: u32,
    /// θ-aware lean exchange (the default): global gates with diagonal
    /// bound matrices apply as a local phase sweep (no exchange), block-
    /// structured gates send only the shard half the partner's pair
    /// kernel reads, and consecutive same-qubit exchanges separated only
    /// by global phases share one exchange through a fusion mirror.
    /// Disabling it restores the naive pattern — a full-shard exchange
    /// on every global gate — whose traffic equals
    /// [`crate::comm::plan_communication_naive`]; the *arithmetic* stays
    /// shape-aware in both modes, which is what keeps either mode bitwise
    /// identical to the single-node simulator.
    pub lean_exchange: bool,
}

impl Default for ShardOptions {
    fn default() -> Self {
        ShardOptions {
            fuse_local: false,
            exchange_timeout_ms: 2000,
            exchange_retries: 4,
            lean_exchange: true,
        }
    }
}

/// Receive-deadline policy every worker applies to every pair-exchange.
#[derive(Clone, Copy, Debug)]
struct ExchangeDeadline {
    timeout: Duration,
    retries: u32,
}

impl From<&ShardOptions> for ExchangeDeadline {
    fn from(opts: &ShardOptions) -> Self {
        ExchangeDeadline {
            timeout: Duration::from_millis(opts.exchange_timeout_ms.max(1)),
            retries: opts.exchange_retries,
        }
    }
}

/// One entry of the compiled, deterministic step list every worker replays.
#[derive(Clone, Debug)]
enum Step {
    /// Rank-local single-qubit gate.
    Local1(usize, Mat2),
    /// Rank-local two-qubit gate, original argument order (the kernel
    /// normalizes exactly like the single-node path).
    Local2(usize, usize, Mat4),
    /// Fused run of rank-local gates (only with
    /// [`ShardOptions::fuse_local`]).
    LocalFused(Arc<ExecPlan>),
    /// Single-qubit gate on global (rank-id) bit `gbit`: pair exchange.
    Global1 { gbit: usize, m: Mat2 },
    /// Two-qubit gate, global bit `gbit` is the matrix high bit, `lo` is
    /// rank-local: pair exchange.
    GlobalLocal { gbit: usize, lo: usize, m: Mat4 },
    /// Two-qubit gate on two global bits (`bhi` the matrix high bit):
    /// quad all-to-all exchange.
    GlobalGlobal { bhi: usize, blo: usize, m: Mat4 },
    /// Injected fault: overwrite one amplitude of one rank with NaN.
    Corrupt { rank: usize, index: usize },
    /// Injected fault: scale one rank's shard by the drift factor.
    Drift { rank: usize },
    /// Injected fault: the named rank dies (always the final step — the
    /// legacy injector aborted the run at the point the loss fired).
    Lose { rank: usize },
    /// Snapshot barrier: every rank deposits a bitwise copy of its shard
    /// as `version` of the consistent cut (resilient tapes only).
    Snapshot { version: usize },
}

/// Communication class of one tape step — a pure, deterministic function
/// of the step's bound matrix and the PGAS layout, shared verbatim by the
/// executing workers and the non-executing planner so "measured equals
/// planned" stays a structural identity (and so recovery replay reproduces
/// every elision decision bitwise).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum CommClass {
    /// Rank-local step (gates, faults, snapshot barriers): no exchange.
    Local,
    /// Global gate with a diagonal matrix: a local phase sweep, zero
    /// messages (each rank's bits select its diagonal entries).
    Phase,
    /// Global-local gate block-split on the *global* bit: each rank
    /// applies its own 2×2 sub-block to the local qubit, zero messages.
    LocalApply,
    /// Dense pair exchange across global bit `gbit`: full-shard payload.
    PairFull { gbit: usize },
    /// Pair exchange across `gbit` where the partner's kernel reads only
    /// the local-qubit-`lo` == `v` half of the shard: half payload.
    PairHalf { gbit: usize, lo: usize, v: usize },
    /// Global-global gate block-split on global bit `sel`: each rank's
    /// `sel` bit picks a 2×2 sub-block acting across global bit `xbit`.
    /// Identity sub-blocks are skipped, diagonal ones scale locally, and
    /// only the `ndense` dense sub-blocks pair-exchange (full payload).
    GlobalBlock {
        sel: usize,
        xbit: usize,
        ndense: u32,
    },
    /// Dense global-global gate: full quad all-to-all.
    Quad,
}

/// Per-step communication record: the class, the bound matrix's shape
/// (for `Two` steps), and the compile-time fusion-window flags.
#[derive(Clone, Copy, Debug)]
pub(crate) struct StepComm {
    pub(crate) class: CommClass,
    /// Shape of the step's prenormalized matrix (`Dense` placeholder for
    /// non-two-qubit steps).
    pub(crate) shape: kernels::Mat4Shape,
    /// Naive sends per rank for this step (1 pair / 3 quad / 0 local) —
    /// what the pre-lean executor would have sent.
    pub(crate) naive_sends: u8,
    /// This step reuses the fusion mirror established by an earlier
    /// exchange in its window instead of exchanging again.
    pub(crate) fused: bool,
    /// A later step in the window still needs the mirror: keep advancing
    /// the partner copy past this step.
    pub(crate) track: bool,
}

/// Classifies one step. The shape lattice comes from
/// [`kernels::mat4_shape`]; the class decides the exchange *pattern* only
/// — the executor picks arithmetic from the step + shape.
fn classify_step(step: &Step) -> StepComm {
    use kernels::{mat4_shape, Mat4Shape, SubKind};
    let comm = |class, shape, naive_sends| StepComm {
        class,
        shape,
        naive_sends,
        fused: false,
        track: false,
    };
    match step {
        Step::Local1(..)
        | Step::Local2(..)
        | Step::LocalFused(..)
        | Step::Corrupt { .. }
        | Step::Drift { .. }
        | Step::Lose { .. }
        | Step::Snapshot { .. } => comm(CommClass::Local, Mat4Shape::Dense, 0),
        Step::Global1 { gbit, m } => {
            if kernels::mat2_is_diagonal(m) {
                comm(CommClass::Phase, Mat4Shape::Dense, 1)
            } else {
                comm(CommClass::PairFull { gbit: *gbit }, Mat4Shape::Dense, 1)
            }
        }
        Step::GlobalLocal { gbit, lo, m } => {
            let shape = mat4_shape(m);
            let class = match shape {
                Mat4Shape::Diagonal => CommClass::Phase,
                Mat4Shape::BlockHi { .. } => CommClass::LocalApply,
                Mat4Shape::BlockLo { ka, kb, .. } => {
                    match (ka == SubKind::Dense, kb == SubKind::Dense) {
                        (true, false) => CommClass::PairHalf {
                            gbit: *gbit,
                            lo: *lo,
                            v: 0,
                        },
                        (false, true) => CommClass::PairHalf {
                            gbit: *gbit,
                            lo: *lo,
                            v: 1,
                        },
                        // Both dense needs the partner's both halves; both
                        // non-dense cannot occur (that matrix is diagonal,
                        // caught above) but the full exchange stays correct.
                        _ => CommClass::PairFull { gbit: *gbit },
                    }
                }
                Mat4Shape::Dense => CommClass::PairFull { gbit: *gbit },
            };
            comm(class, shape, 1)
        }
        Step::GlobalGlobal { bhi, blo, m } => {
            let shape = mat4_shape(m);
            let class = match shape {
                Mat4Shape::Diagonal => CommClass::Phase,
                Mat4Shape::BlockHi { ka, kb, .. } => CommClass::GlobalBlock {
                    sel: *bhi,
                    xbit: *blo,
                    ndense: (ka == SubKind::Dense) as u32 + (kb == SubKind::Dense) as u32,
                },
                Mat4Shape::BlockLo { ka, kb, .. } => CommClass::GlobalBlock {
                    sel: *blo,
                    xbit: *bhi,
                    ndense: (ka == SubKind::Dense) as u32 + (kb == SubKind::Dense) as u32,
                },
                Mat4Shape::Dense => CommClass::Quad,
            };
            comm(class, shape, 3)
        }
    }
}

/// Marks the exchange-fusion windows on a classified tape.
///
/// Legality rule: consecutive pair exchanges with the *identical* class
/// (`PairFull` on the same global bit; `PairHalf` on the same
/// `(gbit, lo, v)`) fuse iff every intervening step is a global phase
/// (`Phase`, which both partners mirror deterministically) or a snapshot
/// barrier (reads shards, never writes). Any other step — local gates,
/// `LocalApply`, other exchanges, injected faults — invalidates the
/// partner mirror, so it closes every window. At most one window is open
/// at a time, which is why the executor carries a single mirror slot.
fn compute_fusion(steps: &[Step], comm: &mut [StepComm]) {
    let mut open: Option<(usize, CommClass)> = None;
    for j in 0..comm.len() {
        match comm[j].class {
            CommClass::Phase => {}
            CommClass::Local if matches!(steps[j], Step::Snapshot { .. }) => {}
            CommClass::PairFull { .. } | CommClass::PairHalf { .. } => {
                if let Some((prev, class)) = open {
                    if class == comm[j].class {
                        comm[prev].track = true;
                        comm[j].fused = true;
                        open = Some((j, class));
                        continue;
                    }
                }
                open = Some((j, comm[j].class));
            }
            _ => open = None,
        }
    }
}

/// Classifies every step and marks fusion windows.
fn analyze_comm(steps: &[Step]) -> Vec<StepComm> {
    let mut comm: Vec<StepComm> = steps.iter().map(classify_step).collect();
    compute_fusion(steps, &mut comm);
    comm
}

/// Compiled execution: the shared step list, its communication plan, and
/// the gate accounting the planner predicts (`plan_communication` must
/// agree with what the workers measure; both are derived from the same
/// per-step classification).
struct Compiled {
    steps: Arc<Vec<Step>>,
    comm: Arc<Vec<StepComm>>,
    local_gates: u64,
    global_gates: u64,
}

fn validate_ranks(n_qubits: usize, n_ranks: usize) -> Result<usize> {
    if !n_ranks.is_power_of_two() {
        return Err(Error::Invalid(format!(
            "{n_ranks} ranks: must be a power of two"
        )));
    }
    let n_global = n_ranks.trailing_zeros() as usize;
    if n_global + 2 > n_qubits {
        return Err(Error::Invalid(format!(
            "{n_ranks} ranks leave fewer than 2 local qubits of a {n_qubits}-qubit register"
        )));
    }
    Ok(n_qubits - n_global)
}

/// Classifies and resolves one gate against the PGAS layout.
fn gate_step(gate: &Gate, params: &[f64], n_local: usize) -> Result<(Step, bool)> {
    let step = match gate.matrix(params)? {
        GateMatrix::One(q, m) => {
            if q < n_local {
                Step::Local1(q, m)
            } else {
                Step::Global1 {
                    gbit: q - n_local,
                    m,
                }
            }
        }
        GateMatrix::Two(a, b, m) => match (a < n_local, b < n_local) {
            (true, true) => Step::Local2(a, b, m),
            (false, true) => Step::GlobalLocal {
                gbit: a - n_local,
                lo: b,
                m,
            },
            (true, false) => Step::GlobalLocal {
                gbit: b - n_local,
                lo: a,
                m: m.swap_qubits(),
            },
            (false, false) => {
                // Normalize like the single-node kernel: numerically
                // higher qubit becomes the matrix high bit.
                let (hi, lo, m) = if a > b {
                    (a, b, m)
                } else {
                    (b, a, m.swap_qubits())
                };
                Step::GlobalGlobal {
                    bhi: hi - n_local,
                    blo: lo - n_local,
                    m,
                }
            }
        },
    };
    let global = matches!(
        step,
        Step::Global1 { .. } | Step::GlobalLocal { .. } | Step::GlobalGlobal { .. }
    );
    Ok((step, global))
}

/// Flushes a run of buffered local gates: runs of ≥ 2 compile to a fused
/// plan over the local register, shorter runs stay per-gate.
fn flush_local_run(
    run: &mut Vec<Gate>,
    steps: &mut Vec<Step>,
    params: &[f64],
    n_local: usize,
    n_params: usize,
) -> Result<()> {
    if run.len() >= 2 {
        let mut seg = Circuit::with_params(n_local, n_params);
        for g in run.drain(..) {
            seg.push(g)?;
        }
        let plan = ExecPlan::compile(&seg, params)?;
        steps.push(Step::LocalFused(Arc::new(plan)));
    } else {
        for g in run.drain(..) {
            steps.push(gate_step(&g, params, n_local)?.0);
        }
    }
    Ok(())
}

/// Resolves the circuit into the deterministic step list. When an
/// `injector` is given, faults are drawn *here* — in exactly the order the
/// per-gate legacy path drew them, so seeded runs reproduce — and baked
/// into the list as explicit steps. Fault compilation never fuses (faults
/// interleave per gate).
fn compile_steps(
    circuit: &Circuit,
    params: &[f64],
    n_ranks: usize,
    fuse_local: bool,
    mut injector: Option<&mut FaultInjector>,
) -> Result<Compiled> {
    let n_local = validate_ranks(circuit.n_qubits(), n_ranks)?;
    debug_assert!(injector.is_none() || !fuse_local);
    let part_len = 1usize << n_local;
    let mut steps = Vec::with_capacity(circuit.len());
    let mut local_run: Vec<Gate> = Vec::new();
    let mut local_gates = 0u64;
    let mut global_gates = 0u64;
    for gate in circuit.gates() {
        if let Some(inj) = injector.as_deref_mut() {
            if let Some(rank) = inj.should_lose_rank(n_ranks) {
                // The legacy path aborted before this gate; freezing the
                // step list here reproduces that exactly.
                steps.push(Step::Lose { rank });
                let comm = Arc::new(analyze_comm(&steps));
                return Ok(Compiled {
                    steps: Arc::new(steps),
                    comm,
                    local_gates,
                    global_gates,
                });
            }
        }
        let (step, is_global) = gate_step(gate, params, n_local)?;
        if is_global {
            global_gates += 1;
            flush_local_run(
                &mut local_run,
                &mut steps,
                params,
                n_local,
                circuit.n_params(),
            )?;
            steps.push(step);
        } else {
            local_gates += 1;
            if fuse_local {
                local_run.push(gate.clone());
            } else {
                steps.push(step);
            }
        }
        if is_global {
            if let Some(inj) = injector.as_deref_mut() {
                if inj.should_corrupt_message() {
                    let rank = inj.pick_index(n_ranks);
                    let index = inj.pick_index(part_len);
                    steps.push(Step::Corrupt { rank, index });
                }
                if inj.should_drift_norm() {
                    let rank = inj.pick_index(n_ranks);
                    steps.push(Step::Drift { rank });
                }
            }
        }
    }
    flush_local_run(
        &mut local_run,
        &mut steps,
        params,
        n_local,
        circuit.n_params(),
    )?;
    let comm = Arc::new(analyze_comm(&steps));
    Ok(Compiled {
        steps: Arc::new(steps),
        comm,
        local_gates,
        global_gates,
    })
}

/// Accumulates one classified step into planner totals — the single
/// source of truth both [`crate::comm::plan_communication`] and the
/// summed per-rank worker counters reduce to. `n` is the rank count and
/// `pb` the full-shard payload size in bytes.
fn accumulate_step(stats: &mut CommStats, sc: &StepComm, n: u64, pb: u64) {
    match sc.class {
        CommClass::Local => {}
        CommClass::Phase => {
            let msgs = sc.naive_sends as u64 * n;
            stats.exchanges_elided += msgs;
            stats.bytes_saved += msgs * pb;
        }
        CommClass::LocalApply => {
            stats.exchanges_elided += n;
            stats.bytes_saved += n * pb;
        }
        CommClass::PairFull { .. } => {
            if sc.fused {
                stats.exchanges_fused += n;
                stats.bytes_saved += n * pb;
            } else {
                stats.messages += n;
                stats.bytes += n * pb;
            }
        }
        CommClass::PairHalf { .. } => {
            if sc.fused {
                stats.exchanges_fused += n;
                stats.bytes_saved += n * pb;
            } else {
                stats.messages += n;
                stats.bytes += n * pb / 2;
                stats.bytes_saved += n * pb / 2;
            }
        }
        CommClass::GlobalBlock { ndense, .. } => {
            let msgs = ndense as u64 * n / 2;
            stats.messages += msgs;
            stats.bytes += msgs * pb;
            stats.exchanges_elided += 3 * n - msgs;
            stats.bytes_saved += (3 * n - msgs) * pb;
        }
        CommClass::Quad => {
            stats.messages += 3 * n;
            stats.bytes += 3 * n * pb;
        }
    }
}

/// θ-aware communication plan: resolves every gate against the PGAS
/// layout exactly like [`compile_steps`] (same classification, same
/// fusion-window pass) and sums what the lean executor will send. Backs
/// [`crate::comm::plan_communication_with`].
pub(crate) fn plan_lean(circuit: &Circuit, params: &[f64], n_ranks: usize) -> Result<CommStats> {
    let n_local = validate_ranks(circuit.n_qubits(), n_ranks)?;
    // Symbolic circuits plan against a representative generic binding:
    // every standard gate's *shape* is angle-independent away from
    // measure-zero special angles (RZ/CZ/CP/RZZ diagonal for all θ, CX
    // block for all, RX/RY/U3 dense for generic θ), so the plan matches
    // any non-degenerate binding. Bound circuits use their real matrices.
    let generic: Vec<f64>;
    let params = if params.is_empty() && circuit.n_params() > 0 {
        generic = vec![0.618_033_988_749_894_9; circuit.n_params()];
        &generic
    } else {
        params
    };
    let mut steps = Vec::with_capacity(circuit.len());
    for gate in circuit.gates() {
        steps.push(gate_step(gate, params, n_local)?.0);
    }
    let comm = analyze_comm(&steps);
    let n = n_ranks as u64;
    let pb = 16u64 << n_local;
    let mut stats = CommStats::default();
    for sc in &comm {
        if sc.class == CommClass::Local {
            stats.local_gates += 1;
        } else {
            stats.global_gates += 1;
            accumulate_step(&mut stats, sc, n, pb);
        }
    }
    Ok(stats)
}

/// Exchange payload: the sending rank's shard (or packed half-shard),
/// tagged with the step index so a desynchronized mesh is detected
/// instead of silently mixing states.
type Msg = (usize, Vec<C64>);

/// What one worker thread reports back.
struct WorkerReport {
    shard: Vec<C64>,
    messages: u64,
    bytes: u64,
    /// Messages the naive pattern would have sent but the lean structure
    /// (diagonal elision, block-local application) did not.
    elided: u64,
    /// Lean-pattern messages avoided by exchange fusion.
    fused: u64,
    /// Naive payload bytes minus actually-sent bytes.
    saved: u64,
    seconds: f64,
}

fn lost(rank: usize, partner: usize) -> Error {
    Error::Backend(format!(
        "rank {rank}: exchange with rank {partner} failed (shard lost)"
    ))
}

struct Mesh {
    /// `senders[to]` — `None` at the worker's own rank.
    senders: Vec<Option<Sender<Msg>>>,
    /// `receivers[from]` — `None` at the worker's own rank.
    receivers: Vec<Option<Receiver<Msg>>>,
}

impl Mesh {
    fn send(&self, rank: usize, to: usize, step: usize, payload: Vec<C64>) -> Result<()> {
        self.senders[to]
            .as_ref()
            .ok_or_else(|| lost(rank, to))?
            .send((step, payload))
            .map_err(|_| lost(rank, to))
    }

    /// Receives the step-`step` payload from `from` under the exchange
    /// deadline: each missed wait doubles the next one (bounded backoff),
    /// and an exhausted budget reports the partner as missing its deadline
    /// instead of blocking the worker forever. `expect_len` is the payload
    /// length this step's exchange class calls for — the full shard for a
    /// dense exchange, half of it for a [`CommClass::PairHalf`] step — so
    /// a desynchronized or mis-packed mesh is caught at the boundary.
    fn recv(
        &self,
        rank: usize,
        from: usize,
        step: usize,
        expect_len: usize,
        deadline: ExchangeDeadline,
    ) -> Result<Vec<C64>> {
        let rx = self.receivers[from]
            .as_ref()
            .ok_or_else(|| lost(rank, from))?;
        let mut wait = deadline.timeout;
        let mut waits = 0u32;
        let (tag, payload) = loop {
            match rx.recv_timeout(wait) {
                Ok(msg) => break msg,
                Err(RecvTimeoutError::Disconnected) => return Err(lost(rank, from)),
                Err(RecvTimeoutError::Timeout) => {
                    nwq_telemetry::counter_add("resilience.shard_exchange_timeouts", 1);
                    waits += 1;
                    if waits > deadline.retries {
                        return Err(Error::Backend(format!(
                            "rank {rank}: exchange with rank {from} missed its deadline \
                             at step {step} ({waits} waits, last {wait:?})"
                        )));
                    }
                    wait = wait.saturating_mul(2);
                }
            }
        };
        if tag != step || payload.len() != expect_len {
            return Err(Error::Backend(format!(
                "rank {rank}: desynchronized exchange with rank {from} \
                 (expected step {step} / {expect_len} amps, got step {tag} / {} amps)",
                payload.len()
            )));
        }
        Ok(payload)
    }
}

/// Reusable exchange-payload buffers. Sends draw their backing storage
/// here and receives return theirs, so a steady-state exchange loop
/// allocates nothing after warm-up — the pre-pool path cloned the full
/// shard on every send. Two slots cover the worst case (a quad step
/// returns three payloads but the pool only needs enough for the next
/// step's sends; pair steps cycle one buffer).
#[derive(Default)]
struct BufPool(Vec<Vec<C64>>);

impl BufPool {
    fn take(&mut self) -> Vec<C64> {
        self.0.pop().unwrap_or_default()
    }

    fn put(&mut self, mut buf: Vec<C64>) {
        if self.0.len() < 2 {
            buf.clear();
            self.0.push(buf);
        }
    }
}

/// A live fusion window: the partner's payload from the window's anchor
/// exchange, advanced step by step to the partner's current values.
/// `class` is the window's exchange class (a fused step must match it;
/// a mismatch means the compile-time window pass and the executor
/// disagree, which would be a bug).
struct Mirror {
    class: CommClass,
    buf: Vec<C64>,
}

/// One planned, fire-once fault in *tape* coordinates. The armed flag is
/// shared across recovery generations, so a fault fires in the generation
/// that first reaches its step and never re-fires during replay.
struct PlannedFault {
    step: usize,
    rank: usize,
    armed: AtomicBool,
}

impl PlannedFault {
    fn new(step: usize, rank: usize) -> Self {
        PlannedFault {
            step,
            rank,
            armed: AtomicBool::new(true),
        }
    }

    /// Disarms and fires iff this entry targets (`step`, `rank`) and is
    /// still armed.
    fn fire(&self, step: usize, rank: usize) -> bool {
        self.step == step && self.rank == rank && self.armed.swap(false, Ordering::SeqCst)
    }
}

/// The compiled fault schedule, translated from gate to tape coordinates
/// and shared (behind `Arc`) by every generation's workers.
#[derive(Default)]
struct FaultPlan {
    /// `(fault, mid_exchange)` — mid-exchange deaths complete the step's
    /// sends and die before its receives.
    deaths: Vec<(PlannedFault, bool)>,
    drops: Vec<PlannedFault>,
    /// `(fault, delay_ms)`.
    delays: Vec<(PlannedFault, u64)>,
}

impl FaultPlan {
    fn death_at(&self, step: usize, rank: usize) -> Option<bool> {
        self.deaths
            .iter()
            .find(|(f, _)| f.fire(step, rank))
            .map(|&(_, mid)| mid)
    }

    fn drop_at(&self, step: usize, rank: usize) -> bool {
        self.drops.iter().any(|f| f.fire(step, rank))
    }

    fn delay_at(&self, step: usize, rank: usize) -> Option<u64> {
        self.delays
            .iter()
            .find(|(f, _)| f.fire(step, rank))
            .map(|&(_, ms)| ms)
    }
}

fn killed(rank: usize, step: usize, mid_exchange: bool) -> Error {
    let phase = if mid_exchange { " mid-exchange" } else { "" };
    Error::Backend(format!(
        "rank {rank} killed by fault injection{phase} at step {step}"
    ))
}

/// Applies a compiled local plan to a shard, mirroring
/// `Executor::run_plan_on`'s op loop.
fn apply_plan(shard: &mut [C64], plan: &ExecPlan) {
    for op in plan.ops() {
        match op {
            PlanOp::One(q, m) => kernels::apply_mat2(shard, *q, m),
            PlanOp::Two(hi, lo, m) => kernels::apply_mat4_prenorm(shard, *hi, *lo, m),
            PlanOp::DiagSweep { start, len, .. } => {
                kernels::apply_diag_sweep(shard, &plan.factors()[*start..*start + *len]);
            }
        }
    }
}

/// Everything one worker thread needs beyond the tape and the mesh.
/// Recovery generations differ only in `start_step` + the initial shard.
struct WorkerCtx {
    rank: usize,
    n_local: usize,
    /// Absolute tape index this generation starts from (0 for a fresh run,
    /// the restored cut's resume step after a recovery).
    start_step: usize,
    /// Lean exchange ([`ShardOptions::lean_exchange`]): elide, halve, and
    /// fuse exchanges per the compiled [`StepComm`] plan. Off = the naive
    /// full-payload pattern (with shape-aware arithmetic either way).
    lean: bool,
    deadline: ExchangeDeadline,
    faults: Option<Arc<FaultPlan>>,
    snapshots: Option<Arc<SnapshotStore>>,
}

/// Per-worker exchange I/O: the mesh, the reusable payload-buffer pool,
/// and the measured/avoided traffic counters. Sends copy into a pooled
/// buffer (never `shard.clone()`); receives validate the class's expected
/// payload length.
struct ExchangeIo<'a> {
    mesh: &'a Mesh,
    rank: usize,
    deadline: ExchangeDeadline,
    pool: BufPool,
    messages: u64,
    bytes: u64,
    elided: u64,
    fused: u64,
    saved: u64,
}

impl ExchangeIo<'_> {
    /// Sends the full shard to `to` (dropped silently under a message-drop
    /// fault, exactly like the pre-pool path).
    fn send_full(&mut self, to: usize, step: usize, shard: &[C64], skip: bool) -> Result<()> {
        if skip {
            return Ok(());
        }
        let mut buf = self.pool.take();
        debug_assert!(buf.is_empty());
        buf.extend_from_slice(shard);
        self.mesh.send(self.rank, to, step, buf)?;
        self.messages += 1;
        self.bytes += (shard.len() * 16) as u64;
        Ok(())
    }

    /// Packs and sends the `lo`-bit == `v` half of the shard.
    fn send_half(
        &mut self,
        to: usize,
        step: usize,
        shard: &[C64],
        lo: usize,
        v: usize,
        skip: bool,
    ) -> Result<()> {
        if skip {
            return Ok(());
        }
        let mut buf = self.pool.take();
        kernels::pack_lo_half(shard, lo, v, &mut buf);
        let len = buf.len();
        self.mesh.send(self.rank, to, step, buf)?;
        self.messages += 1;
        self.bytes += (len * 16) as u64;
        Ok(())
    }

    fn recv(&mut self, from: usize, step: usize, expect: usize) -> Result<Vec<C64>> {
        self.mesh.recv(self.rank, from, step, expect, self.deadline)
    }

    /// Obtains the partner payload for a pair-class step. A fused step
    /// consumes the live fusion mirror — zero messages; a recovery
    /// generation resuming mid-window finds no mirror and falls back to a
    /// fresh exchange, which stays symmetric because every rank restarted
    /// from the same cut and misses the same mirror. Fresh exchanges send
    /// the full shard, or the packed `lo == v` half for a lean
    /// [`CommClass::PairHalf`] step. Fault hooks keep the legacy order:
    /// sends complete, then a mid-exchange death fires before receives.
    #[allow(clippy::too_many_arguments)]
    fn pair_payload(
        &mut self,
        mirror: &mut Option<Mirror>,
        sc: &StepComm,
        lean: bool,
        shard: &[C64],
        partner: usize,
        step: usize,
        skip_sends: bool,
        die_mid_exchange: bool,
    ) -> Result<Vec<C64>> {
        let part_bytes = (shard.len() * 16) as u64;
        if lean && sc.fused {
            if let Some(mir) = mirror.take() {
                debug_assert_eq!(mir.class, sc.class);
                self.fused += 1;
                self.saved += part_bytes;
                if die_mid_exchange {
                    return Err(killed(self.rank, step, true));
                }
                return Ok(mir.buf);
            }
            // Mirror lost across a recovery boundary: fresh exchange.
        }
        debug_assert!(mirror.is_none());
        if let (true, CommClass::PairHalf { lo, v, .. }) = (lean, sc.class) {
            self.send_half(partner, step, shard, lo, v, skip_sends)?;
            self.saved += part_bytes / 2;
            if die_mid_exchange {
                return Err(killed(self.rank, step, true));
            }
            self.recv(partner, step, shard.len() / 2)
        } else {
            self.send_full(partner, step, shard, skip_sends)?;
            if die_mid_exchange {
                return Err(killed(self.rank, step, true));
            }
            self.recv(partner, step, shard.len())
        }
    }
}

/// Advances a live fusion mirror past an elided diagonal (`Phase`) step.
/// The mirror holds the *partner's* amplitudes, so the diagonal entries
/// are selected by the partner's rank bits — the partner differs from
/// this rank only in the window's exchange bit, and runs exactly these
/// expressions on its own shard, which keeps the mirror bitwise true.
fn phase_on_mirror(mirror: &mut Mirror, rank: usize, step: &Step) {
    let wgbit = match mirror.class {
        CommClass::PairFull { gbit } | CommClass::PairHalf { gbit, .. } => gbit,
        _ => unreachable!("fusion windows are anchored by pair exchanges"),
    };
    let partner = rank ^ (1 << wgbit);
    match step {
        Step::Global1 { gbit, m } => {
            let d = if (partner >> gbit) & 1 == 1 {
                m.0[1][1]
            } else {
                m.0[0][0]
            };
            kernels::scale_amps(&mut mirror.buf, d);
        }
        Step::GlobalLocal { gbit, lo, m } => {
            let ph = (partner >> gbit) & 1;
            if let CommClass::PairHalf { lo: wlo, v, .. } = mirror.class {
                let d0 = m.0[ph << 1][ph << 1];
                let d1 = m.0[(ph << 1) | 1][(ph << 1) | 1];
                kernels::phase_on_lo_half(&mut mirror.buf, wlo, v, *lo, d0, d1);
            } else {
                kernels::apply_global_local_phase(&mut mirror.buf, ph, *lo, m);
            }
        }
        Step::GlobalGlobal { bhi, blo, m } => {
            // Both bits are global, so the phase is one scalar per rank —
            // valid on a packed-half mirror too.
            let pos = (((partner >> bhi) & 1) << 1) | ((partner >> blo) & 1);
            kernels::scale_amps(&mut mirror.buf, m.0[pos][pos]);
        }
        _ => unreachable!("only global diagonal steps are Phase-classified"),
    }
}

/// The body of one rank's worker thread: replay the step list against the
/// owned shard, exchanging through the channel mesh on global steps per
/// the compiled per-step communication plan (`comm` is tape-aligned with
/// `steps`). Every channel failure and every exhausted exchange deadline
/// maps to [`Error::Backend`] — a dead or wedged partner aborts this rank
/// cleanly instead of deadlocking or panicking.
fn worker(
    ctx: WorkerCtx,
    steps: &[Step],
    comm: &[StepComm],
    mesh: Mesh,
    init: Option<Vec<C64>>,
) -> Result<WorkerReport> {
    use kernels::{Mat4Shape, SubKind};
    debug_assert_eq!(steps.len(), comm.len());
    let started = Instant::now();
    let rank = ctx.rank;
    let lean = ctx.lean;
    let part_len = 1usize << ctx.n_local;
    let part_bytes = (part_len * 16) as u64;
    let mut shard = match init {
        Some(restored) => {
            debug_assert_eq!(restored.len(), part_len);
            restored
        }
        None => {
            let mut zero = vec![C_ZERO; part_len];
            if rank == 0 {
                zero[0] = C_ONE;
            }
            zero
        }
    };
    let mut io = ExchangeIo {
        mesh: &mesh,
        rank,
        deadline: ctx.deadline,
        pool: BufPool::default(),
        messages: 0,
        bytes: 0,
        elided: 0,
        fused: 0,
        saved: 0,
    };
    // At most one fusion window is open at any tape point (compile-time
    // invariant of `compute_fusion`), so a single mirror slot suffices.
    let mut mirror: Option<Mirror> = None;
    for (i, step) in steps[ctx.start_step..].iter().enumerate() {
        let s = ctx.start_step + i;
        let sc = &comm[s];
        // Planned faults fire exactly once across all generations; the
        // step tag `s` is absolute, so replay walks the same schedule.
        let mut skip_sends = false;
        let mut die_mid_exchange = false;
        if let Some(plan) = &ctx.faults {
            if let Some(ms) = plan.delay_at(s, rank) {
                std::thread::sleep(Duration::from_millis(ms));
            }
            if let Some(mid) = plan.death_at(s, rank) {
                let global = matches!(
                    step,
                    Step::Global1 { .. } | Step::GlobalLocal { .. } | Step::GlobalGlobal { .. }
                );
                if mid && global {
                    die_mid_exchange = true;
                } else {
                    return Err(killed(rank, s, false));
                }
            }
            skip_sends = plan.drop_at(s, rank);
        }
        // Lean zero-message classes first: diagonal elision and block-
        // local application replace the exchange entirely. Both use the
        // exact per-amplitude expressions the single-node fast paths use,
        // so elision is invisible bitwise.
        if lean && sc.class == CommClass::Phase {
            match step {
                Step::Global1 { gbit, m } => {
                    kernels::apply_global_phase1(&mut shard, (rank >> gbit) & 1, m);
                }
                Step::GlobalLocal { gbit, lo, m } => {
                    kernels::apply_global_local_phase(&mut shard, (rank >> gbit) & 1, *lo, m);
                }
                Step::GlobalGlobal { bhi, blo, m } => {
                    let pos = (((rank >> bhi) & 1) << 1) | ((rank >> blo) & 1);
                    kernels::apply_global_global_phase(&mut shard, pos, m);
                }
                _ => unreachable!("Phase classifies global steps only"),
            }
            if let Some(mir) = mirror.as_mut() {
                phase_on_mirror(mir, rank, step);
            }
            io.elided += sc.naive_sends as u64;
            io.saved += sc.naive_sends as u64 * part_bytes;
            if die_mid_exchange {
                return Err(killed(rank, s, true));
            }
            continue;
        }
        if lean && sc.class == CommClass::LocalApply {
            let Step::GlobalLocal { gbit, lo, .. } = step else {
                unreachable!("LocalApply is a global-local class");
            };
            let Mat4Shape::BlockHi { a, ka, b, kb } = sc.shape else {
                unreachable!("LocalApply comes from a BlockHi shape");
            };
            let (k, km) = if (rank >> gbit) & 1 == 1 {
                (kb, b)
            } else {
                (ka, a)
            };
            if k != SubKind::Identity {
                kernels::apply_mat2(&mut shard, *lo, &km);
            }
            io.elided += 1;
            io.saved += part_bytes;
            if die_mid_exchange {
                return Err(killed(rank, s, true));
            }
            continue;
        }
        match step {
            Step::Local1(q, m) => {
                debug_assert!(mirror.is_none(), "local step inside a fusion window");
                kernels::apply_mat2(&mut shard, *q, m);
            }
            Step::Local2(a, b, m) => {
                debug_assert!(mirror.is_none(), "local step inside a fusion window");
                kernels::apply_mat4(&mut shard, *a, *b, m);
            }
            Step::LocalFused(plan) => {
                debug_assert!(mirror.is_none(), "local step inside a fusion window");
                apply_plan(&mut shard, plan);
            }
            Step::Global1 { gbit, m } => {
                let partner = rank ^ (1 << gbit);
                let own_bit = (rank >> gbit) & 1;
                let mut payload = io.pair_payload(
                    &mut mirror,
                    sc,
                    lean,
                    &shard,
                    partner,
                    s,
                    skip_sends,
                    die_mid_exchange,
                )?;
                if lean && sc.track {
                    kernels::exchange_mirror_mat2(&mut shard, &mut payload, own_bit, m);
                    mirror = Some(Mirror {
                        class: sc.class,
                        buf: payload,
                    });
                } else {
                    kernels::apply_exchanged_mat2(&mut shard, &payload, own_bit, m);
                    io.pool.put(payload);
                }
            }
            Step::GlobalLocal { gbit, lo, m } => {
                let partner = rank ^ (1 << gbit);
                let own_hi = (rank >> gbit) & 1;
                if let (true, CommClass::PairHalf { v, .. }) = (lean, sc.class) {
                    // The non-exchanged `lo == 1-v` stripe applies its own
                    // identity/diagonal sub-block locally; the stripes are
                    // disjoint, so ordering against the pack is free.
                    let Mat4Shape::BlockLo { a, ka, b, kb } = sc.shape else {
                        unreachable!("PairHalf comes from a BlockLo shape");
                    };
                    let (dense_m, other_k, other_m) = if v == 0 { (a, kb, b) } else { (b, ka, a) };
                    if other_k != SubKind::Identity {
                        let d = if own_hi == 1 {
                            other_m.0[1][1]
                        } else {
                            other_m.0[0][0]
                        };
                        kernels::scale_lo_half(&mut shard, *lo, 1 - v, d);
                    }
                    let mut payload = io.pair_payload(
                        &mut mirror,
                        sc,
                        lean,
                        &shard,
                        partner,
                        s,
                        skip_sends,
                        die_mid_exchange,
                    )?;
                    if sc.track {
                        kernels::exchange_mirror_half(
                            &mut shard,
                            &mut payload,
                            own_hi,
                            *lo,
                            v,
                            &dense_m,
                        );
                        mirror = Some(Mirror {
                            class: sc.class,
                            buf: payload,
                        });
                    } else {
                        kernels::apply_exchanged_half(
                            &mut shard, &payload, own_hi, *lo, v, &dense_m,
                        );
                        io.pool.put(payload);
                    }
                } else {
                    let mut payload = io.pair_payload(
                        &mut mirror,
                        sc,
                        lean,
                        &shard,
                        partner,
                        s,
                        skip_sends,
                        die_mid_exchange,
                    )?;
                    if lean && sc.track {
                        // Lean PairFull window (dense or both-dense-block
                        // matrix): establish/advance the full mirror.
                        match sc.shape {
                            Mat4Shape::BlockLo { .. } => kernels::exchange_mirror_blocklo(
                                &mut shard,
                                &mut payload,
                                own_hi,
                                *lo,
                                &sc.shape,
                            ),
                            _ => kernels::exchange_mirror_global_local(
                                &mut shard,
                                &mut payload,
                                own_hi,
                                *lo,
                                m,
                            ),
                        }
                        mirror = Some(Mirror {
                            class: sc.class,
                            buf: payload,
                        });
                    } else {
                        match sc.shape {
                            Mat4Shape::BlockHi { a, ka, b, kb } => {
                                // Full mode only (lean classifies BlockHi
                                // as LocalApply): the payload is protocol
                                // ballast; the arithmetic is rank-local.
                                let (k, km) = if own_hi == 1 { (kb, b) } else { (ka, a) };
                                if k != SubKind::Identity {
                                    kernels::apply_mat2(&mut shard, *lo, &km);
                                }
                            }
                            Mat4Shape::BlockLo { .. } => kernels::apply_exchanged_blocklo(
                                &mut shard, &payload, own_hi, *lo, &sc.shape,
                            ),
                            _ => kernels::apply_exchanged_mat4_global_local(
                                &mut shard, &payload, own_hi, *lo, m,
                            ),
                        }
                        io.pool.put(payload);
                    }
                }
            }
            Step::GlobalGlobal { bhi, blo, m } => {
                // No global-global class joins a fusion window; compile
                // closed any open window at this step.
                debug_assert!(
                    mirror.is_none(),
                    "global-global step inside a fusion window"
                );
                if let (true, CommClass::GlobalBlock { sel, xbit, .. }) = (lean, sc.class) {
                    let (Mat4Shape::BlockHi { a, ka, b, kb } | Mat4Shape::BlockLo { a, ka, b, kb }) =
                        sc.shape
                    else {
                        unreachable!("GlobalBlock comes from a block shape");
                    };
                    let (k, km) = if (rank >> sel) & 1 == 1 {
                        (kb, b)
                    } else {
                        (ka, a)
                    };
                    match k {
                        SubKind::Identity => {
                            io.elided += 3;
                            io.saved += 3 * part_bytes;
                            if die_mid_exchange {
                                return Err(killed(rank, s, true));
                            }
                        }
                        SubKind::Diag => {
                            let xv = (rank >> xbit) & 1;
                            kernels::scale_amps(
                                &mut shard,
                                if xv == 1 { km.0[1][1] } else { km.0[0][0] },
                            );
                            io.elided += 3;
                            io.saved += 3 * part_bytes;
                            if die_mid_exchange {
                                return Err(killed(rank, s, true));
                            }
                        }
                        SubKind::Dense => {
                            // The partner shares this rank's `sel` bit, so
                            // it takes this same arm: symmetric exchange.
                            let partner = rank ^ (1 << xbit);
                            io.send_full(partner, s, &shard, skip_sends)?;
                            if die_mid_exchange {
                                return Err(killed(rank, s, true));
                            }
                            let payload = io.recv(partner, s, part_len)?;
                            kernels::apply_exchanged_mat2(
                                &mut shard,
                                &payload,
                                (rank >> xbit) & 1,
                                &km,
                            );
                            io.pool.put(payload);
                            io.elided += 2;
                            io.saved += 2 * part_bytes;
                        }
                    }
                } else {
                    let pos = (((rank >> bhi) & 1) << 1) | ((rank >> blo) & 1);
                    // Quad mates in ascending bit-position order.
                    let mates: Vec<usize> = (0..4)
                        .filter(|&p| p != pos)
                        .map(|p| {
                            let mut mate = rank & !(1 << bhi) & !(1 << blo);
                            mate |= ((p >> 1) & 1) << bhi;
                            mate |= (p & 1) << blo;
                            mate
                        })
                        .collect();
                    for &mate in &mates {
                        io.send_full(mate, s, &shard, skip_sends)?;
                    }
                    if die_mid_exchange {
                        return Err(killed(rank, s, true));
                    }
                    let mut others = Vec::with_capacity(3);
                    for &mate in &mates {
                        others.push(io.recv(mate, s, part_len)?);
                    }
                    if let CommClass::GlobalBlock { sel, xbit, .. } = sc.class {
                        // Full mode on a block gate: naive traffic, but
                        // the arithmetic must match the single-node block
                        // fast path bitwise — only the `xbit` mate's
                        // payload is read.
                        let (Mat4Shape::BlockHi { a, ka, b, kb }
                        | Mat4Shape::BlockLo { a, ka, b, kb }) = sc.shape
                        else {
                            unreachable!("GlobalBlock comes from a block shape");
                        };
                        let (k, km) = if (rank >> sel) & 1 == 1 {
                            (kb, b)
                        } else {
                            (ka, a)
                        };
                        match k {
                            SubKind::Identity => {}
                            SubKind::Diag => {
                                let xv = (rank >> xbit) & 1;
                                kernels::scale_amps(
                                    &mut shard,
                                    if xv == 1 { km.0[1][1] } else { km.0[0][0] },
                                );
                            }
                            SubKind::Dense => {
                                let mate_pos = pos ^ if xbit == *bhi { 2 } else { 1 };
                                let idx = if mate_pos < pos {
                                    mate_pos
                                } else {
                                    mate_pos - 1
                                };
                                kernels::apply_exchanged_mat2(
                                    &mut shard,
                                    &others[idx],
                                    (rank >> xbit) & 1,
                                    &km,
                                );
                            }
                        }
                    } else {
                        kernels::apply_exchanged_mat4_global_global(
                            &mut shard,
                            [&others[0], &others[1], &others[2]],
                            pos,
                            m,
                        );
                    }
                    for o in others {
                        io.pool.put(o);
                    }
                }
            }
            Step::Corrupt { rank: r, index } => {
                if *r == rank {
                    shard[*index] = C64::new(f64::NAN, f64::NAN);
                }
            }
            Step::Drift { rank: r } => {
                if *r == rank {
                    for a in shard.iter_mut() {
                        *a = *a * 1.001;
                    }
                }
            }
            Step::Lose { rank: r } => {
                if *r == rank {
                    return Err(Error::Backend(format!(
                        "rank {r} lost during distributed execution"
                    )));
                }
            }
            Step::Snapshot { version } => {
                if let Some(store) = &ctx.snapshots {
                    store.deposit(*version, s, rank, &shard)?;
                }
            }
        }
    }
    Ok(WorkerReport {
        shard,
        messages: io.messages,
        bytes: io.bytes,
        elided: io.elided,
        fused: io.fused,
        saved: io.saved,
        seconds: started.elapsed().as_secs_f64(),
    })
}

/// Runs `circuit` on `n_ranks` real shards, one OS thread per rank, and
/// reassembles the distributed state. Unfused execution (the default) is
/// bitwise identical to [`nwq_statevec::simulate`].
pub fn run_sharded(
    circuit: &Circuit,
    params: &[f64],
    n_ranks: usize,
    opts: &ShardOptions,
) -> Result<DistStateVector> {
    let compiled = compile_steps(circuit, params, n_ranks, opts.fuse_local, None)?;
    run_compiled(
        circuit.n_qubits(),
        n_ranks,
        compiled,
        opts.into(),
        opts.lean_exchange,
    )
}

/// [`run_sharded`] with faults drawn from `injector` at compile time (in
/// the legacy per-gate order, so seeded schedules reproduce) and replayed
/// by the owning workers. Always unfused.
pub fn run_sharded_faulty(
    circuit: &Circuit,
    params: &[f64],
    n_ranks: usize,
    injector: &mut FaultInjector,
) -> Result<DistStateVector> {
    let compiled = compile_steps(circuit, params, n_ranks, false, Some(injector))?;
    let opts = ShardOptions::default();
    run_compiled(
        circuit.n_qubits(),
        n_ranks,
        compiled,
        (&opts).into(),
        opts.lean_exchange,
    )
}

/// Spawns one generation of worker threads over a fresh channel mesh and
/// joins them. A fresh mesh per generation means no stale message from a
/// torn-down generation can leak into the replay.
#[allow(clippy::too_many_arguments)]
fn run_generation(
    n_ranks: usize,
    n_local: usize,
    steps: &Arc<Vec<Step>>,
    comm: &Arc<Vec<StepComm>>,
    lean: bool,
    start_step: usize,
    init: Option<Vec<Vec<C64>>>,
    deadline: ExchangeDeadline,
    faults: Option<&Arc<FaultPlan>>,
    snapshots: Option<&Arc<SnapshotStore>>,
) -> Result<Vec<WorkerReport>> {
    // Build the (from, to) channel mesh and hand each worker its row.
    let mut senders: Vec<Vec<Option<Sender<Msg>>>> = (0..n_ranks)
        .map(|_| (0..n_ranks).map(|_| None).collect())
        .collect();
    let mut receivers: Vec<Vec<Option<Receiver<Msg>>>> = (0..n_ranks)
        .map(|_| (0..n_ranks).map(|_| None).collect())
        .collect();
    for from in 0..n_ranks {
        for to in 0..n_ranks {
            if from != to {
                let (tx, rx) = channel();
                senders[from][to] = Some(tx);
                receivers[to][from] = Some(rx);
            }
        }
    }
    let mut init_shards: Vec<Option<Vec<C64>>> = match init {
        Some(shards) => shards.into_iter().map(Some).collect(),
        None => (0..n_ranks).map(|_| None).collect(),
    };
    let mut handles = Vec::with_capacity(n_ranks);
    for (rank, (sends, recvs)) in senders.drain(..).zip(receivers.drain(..)).enumerate() {
        let steps = Arc::clone(steps);
        let comm = Arc::clone(comm);
        let mesh = Mesh {
            senders: sends,
            receivers: recvs,
        };
        let ctx = WorkerCtx {
            rank,
            n_local,
            start_step,
            lean,
            deadline,
            faults: faults.map(Arc::clone),
            snapshots: snapshots.map(Arc::clone),
        };
        let init_shard = init_shards[rank].take();
        let handle = std::thread::Builder::new()
            .name(format!("nwq-dist-rank{rank}"))
            .spawn(move || worker(ctx, &steps, &comm, mesh, init_shard))
            .map_err(|e| Error::Backend(format!("failed to spawn rank {rank} worker: {e}")))?;
        handles.push(handle);
    }
    let mut reports = Vec::with_capacity(n_ranks);
    let mut first_error: Option<Error> = None;
    let mut root_error: Option<Error> = None;
    for (rank, handle) in handles.into_iter().enumerate() {
        match handle.join() {
            Ok(Ok(report)) => reports.push(report),
            Ok(Err(e)) => {
                // A deliberate rank loss/death is the root cause;
                // partner-side exchange failures are its fallout.
                let msg = e.to_string();
                if (msg.contains("lost during distributed") || msg.contains("killed by fault"))
                    && root_error.is_none()
                {
                    root_error = Some(e);
                } else if first_error.is_none() {
                    first_error = Some(e);
                }
            }
            Err(_) => {
                if first_error.is_none() {
                    first_error = Some(Error::Backend(format!(
                        "rank {rank} worker panicked during distributed execution"
                    )));
                }
            }
        }
    }
    if let Some(e) = root_error.or(first_error) {
        return Err(e);
    }
    Ok(reports)
}

/// Folds one generation's worker reports into the assembled distributed
/// state, with the usual `dist.*` telemetry.
fn assemble(
    n_qubits: usize,
    n_local: usize,
    compiled: &Compiled,
    reports: Vec<WorkerReport>,
) -> DistStateVector {
    let mut stats = CommStats {
        global_gates: compiled.global_gates,
        local_gates: compiled.local_gates,
        ..CommStats::default()
    };
    let mut partitions = Vec::with_capacity(reports.len());
    for report in reports {
        stats.messages += report.messages;
        stats.bytes += report.bytes;
        stats.exchanges_elided += report.elided;
        stats.exchanges_fused += report.fused;
        stats.bytes_saved += report.saved;
        nwq_telemetry::histogram_record("dist.rank_seconds", report.seconds);
        nwq_telemetry::histogram_record("dist.rank_messages", report.messages as f64);
        partitions.push(report.shard);
    }
    nwq_telemetry::counter_add("dist.messages", stats.messages);
    nwq_telemetry::counter_add("dist.bytes", stats.bytes);
    nwq_telemetry::counter_add("dist.local_gates", stats.local_gates);
    nwq_telemetry::counter_add("dist.global_gates", stats.global_gates);
    nwq_telemetry::counter_add("dist.exchanges_elided", stats.exchanges_elided);
    nwq_telemetry::counter_add("dist.exchange_fused", stats.exchanges_fused);
    nwq_telemetry::counter_add("dist.bytes_saved", stats.bytes_saved);
    DistStateVector::from_parts(n_qubits, n_local, partitions, stats)
}

fn run_compiled(
    n_qubits: usize,
    n_ranks: usize,
    compiled: Compiled,
    deadline: ExchangeDeadline,
    lean: bool,
) -> Result<DistStateVector> {
    let n_local = n_qubits - n_ranks.trailing_zeros() as usize;
    let reports = run_generation(
        n_ranks,
        n_local,
        &compiled.steps,
        &compiled.comm,
        lean,
        0,
        None,
        deadline,
        None,
        None,
    )?;
    Ok(assemble(n_qubits, n_local, &compiled, reports))
}

/// Knobs for [`run_sharded_resilient`].
#[derive(Clone, Debug)]
pub struct RecoveryOptions {
    /// Insert a snapshot barrier every this many gates (0 disables
    /// snapshots entirely — recovery then restarts from the zero state).
    pub snapshot_every: usize,
    /// Give up after this many recoveries and surface the last failure.
    pub max_recoveries: u32,
    /// Complete snapshot versions kept in memory (older ones pruned).
    pub keep_versions: usize,
    /// Optional directory for the on-disk snapshot mirror.
    pub snapshot_dir: Option<PathBuf>,
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        RecoveryOptions {
            snapshot_every: 16,
            max_recoveries: 8,
            keep_versions: 2,
            snapshot_dir: None,
        }
    }
}

/// What a resilient run went through.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Snapshot barriers compiled into the tape.
    pub snapshots_planned: usize,
    /// Recoveries performed (0 on a fault-free run).
    pub recoveries: u32,
    /// Worker generations spawned (`recoveries + 1`).
    pub generations: u32,
    /// Absolute tape index each recovery resumed from (0 = zero-state
    /// restart because no cut was complete yet).
    pub resume_steps: Vec<usize>,
    /// Coordinator-side latency of each recovery (restore the cut +
    /// bookkeeping), milliseconds.
    pub recovery_ms: Vec<f64>,
}

/// Resolves the circuit into a resilient tape: per-gate steps (never
/// fused — replay must be bitwise) with snapshot barriers every
/// `snapshot_every` gates, plus the fault schedule translated from gate
/// to tape coordinates and armed fire-once.
fn compile_resilient(
    circuit: &Circuit,
    params: &[f64],
    n_ranks: usize,
    snapshot_every: usize,
    schedule: &FaultSchedule,
) -> Result<(Compiled, Arc<FaultPlan>, usize)> {
    let n_local = validate_ranks(circuit.n_qubits(), n_ranks)?;
    let mut steps = Vec::with_capacity(circuit.len() + 1);
    let mut plan = FaultPlan::default();
    let mut local_gates = 0u64;
    let mut global_gates = 0u64;
    let mut versions = 0usize;
    for (gate_idx, gate) in circuit.gates().iter().enumerate() {
        if snapshot_every > 0 && gate_idx > 0 && gate_idx % snapshot_every == 0 {
            steps.push(Step::Snapshot { version: versions });
            versions += 1;
        }
        let tape_idx = steps.len();
        for d in schedule.deaths.iter().filter(|d| d.gate_step == gate_idx) {
            plan.deaths
                .push((PlannedFault::new(tape_idx, d.rank), d.mid_exchange));
        }
        for d in schedule.drops.iter().filter(|d| d.gate_step == gate_idx) {
            plan.drops.push(PlannedFault::new(tape_idx, d.rank));
        }
        for d in schedule.delays.iter().filter(|d| d.gate_step == gate_idx) {
            plan.delays
                .push((PlannedFault::new(tape_idx, d.rank), d.delay_ms));
        }
        let (step, is_global) = gate_step(gate, params, n_local)?;
        if is_global {
            global_gates += 1;
        } else {
            local_gates += 1;
        }
        steps.push(step);
    }
    let comm = Arc::new(analyze_comm(&steps));
    Ok((
        Compiled {
            steps: Arc::new(steps),
            comm,
            local_gates,
            global_gates,
        },
        Arc::new(plan),
        versions,
    ))
}

/// Runs `circuit` on `n_ranks` shards *survivably*: snapshot barriers
/// checkpoint a consistent cut every [`RecoveryOptions::snapshot_every`]
/// gates, and any worker failure — a planned death from `schedule`, a
/// closed channel, or an exhausted exchange deadline — tears the
/// generation down and respawns all ranks from the last complete cut,
/// replaying the tape from that step. Because the tape is deterministic
/// and the cut is bitwise, the recovered run is **bitwise identical** to
/// a fault-free run; ranks that were ahead of the cut simply roll back.
///
/// The returned state's [`CommStats`] carry the compiled gate split and
/// the *final generation's* measured exchange traffic: on a fault-free
/// run (0 recoveries) that equals [`crate::comm::plan_communication`];
/// after a recovery it covers only the replayed suffix.
pub fn run_sharded_resilient(
    circuit: &Circuit,
    params: &[f64],
    n_ranks: usize,
    opts: &ShardOptions,
    recovery: &RecoveryOptions,
    schedule: &FaultSchedule,
) -> Result<(DistStateVector, RecoveryReport)> {
    if opts.fuse_local {
        return Err(Error::Invalid(
            "resilient sharded execution replays per-gate for bitwise recovery; \
             disable fuse_local"
                .into(),
        ));
    }
    let n_qubits = circuit.n_qubits();
    let n_local = validate_ranks(n_qubits, n_ranks)?;
    let (compiled, faults, snapshots_planned) =
        compile_resilient(circuit, params, n_ranks, recovery.snapshot_every, schedule)?;
    let store = Arc::new(SnapshotStore::new(
        n_ranks,
        recovery.keep_versions,
        recovery.snapshot_dir.clone(),
    ));
    let deadline = ExchangeDeadline::from(opts);
    let mut report = RecoveryReport {
        snapshots_planned,
        ..RecoveryReport::default()
    };
    let mut start_step = 0usize;
    let mut init: Option<Vec<Vec<C64>>> = None;
    loop {
        report.generations += 1;
        match run_generation(
            n_ranks,
            n_local,
            &compiled.steps,
            &compiled.comm,
            opts.lean_exchange,
            start_step,
            init.take(),
            deadline,
            Some(&faults),
            Some(&store),
        ) {
            Ok(reports) => {
                return Ok((assemble(n_qubits, n_local, &compiled, reports), report));
            }
            Err(e) => {
                report.recoveries += 1;
                if report.recoveries > recovery.max_recoveries {
                    return Err(Error::Backend(format!(
                        "gave up after {} recoveries; last failure: {e}",
                        recovery.max_recoveries
                    )));
                }
                let restore_started = Instant::now();
                match store.last_complete()? {
                    Some(cut) => {
                        start_step = cut.resume_step;
                        init = Some(cut.shards);
                    }
                    None => {
                        start_step = 0;
                        init = None;
                    }
                }
                let ms = restore_started.elapsed().as_secs_f64() * 1e3;
                report.resume_steps.push(start_step);
                report.recovery_ms.push(ms);
                nwq_telemetry::counter_add("resilience.shard_recoveries", 1);
                nwq_telemetry::counter_add(
                    "resilience.shard_replayed_steps",
                    (compiled.steps.len() - start_step) as u64,
                );
                nwq_telemetry::histogram_record("resilience.shard_recovery_ms", ms);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::plan_communication;
    use nwq_circuit::Circuit;

    fn sample_circuit(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 1..n {
            c.cx(q - 1, q);
        }
        c.rz(n - 1, 0.7).ry(0, -0.4).swap(0, n - 1);
        c
    }

    fn assert_bitwise(d: &DistStateVector, single: &nwq_statevec::StateVector, ctx: &str) {
        let gathered = d.gather();
        for (i, (a, b)) in gathered
            .amplitudes()
            .iter()
            .zip(single.amplitudes())
            .enumerate()
        {
            assert_eq!(a.re.to_bits(), b.re.to_bits(), "{ctx} amp {i}");
            assert_eq!(a.im.to_bits(), b.im.to_bits(), "{ctx} amp {i}");
        }
    }

    #[test]
    fn sharded_run_bitwise_matches_single_node() {
        let c = sample_circuit(6);
        let single = nwq_statevec::simulate(&c, &[]).unwrap();
        for n_ranks in [1usize, 2, 4, 8] {
            let d = run_sharded(&c, &[], n_ranks, &ShardOptions::default()).unwrap();
            assert_bitwise(&d, &single, &format!("ranks={n_ranks}"));
        }
    }

    #[test]
    fn sharded_comm_matches_plan() {
        let c = sample_circuit(6);
        for n_ranks in [1usize, 2, 4, 8] {
            let d = run_sharded(&c, &[], n_ranks, &ShardOptions::default()).unwrap();
            let planned = plan_communication(&c, n_ranks).unwrap();
            assert_eq!(d.comm_stats(), planned, "ranks={n_ranks}");
        }
    }

    /// H sweep, then a half-exchange fusion window on the top qubit with
    /// every transparent phase kind between the anchor and the fused
    /// member: `Global1` (rz), diagonal `GlobalLocal` (cp), and — at ≥ 4
    /// ranks — diagonal `GlobalGlobal` (rzz).
    fn apex_circuit(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.h(q);
        }
        let t = n - 1;
        c.cx(0, t)
            .rz(t, 0.37)
            .cp(1, t, 0.21)
            .rzz(n - 2, t, 0.45)
            .cx(0, t)
            .h(0);
        c
    }

    #[test]
    fn fusion_window_is_bitwise_and_matches_plan() {
        let c = apex_circuit(6);
        let single = nwq_statevec::simulate(&c, &[]).unwrap();
        for n_ranks in [2usize, 4, 8] {
            let d = run_sharded(&c, &[], n_ranks, &ShardOptions::default()).unwrap();
            let ctx = format!("fused ranks={n_ranks}");
            assert_bitwise(&d, &single, &ctx);
            let stats = d.comm_stats();
            assert_eq!(stats, plan_communication(&c, n_ranks).unwrap(), "{ctx}");
            // The second cx rides the first one's mirror on every rank.
            assert_eq!(stats.exchanges_fused, n_ranks as u64, "{ctx}");
            // Everything not moved is accounted as saved vs the naive plan.
            let naive = crate::comm::plan_communication_naive(&c, n_ranks).unwrap();
            assert_eq!(stats.bytes + stats.bytes_saved, naive.bytes, "{ctx}");
            assert!(stats.bytes < naive.bytes, "{ctx}");
        }
    }

    #[test]
    fn full_exchange_mode_is_bitwise_and_matches_naive_plan() {
        let full = ShardOptions {
            lean_exchange: false,
            ..ShardOptions::default()
        };
        for c in [sample_circuit(6), apex_circuit(6)] {
            let single = nwq_statevec::simulate(&c, &[]).unwrap();
            for n_ranks in [1usize, 2, 4, 8] {
                let d = run_sharded(&c, &[], n_ranks, &full).unwrap();
                let ctx = format!("full ranks={n_ranks}");
                assert_bitwise(&d, &single, &ctx);
                let stats = d.comm_stats();
                let naive = crate::comm::plan_communication_naive(&c, n_ranks).unwrap();
                assert_eq!(stats, naive, "{ctx}");
                assert_eq!(stats.exchanges_elided, 0, "{ctx}");
                assert_eq!(stats.exchanges_fused, 0, "{ctx}");
                assert_eq!(stats.bytes_saved, 0, "{ctx}");
            }
        }
    }

    #[test]
    fn diagonal_global_circuit_exchanges_nothing() {
        let mut c = Circuit::new(6);
        c.h(0).h(1).h(2).cx(0, 1).cx(1, 2);
        c.rz(5, 0.3).cz(2, 5).cz(4, 5).rzz(3, 4, 0.7);
        let single = nwq_statevec::simulate(&c, &[]).unwrap();
        for n_ranks in [2usize, 4, 8] {
            let d = run_sharded(&c, &[], n_ranks, &ShardOptions::default()).unwrap();
            let ctx = format!("diag ranks={n_ranks}");
            assert_bitwise(&d, &single, &ctx);
            let stats = d.comm_stats();
            assert_eq!(stats.messages, 0, "{ctx}");
            assert_eq!(stats.bytes, 0, "{ctx}");
            assert!(stats.exchanges_elided > 0, "{ctx}");
            assert_eq!(stats, plan_communication(&c, n_ranks).unwrap(), "{ctx}");
        }
    }

    #[test]
    fn global_control_gates_apply_block_locally() {
        // cx with a *global* control and local target: each rank applies
        // I or X locally — zero messages, still bitwise.
        let mut c = Circuit::new(6);
        c.h(5).h(4).cx(5, 1).cx(4, 0);
        let single = nwq_statevec::simulate(&c, &[]).unwrap();
        for n_ranks in [4usize, 8] {
            let d = run_sharded(&c, &[], n_ranks, &ShardOptions::default()).unwrap();
            let ctx = format!("blockhi ranks={n_ranks}");
            assert_bitwise(&d, &single, &ctx);
            let stats = d.comm_stats();
            // Only the two H's on global qubits exchange.
            assert_eq!(stats.messages, 2 * n_ranks as u64, "{ctx}");
            assert_eq!(stats, plan_communication(&c, n_ranks).unwrap(), "{ctx}");
        }
    }

    #[test]
    fn fused_local_run_matches_single_node_approximately() {
        // Fusion multiplies matrices, so approx (not bitwise) parity.
        let c = sample_circuit(6);
        let single = nwq_statevec::simulate(&c, &[]).unwrap();
        for n_ranks in [2usize, 4] {
            let opts = ShardOptions {
                fuse_local: true,
                ..ShardOptions::default()
            };
            let d = run_sharded(&c, &[], n_ranks, &opts).unwrap();
            let gathered = d.gather();
            for (a, b) in gathered.amplitudes().iter().zip(single.amplitudes()) {
                assert!(a.approx_eq(*b, 1e-10), "ranks={n_ranks}");
            }
            // Fusion must not change the communication: exchanges happen on
            // exactly the same global gates.
            assert_eq!(d.comm_stats(), plan_communication(&c, n_ranks).unwrap());
        }
    }

    #[test]
    fn injected_rank_loss_aborts_with_the_legacy_error() {
        let c = sample_circuit(5);
        let mut inj = FaultInjector::new(crate::faults::FaultSpec {
            rank_loss: 1.0,
            seed: 5,
            ..Default::default()
        });
        let e = run_sharded_faulty(&c, &[], 4, &mut inj).unwrap_err();
        assert!(matches!(e, Error::Backend(_)), "{e}");
        assert!(e.is_transient());
        assert!(e.to_string().contains("lost during distributed execution"));
        assert_eq!(inj.stats().rank_losses, 1);
    }

    #[test]
    fn zero_rate_injector_is_bitwise_invisible() {
        let c = sample_circuit(6);
        let clean = run_sharded(&c, &[], 4, &ShardOptions::default()).unwrap();
        let mut inj = FaultInjector::new(crate::faults::FaultSpec::default());
        let faulty = run_sharded_faulty(&c, &[], 4, &mut inj).unwrap();
        assert_bitwise(&faulty, &clean.gather(), "zero-rate faults");
        assert_eq!(inj.stats().total(), 0);
    }

    #[test]
    fn empty_circuit_yields_zero_state() {
        let c = Circuit::new(4);
        let d = run_sharded(&c, &[], 4, &ShardOptions::default()).unwrap();
        assert!((d.gather().probability(0) - 1.0).abs() < 1e-15);
        assert_eq!(d.comm_stats().messages, 0);
    }

    /// Short deadlines so fault tests tear down quickly.
    fn test_opts() -> ShardOptions {
        ShardOptions {
            fuse_local: false,
            exchange_timeout_ms: 100,
            exchange_retries: 2,
            ..ShardOptions::default()
        }
    }

    fn test_recovery(snapshot_every: usize) -> RecoveryOptions {
        RecoveryOptions {
            snapshot_every,
            max_recoveries: 8,
            keep_versions: 2,
            snapshot_dir: None,
        }
    }

    #[test]
    fn resilient_clean_run_is_bitwise_and_matches_plan() {
        let c = sample_circuit(6);
        let single = nwq_statevec::simulate(&c, &[]).unwrap();
        for n_ranks in [1usize, 2, 4, 8] {
            let (d, report) = run_sharded_resilient(
                &c,
                &[],
                n_ranks,
                &ShardOptions::default(),
                &test_recovery(2),
                &FaultSchedule::none(),
            )
            .unwrap();
            assert_bitwise(&d, &single, &format!("resilient ranks={n_ranks}"));
            // Snapshot barriers exchange nothing: a fault-free resilient
            // run still measures exactly the planned traffic.
            assert_eq!(d.comm_stats(), plan_communication(&c, n_ranks).unwrap());
            assert_eq!(report.recoveries, 0);
            assert_eq!(report.generations, 1);
            assert!(report.snapshots_planned > 0);
        }
    }

    #[test]
    fn every_rank_and_step_recovers_bitwise() {
        let c = sample_circuit(5);
        let single = nwq_statevec::simulate(&c, &[]).unwrap();
        let n_gates = c.len();
        for n_ranks in [2usize, 4] {
            for rank in 0..n_ranks {
                for gate_step in [0, 1, n_gates / 2, n_gates - 1] {
                    let (d, report) = run_sharded_resilient(
                        &c,
                        &[],
                        n_ranks,
                        &test_opts(),
                        &test_recovery(2),
                        &FaultSchedule::kill(gate_step, rank),
                    )
                    .unwrap();
                    let ctx = format!("ranks={n_ranks} rank={rank} step={gate_step}");
                    assert_bitwise(&d, &single, &ctx);
                    assert_eq!(report.recoveries, 1, "{ctx}");
                    assert_eq!(report.generations, 2, "{ctx}");
                }
            }
        }
    }

    #[test]
    fn recovery_inside_fusion_window_stays_bitwise() {
        // Kill a rank at every step of a circuit whose tail is a fusion
        // window (anchor cx, transparent phases, fused cx): when the
        // replay resumes past the anchor the mirror is gone on every
        // rank, so the fused member must fall back to a symmetric fresh
        // exchange — and still reproduce the fault-free amplitudes
        // bitwise.
        let c = apex_circuit(5);
        let single = nwq_statevec::simulate(&c, &[]).unwrap();
        for n_ranks in [2usize, 4] {
            for gate_step in 0..c.len() {
                let rank = gate_step % n_ranks;
                let (d, report) = run_sharded_resilient(
                    &c,
                    &[],
                    n_ranks,
                    &test_opts(),
                    &test_recovery(2),
                    &FaultSchedule::kill(gate_step, rank),
                )
                .unwrap();
                let ctx = format!("apex ranks={n_ranks} rank={rank} step={gate_step}");
                assert_bitwise(&d, &single, &ctx);
                assert_eq!(report.recoveries, 1, "{ctx}");
            }
        }
    }

    #[test]
    fn mid_exchange_death_recovers_bitwise() {
        let c = sample_circuit(5);
        let single = nwq_statevec::simulate(&c, &[]).unwrap();
        // Gate 2 of the sample circuit (cx(1, 2)) is global at 8 ranks
        // (n_local = 2): the dying rank completes its sends first, so the
        // partner sees the payload arrive and then the channel close.
        let schedule = FaultSchedule {
            deaths: vec![crate::faults::RankDeath {
                gate_step: 3,
                rank: 5,
                mid_exchange: true,
            }],
            ..FaultSchedule::default()
        };
        let (d, report) =
            run_sharded_resilient(&c, &[], 8, &test_opts(), &test_recovery(2), &schedule).unwrap();
        assert_bitwise(&d, &single, "mid-exchange death");
        assert_eq!(report.recoveries, 1);
    }

    #[test]
    fn dropped_messages_trip_the_deadline_and_recover_bitwise() {
        let c = sample_circuit(6);
        let single = nwq_statevec::simulate(&c, &[]).unwrap();
        let schedule = FaultSchedule {
            drops: vec![crate::faults::MessageDrop {
                gate_step: 4,
                rank: 1,
            }],
            ..FaultSchedule::default()
        };
        let (d, report) =
            run_sharded_resilient(&c, &[], 4, &test_opts(), &test_recovery(2), &schedule).unwrap();
        assert_bitwise(&d, &single, "message drop");
        assert_eq!(report.recoveries, 1);
    }

    #[test]
    fn stragglers_under_the_deadline_cause_no_false_positives() {
        let c = sample_circuit(6);
        let single = nwq_statevec::simulate(&c, &[]).unwrap();
        // 30 ms stalls against a 100 ms (×2 retries) deadline: slow, not
        // dead. Recovery firing here would be a false positive.
        let schedule = FaultSchedule {
            delays: vec![
                crate::faults::RankDelay {
                    gate_step: 1,
                    rank: 0,
                    delay_ms: 30,
                },
                crate::faults::RankDelay {
                    gate_step: 5,
                    rank: 3,
                    delay_ms: 30,
                },
            ],
            ..FaultSchedule::default()
        };
        let (d, report) =
            run_sharded_resilient(&c, &[], 4, &test_opts(), &test_recovery(2), &schedule).unwrap();
        assert_bitwise(&d, &single, "straggler");
        assert_eq!(report.recoveries, 0);
        assert_eq!(d.comm_stats(), plan_communication(&c, 4).unwrap());
    }

    #[test]
    fn recovery_without_snapshots_restarts_from_zero_state() {
        let c = sample_circuit(5);
        let single = nwq_statevec::simulate(&c, &[]).unwrap();
        let (d, report) = run_sharded_resilient(
            &c,
            &[],
            4,
            &test_opts(),
            &test_recovery(0),
            &FaultSchedule::kill(c.len() - 1, 2),
        )
        .unwrap();
        assert_bitwise(&d, &single, "no-snapshot restart");
        assert_eq!(report.snapshots_planned, 0);
        assert_eq!(report.recoveries, 1);
        assert_eq!(report.resume_steps, vec![0]);
    }

    #[test]
    fn recovery_budget_exhaustion_surfaces_the_last_failure() {
        let c = sample_circuit(6);
        // More planned deaths than the recovery budget allows.
        let schedule = FaultSchedule {
            deaths: (0..4)
                .map(|k| crate::faults::RankDeath {
                    gate_step: 2 + k,
                    rank: k % 4,
                    mid_exchange: false,
                })
                .collect(),
            ..FaultSchedule::default()
        };
        // Rank 3's death (gate 5) can't fire in generation 1: it is stuck
        // behind rank 2's death at the gate-4 exchange. So at least two
        // generations must fail, and a budget of 1 has to give up.
        let mut recovery = test_recovery(2);
        recovery.max_recoveries = 1;
        let e = run_sharded_resilient(&c, &[], 4, &test_opts(), &recovery, &schedule).unwrap_err();
        assert!(e.to_string().contains("gave up after 1 recoveries"), "{e}");
    }

    #[test]
    fn resilient_rejects_fused_execution() {
        let c = sample_circuit(6);
        let opts = ShardOptions {
            fuse_local: true,
            ..ShardOptions::default()
        };
        let e = run_sharded_resilient(&c, &[], 4, &opts, &test_recovery(2), &FaultSchedule::none())
            .unwrap_err();
        assert!(matches!(e, Error::Invalid(_)), "{e}");
    }

    #[test]
    fn snapshot_dir_mirrors_cuts_on_disk() {
        let c = sample_circuit(6);
        let dir = std::env::temp_dir().join(format!("nwq-shard-snap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut recovery = test_recovery(3);
        recovery.snapshot_dir = Some(dir.clone());
        let (d, report) =
            run_sharded_resilient(&c, &[], 2, &test_opts(), &recovery, &FaultSchedule::none())
                .unwrap();
        assert!(report.snapshots_planned > 0);
        // Version 0 was cut at gate 3; both rank mirrors must exist and
        // round-trip bitwise against nothing less than real amplitudes.
        let r0 = crate::snapshot::read_shard_file(&dir, 0, 0).unwrap();
        let r1 = crate::snapshot::read_shard_file(&dir, 0, 1).unwrap();
        assert_eq!(r0.len() + r1.len(), 1 << c.n_qubits());
        let _ = d;
        let _ = std::fs::remove_dir_all(&dir);
    }
}
