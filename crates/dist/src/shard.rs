//! Real sharded execution: one OS worker thread per rank, true message
//! exchange on global-qubit gates.
//!
//! This is the executing backend behind [`crate::exec::run_distributed`].
//! Where [`crate::partition::DistStateVector`]'s own `apply_*` methods
//! *simulate* multi-rank execution by walking a single `Vec<Vec<C64>>`,
//! this module actually distributes the register: each rank's shard is
//! owned by its own thread, and a gate on a global qubit moves the
//! partner shard through a channel (the in-process analog of an MPI
//! sendrecv — same payload sizes, same message counts, same pairing).
//!
//! The execution is compiled first: the coordinator resolves every gate
//! matrix once, classifies it local/global against the PGAS layout, and
//! precomputes any injected faults so all workers replay one deterministic
//! step list. Workers then run lock-free — the only cross-thread traffic
//! is the amplitude payloads themselves.
//!
//! Bitwise parity with the single-node simulator is a hard invariant
//! (pinned by tests and proptests across 1/2/4/8 shards): the per-shard
//! apply paths in [`nwq_statevec::kernels`] mirror the single-node
//! kernels' arithmetic exactly, including the diagonal fast paths.

use crate::comm::CommStats;
use crate::faults::FaultInjector;
use crate::partition::DistStateVector;
use nwq_circuit::{Circuit, Gate, GateMatrix};
use nwq_common::{Error, Mat2, Mat4, Result, C64, C_ONE, C_ZERO};
use nwq_statevec::kernels;
use nwq_statevec::{ExecPlan, PlanOp};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::Instant;

/// Options for [`run_sharded`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardOptions {
    /// Fuse runs of ≥ 2 consecutive rank-local gates through the compiled
    /// [`ExecPlan`] machinery (template cache + rebind). Fusion multiplies
    /// matrices, so the result is no longer *bitwise* identical to the
    /// per-gate path — the parity harness runs unfused; benches opt in.
    pub fuse_local: bool,
}

/// One entry of the compiled, deterministic step list every worker replays.
#[derive(Clone, Debug)]
enum Step {
    /// Rank-local single-qubit gate.
    Local1(usize, Mat2),
    /// Rank-local two-qubit gate, original argument order (the kernel
    /// normalizes exactly like the single-node path).
    Local2(usize, usize, Mat4),
    /// Fused run of rank-local gates (only with
    /// [`ShardOptions::fuse_local`]).
    LocalFused(Arc<ExecPlan>),
    /// Single-qubit gate on global (rank-id) bit `gbit`: pair exchange.
    Global1 { gbit: usize, m: Mat2 },
    /// Two-qubit gate, global bit `gbit` is the matrix high bit, `lo` is
    /// rank-local: pair exchange.
    GlobalLocal { gbit: usize, lo: usize, m: Mat4 },
    /// Two-qubit gate on two global bits (`bhi` the matrix high bit):
    /// quad all-to-all exchange.
    GlobalGlobal { bhi: usize, blo: usize, m: Mat4 },
    /// Injected fault: overwrite one amplitude of one rank with NaN.
    Corrupt { rank: usize, index: usize },
    /// Injected fault: scale one rank's shard by the drift factor.
    Drift { rank: usize },
    /// Injected fault: the named rank dies (always the final step — the
    /// legacy injector aborted the run at the point the loss fired).
    Lose { rank: usize },
}

/// Compiled execution: the shared step list plus the gate accounting the
/// planner predicts (`plan_communication` must agree with what the workers
/// measure; the gate split is known at compile time).
struct Compiled {
    steps: Arc<Vec<Step>>,
    local_gates: u64,
    global_gates: u64,
}

fn validate_ranks(n_qubits: usize, n_ranks: usize) -> Result<usize> {
    if !n_ranks.is_power_of_two() {
        return Err(Error::Invalid(format!(
            "{n_ranks} ranks: must be a power of two"
        )));
    }
    let n_global = n_ranks.trailing_zeros() as usize;
    if n_global + 2 > n_qubits {
        return Err(Error::Invalid(format!(
            "{n_ranks} ranks leave fewer than 2 local qubits of a {n_qubits}-qubit register"
        )));
    }
    Ok(n_qubits - n_global)
}

/// Classifies and resolves one gate against the PGAS layout.
fn gate_step(gate: &Gate, params: &[f64], n_local: usize) -> Result<(Step, bool)> {
    let step = match gate.matrix(params)? {
        GateMatrix::One(q, m) => {
            if q < n_local {
                Step::Local1(q, m)
            } else {
                Step::Global1 {
                    gbit: q - n_local,
                    m,
                }
            }
        }
        GateMatrix::Two(a, b, m) => match (a < n_local, b < n_local) {
            (true, true) => Step::Local2(a, b, m),
            (false, true) => Step::GlobalLocal {
                gbit: a - n_local,
                lo: b,
                m,
            },
            (true, false) => Step::GlobalLocal {
                gbit: b - n_local,
                lo: a,
                m: m.swap_qubits(),
            },
            (false, false) => {
                // Normalize like the single-node kernel: numerically
                // higher qubit becomes the matrix high bit.
                let (hi, lo, m) = if a > b {
                    (a, b, m)
                } else {
                    (b, a, m.swap_qubits())
                };
                Step::GlobalGlobal {
                    bhi: hi - n_local,
                    blo: lo - n_local,
                    m,
                }
            }
        },
    };
    let global = matches!(
        step,
        Step::Global1 { .. } | Step::GlobalLocal { .. } | Step::GlobalGlobal { .. }
    );
    Ok((step, global))
}

/// Flushes a run of buffered local gates: runs of ≥ 2 compile to a fused
/// plan over the local register, shorter runs stay per-gate.
fn flush_local_run(
    run: &mut Vec<Gate>,
    steps: &mut Vec<Step>,
    params: &[f64],
    n_local: usize,
    n_params: usize,
) -> Result<()> {
    if run.len() >= 2 {
        let mut seg = Circuit::with_params(n_local, n_params);
        for g in run.drain(..) {
            seg.push(g)?;
        }
        let plan = ExecPlan::compile(&seg, params)?;
        steps.push(Step::LocalFused(Arc::new(plan)));
    } else {
        for g in run.drain(..) {
            steps.push(gate_step(&g, params, n_local)?.0);
        }
    }
    Ok(())
}

/// Resolves the circuit into the deterministic step list. When an
/// `injector` is given, faults are drawn *here* — in exactly the order the
/// per-gate legacy path drew them, so seeded runs reproduce — and baked
/// into the list as explicit steps. Fault compilation never fuses (faults
/// interleave per gate).
fn compile_steps(
    circuit: &Circuit,
    params: &[f64],
    n_ranks: usize,
    fuse_local: bool,
    mut injector: Option<&mut FaultInjector>,
) -> Result<Compiled> {
    let n_local = validate_ranks(circuit.n_qubits(), n_ranks)?;
    debug_assert!(injector.is_none() || !fuse_local);
    let part_len = 1usize << n_local;
    let mut steps = Vec::with_capacity(circuit.len());
    let mut local_run: Vec<Gate> = Vec::new();
    let mut local_gates = 0u64;
    let mut global_gates = 0u64;
    for gate in circuit.gates() {
        if let Some(inj) = injector.as_deref_mut() {
            if let Some(rank) = inj.should_lose_rank(n_ranks) {
                // The legacy path aborted before this gate; freezing the
                // step list here reproduces that exactly.
                steps.push(Step::Lose { rank });
                return Ok(Compiled {
                    steps: Arc::new(steps),
                    local_gates,
                    global_gates,
                });
            }
        }
        let (step, is_global) = gate_step(gate, params, n_local)?;
        if is_global {
            global_gates += 1;
            flush_local_run(
                &mut local_run,
                &mut steps,
                params,
                n_local,
                circuit.n_params(),
            )?;
            steps.push(step);
        } else {
            local_gates += 1;
            if fuse_local {
                local_run.push(gate.clone());
            } else {
                steps.push(step);
            }
        }
        if is_global {
            if let Some(inj) = injector.as_deref_mut() {
                if inj.should_corrupt_message() {
                    let rank = inj.pick_index(n_ranks);
                    let index = inj.pick_index(part_len);
                    steps.push(Step::Corrupt { rank, index });
                }
                if inj.should_drift_norm() {
                    let rank = inj.pick_index(n_ranks);
                    steps.push(Step::Drift { rank });
                }
            }
        }
    }
    flush_local_run(
        &mut local_run,
        &mut steps,
        params,
        n_local,
        circuit.n_params(),
    )?;
    Ok(Compiled {
        steps: Arc::new(steps),
        local_gates,
        global_gates,
    })
}

/// Exchange payload: the sending rank's shard, tagged with the step index
/// so a desynchronized mesh is detected instead of silently mixing states.
type Msg = (usize, Vec<C64>);

/// What one worker thread reports back.
struct WorkerReport {
    shard: Vec<C64>,
    messages: u64,
    bytes: u64,
    seconds: f64,
}

fn lost(rank: usize, partner: usize) -> Error {
    Error::Backend(format!(
        "rank {rank}: exchange with rank {partner} failed (shard lost)"
    ))
}

struct Mesh {
    /// `senders[to]` — `None` at the worker's own rank.
    senders: Vec<Option<Sender<Msg>>>,
    /// `receivers[from]` — `None` at the worker's own rank.
    receivers: Vec<Option<Receiver<Msg>>>,
}

impl Mesh {
    fn send(&self, rank: usize, to: usize, step: usize, payload: Vec<C64>) -> Result<()> {
        self.senders[to]
            .as_ref()
            .ok_or_else(|| lost(rank, to))?
            .send((step, payload))
            .map_err(|_| lost(rank, to))
    }

    fn recv(&self, rank: usize, from: usize, step: usize, part_len: usize) -> Result<Vec<C64>> {
        let (tag, payload) = self.receivers[from]
            .as_ref()
            .ok_or_else(|| lost(rank, from))?
            .recv()
            .map_err(|_| lost(rank, from))?;
        if tag != step || payload.len() != part_len {
            return Err(Error::Backend(format!(
                "rank {rank}: desynchronized exchange with rank {from} \
                 (expected step {step}, got {tag})"
            )));
        }
        Ok(payload)
    }
}

/// Applies a compiled local plan to a shard, mirroring
/// `Executor::run_plan_on`'s op loop.
fn apply_plan(shard: &mut [C64], plan: &ExecPlan) {
    for op in plan.ops() {
        match op {
            PlanOp::One(q, m) => kernels::apply_mat2(shard, *q, m),
            PlanOp::Two(hi, lo, m) => kernels::apply_mat4_prenorm(shard, *hi, *lo, m),
            PlanOp::DiagSweep { start, len, .. } => {
                kernels::apply_diag_sweep(shard, &plan.factors()[*start..*start + *len]);
            }
        }
    }
}

/// The body of one rank's worker thread: replay the step list against the
/// owned shard, exchanging through the channel mesh on global steps. Every
/// channel failure maps to [`Error::Backend`] — a dead partner aborts this
/// rank cleanly instead of deadlocking or panicking.
fn worker(rank: usize, n_local: usize, steps: &[Step], mesh: Mesh) -> Result<WorkerReport> {
    let started = Instant::now();
    let part_len = 1usize << n_local;
    let part_bytes = (part_len * 16) as u64;
    let mut shard = vec![C_ZERO; part_len];
    if rank == 0 {
        shard[0] = C_ONE;
    }
    let mut messages = 0u64;
    let mut bytes = 0u64;
    for (s, step) in steps.iter().enumerate() {
        match step {
            Step::Local1(q, m) => kernels::apply_mat2(&mut shard, *q, m),
            Step::Local2(a, b, m) => kernels::apply_mat4(&mut shard, *a, *b, m),
            Step::LocalFused(plan) => apply_plan(&mut shard, plan),
            Step::Global1 { gbit, m } => {
                let partner = rank ^ (1 << gbit);
                mesh.send(rank, partner, s, shard.clone())?;
                messages += 1;
                bytes += part_bytes;
                let other = mesh.recv(rank, partner, s, part_len)?;
                kernels::apply_exchanged_mat2(&mut shard, &other, (rank >> gbit) & 1, m);
            }
            Step::GlobalLocal { gbit, lo, m } => {
                let partner = rank ^ (1 << gbit);
                mesh.send(rank, partner, s, shard.clone())?;
                messages += 1;
                bytes += part_bytes;
                let other = mesh.recv(rank, partner, s, part_len)?;
                kernels::apply_exchanged_mat4_global_local(
                    &mut shard,
                    &other,
                    (rank >> gbit) & 1,
                    *lo,
                    m,
                );
            }
            Step::GlobalGlobal { bhi, blo, m } => {
                let pos = (((rank >> bhi) & 1) << 1) | ((rank >> blo) & 1);
                // Quad mates in ascending bit-position order.
                let mates: Vec<usize> = (0..4)
                    .filter(|&p| p != pos)
                    .map(|p| {
                        let mut mate = rank & !(1 << bhi) & !(1 << blo);
                        mate |= ((p >> 1) & 1) << bhi;
                        mate |= (p & 1) << blo;
                        mate
                    })
                    .collect();
                for &mate in &mates {
                    mesh.send(rank, mate, s, shard.clone())?;
                    messages += 1;
                    bytes += part_bytes;
                }
                let mut others = Vec::with_capacity(3);
                for &mate in &mates {
                    others.push(mesh.recv(rank, mate, s, part_len)?);
                }
                kernels::apply_exchanged_mat4_global_global(
                    &mut shard,
                    [&others[0], &others[1], &others[2]],
                    pos,
                    m,
                );
            }
            Step::Corrupt { rank: r, index } => {
                if *r == rank {
                    shard[*index] = C64::new(f64::NAN, f64::NAN);
                }
            }
            Step::Drift { rank: r } => {
                if *r == rank {
                    for a in shard.iter_mut() {
                        *a = *a * 1.001;
                    }
                }
            }
            Step::Lose { rank: r } => {
                if *r == rank {
                    return Err(Error::Backend(format!(
                        "rank {r} lost during distributed execution"
                    )));
                }
            }
        }
    }
    Ok(WorkerReport {
        shard,
        messages,
        bytes,
        seconds: started.elapsed().as_secs_f64(),
    })
}

/// Runs `circuit` on `n_ranks` real shards, one OS thread per rank, and
/// reassembles the distributed state. Unfused execution (the default) is
/// bitwise identical to [`nwq_statevec::simulate`].
pub fn run_sharded(
    circuit: &Circuit,
    params: &[f64],
    n_ranks: usize,
    opts: &ShardOptions,
) -> Result<DistStateVector> {
    let compiled = compile_steps(circuit, params, n_ranks, opts.fuse_local, None)?;
    run_compiled(circuit.n_qubits(), n_ranks, compiled)
}

/// [`run_sharded`] with faults drawn from `injector` at compile time (in
/// the legacy per-gate order, so seeded schedules reproduce) and replayed
/// by the owning workers. Always unfused.
pub fn run_sharded_faulty(
    circuit: &Circuit,
    params: &[f64],
    n_ranks: usize,
    injector: &mut FaultInjector,
) -> Result<DistStateVector> {
    let compiled = compile_steps(circuit, params, n_ranks, false, Some(injector))?;
    run_compiled(circuit.n_qubits(), n_ranks, compiled)
}

fn run_compiled(n_qubits: usize, n_ranks: usize, compiled: Compiled) -> Result<DistStateVector> {
    let n_local = n_qubits - n_ranks.trailing_zeros() as usize;
    // Build the (from, to) channel mesh and hand each worker its row.
    let mut senders: Vec<Vec<Option<Sender<Msg>>>> = (0..n_ranks)
        .map(|_| (0..n_ranks).map(|_| None).collect())
        .collect();
    let mut receivers: Vec<Vec<Option<Receiver<Msg>>>> = (0..n_ranks)
        .map(|_| (0..n_ranks).map(|_| None).collect())
        .collect();
    for from in 0..n_ranks {
        for to in 0..n_ranks {
            if from != to {
                let (tx, rx) = channel();
                senders[from][to] = Some(tx);
                receivers[to][from] = Some(rx);
            }
        }
    }
    let mut handles = Vec::with_capacity(n_ranks);
    for (rank, (sends, recvs)) in senders.drain(..).zip(receivers.drain(..)).enumerate() {
        let steps = Arc::clone(&compiled.steps);
        let mesh = Mesh {
            senders: sends,
            receivers: recvs,
        };
        let handle = std::thread::Builder::new()
            .name(format!("nwq-dist-rank{rank}"))
            .spawn(move || worker(rank, n_local, &steps, mesh))
            .map_err(|e| Error::Backend(format!("failed to spawn rank {rank} worker: {e}")))?;
        handles.push(handle);
    }
    let mut reports = Vec::with_capacity(n_ranks);
    let mut first_error: Option<Error> = None;
    let mut loss_error: Option<Error> = None;
    for (rank, handle) in handles.into_iter().enumerate() {
        match handle.join() {
            Ok(Ok(report)) => reports.push(report),
            Ok(Err(e)) => {
                // A deliberate rank loss is the root cause; partner-side
                // exchange failures are its fallout.
                if matches!(&e, Error::Backend(m) if m.contains("lost during distributed"))
                    && loss_error.is_none()
                {
                    loss_error = Some(e);
                } else if first_error.is_none() {
                    first_error = Some(e);
                }
            }
            Err(_) => {
                if first_error.is_none() {
                    first_error = Some(Error::Backend(format!(
                        "rank {rank} worker panicked during distributed execution"
                    )));
                }
            }
        }
    }
    if let Some(e) = loss_error.or(first_error) {
        return Err(e);
    }
    let mut stats = CommStats {
        messages: 0,
        bytes: 0,
        global_gates: compiled.global_gates,
        local_gates: compiled.local_gates,
    };
    let mut partitions = Vec::with_capacity(n_ranks);
    for report in reports {
        stats.messages += report.messages;
        stats.bytes += report.bytes;
        nwq_telemetry::histogram_record("dist.rank_seconds", report.seconds);
        nwq_telemetry::histogram_record("dist.rank_messages", report.messages as f64);
        partitions.push(report.shard);
    }
    nwq_telemetry::counter_add("dist.messages", stats.messages);
    nwq_telemetry::counter_add("dist.bytes", stats.bytes);
    nwq_telemetry::counter_add("dist.local_gates", stats.local_gates);
    nwq_telemetry::counter_add("dist.global_gates", stats.global_gates);
    Ok(DistStateVector::from_parts(
        n_qubits, n_local, partitions, stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::plan_communication;
    use nwq_circuit::Circuit;

    fn sample_circuit(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 1..n {
            c.cx(q - 1, q);
        }
        c.rz(n - 1, 0.7).ry(0, -0.4).swap(0, n - 1);
        c
    }

    fn assert_bitwise(d: &DistStateVector, single: &nwq_statevec::StateVector, ctx: &str) {
        let gathered = d.gather();
        for (i, (a, b)) in gathered
            .amplitudes()
            .iter()
            .zip(single.amplitudes())
            .enumerate()
        {
            assert_eq!(a.re.to_bits(), b.re.to_bits(), "{ctx} amp {i}");
            assert_eq!(a.im.to_bits(), b.im.to_bits(), "{ctx} amp {i}");
        }
    }

    #[test]
    fn sharded_run_bitwise_matches_single_node() {
        let c = sample_circuit(6);
        let single = nwq_statevec::simulate(&c, &[]).unwrap();
        for n_ranks in [1usize, 2, 4, 8] {
            let d = run_sharded(&c, &[], n_ranks, &ShardOptions::default()).unwrap();
            assert_bitwise(&d, &single, &format!("ranks={n_ranks}"));
        }
    }

    #[test]
    fn sharded_comm_matches_plan() {
        let c = sample_circuit(6);
        for n_ranks in [1usize, 2, 4, 8] {
            let d = run_sharded(&c, &[], n_ranks, &ShardOptions::default()).unwrap();
            let planned = plan_communication(&c, n_ranks).unwrap();
            assert_eq!(d.comm_stats(), planned, "ranks={n_ranks}");
        }
    }

    #[test]
    fn fused_local_run_matches_single_node_approximately() {
        // Fusion multiplies matrices, so approx (not bitwise) parity.
        let c = sample_circuit(6);
        let single = nwq_statevec::simulate(&c, &[]).unwrap();
        for n_ranks in [2usize, 4] {
            let d = run_sharded(&c, &[], n_ranks, &ShardOptions { fuse_local: true }).unwrap();
            let gathered = d.gather();
            for (a, b) in gathered.amplitudes().iter().zip(single.amplitudes()) {
                assert!(a.approx_eq(*b, 1e-10), "ranks={n_ranks}");
            }
            // Fusion must not change the communication: exchanges happen on
            // exactly the same global gates.
            assert_eq!(d.comm_stats(), plan_communication(&c, n_ranks).unwrap());
        }
    }

    #[test]
    fn injected_rank_loss_aborts_with_the_legacy_error() {
        let c = sample_circuit(5);
        let mut inj = FaultInjector::new(crate::faults::FaultSpec {
            rank_loss: 1.0,
            seed: 5,
            ..Default::default()
        });
        let e = run_sharded_faulty(&c, &[], 4, &mut inj).unwrap_err();
        assert!(matches!(e, Error::Backend(_)), "{e}");
        assert!(e.is_transient());
        assert!(e.to_string().contains("lost during distributed execution"));
        assert_eq!(inj.stats().rank_losses, 1);
    }

    #[test]
    fn zero_rate_injector_is_bitwise_invisible() {
        let c = sample_circuit(6);
        let clean = run_sharded(&c, &[], 4, &ShardOptions::default()).unwrap();
        let mut inj = FaultInjector::new(crate::faults::FaultSpec::default());
        let faulty = run_sharded_faulty(&c, &[], 4, &mut inj).unwrap();
        assert_bitwise(&faulty, &clean.gather(), "zero-rate faults");
        assert_eq!(inj.stats().total(), 0);
    }

    #[test]
    fn empty_circuit_yields_zero_state() {
        let c = Circuit::new(4);
        let d = run_sharded(&c, &[], 4, &ShardOptions::default()).unwrap();
        assert!((d.gather().probability(0) - 1.0).abs() < 1e-15);
        assert_eq!(d.comm_stats().messages, 0);
    }
}
