//! Communication accounting for the simulated multi-rank execution.

use nwq_circuit::Circuit;
use nwq_common::{Error, Result};
use std::ops::AddAssign;

/// Counters for simulated inter-rank communication. This is the quantity
/// that dominates distributed statevector simulation (SV-Sim's PGAS
/// design): gates on *global* qubits (those encoded in the rank id) force
/// partner ranks to exchange their full partitions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Point-to-point messages exchanged.
    pub messages: u64,
    /// Payload bytes moved between ranks.
    pub bytes: u64,
    /// Gates that required communication (≥ 1 global qubit).
    pub global_gates: u64,
    /// Gates that were entirely rank-local.
    pub local_gates: u64,
    /// Messages the naive full-exchange pattern would have sent but the
    /// θ-aware lean executor elided structurally: diagonal global gates
    /// (local phase sweep), block-local application, and the skipped
    /// sub-blocks of block-structured global-global gates.
    pub exchanges_elided: u64,
    /// Lean-pattern pair exchanges avoided by exchange *fusion*:
    /// consecutive same-class exchanges separated only by global phases
    /// reuse the first exchange's partner mirror.
    pub exchanges_fused: u64,
    /// Naive payload bytes minus actually-moved bytes (covers elision,
    /// fusion, and half-shard payloads).
    pub bytes_saved: u64,
}

impl CommStats {
    /// Average message size in bytes (0 when no messages were sent).
    pub fn avg_message_bytes(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.bytes as f64 / self.messages as f64
        }
    }

    /// Fraction of gates that needed communication.
    pub fn global_fraction(&self) -> f64 {
        let total = self.global_gates + self.local_gates;
        if total == 0 {
            0.0
        } else {
            self.global_gates as f64 / total as f64
        }
    }
}

impl AddAssign for CommStats {
    fn add_assign(&mut self, rhs: CommStats) {
        self.messages += rhs.messages;
        self.bytes += rhs.bytes;
        self.global_gates += rhs.global_gates;
        self.local_gates += rhs.local_gates;
        self.exchanges_elided += rhs.exchanges_elided;
        self.exchanges_fused += rhs.exchanges_fused;
        self.bytes_saved += rhs.bytes_saved;
    }
}

/// Predicts the communication a circuit will generate on `n_ranks` ranks
/// *without executing it* — used for scaling studies beyond locally
/// simulable sizes. Must agree exactly with the executing path (pinned by
/// tests), which includes rejecting exactly the rank counts the executor
/// rejects: `n_ranks` must be a power of two small enough that every rank
/// keeps at least 2 local qubits.
///
/// This is the θ-aware plan for the default lean executor: it resolves
/// every gate's bound matrix, classifies it against the PGAS layout
/// (diagonal → elided, block → half-payload or sub-block exchange), and
/// marks fusion windows — the same per-step pass the executor compiles,
/// so "measured == planned" is a structural identity on fault-free runs.
/// Symbolic (unbound) circuits are planned against a representative
/// generic binding; pass concrete angles via [`plan_communication_with`]
/// when you have them. The naive full-exchange pattern
/// ([`crate::ShardOptions::lean_exchange`] = false) is predicted by
/// [`plan_communication_naive`].
pub fn plan_communication(circuit: &Circuit, n_ranks: usize) -> Result<CommStats> {
    plan_communication_with(circuit, &[], n_ranks)
}

/// [`plan_communication`] against a concrete parameter binding — the plan
/// the lean executor realizes when running `circuit` with `params`.
pub fn plan_communication_with(
    circuit: &Circuit,
    params: &[f64],
    n_ranks: usize,
) -> Result<CommStats> {
    crate::shard::plan_lean(circuit, params, n_ranks)
}

/// Predicts the *naive* exchange pattern (lean execution disabled): every
/// global gate moves full partitions pairwise within its 2^globals-rank
/// group, regardless of matrix structure. This was the only pattern (and
/// the only planner) before θ-aware planning; it remains the baseline that
/// `bytes_saved` is measured against. (The planner used to clamp
/// `n_local` to 0 for degenerate rank counts and happily report
/// full-partition pairwise traffic for partitions that cannot exist —
/// both planners reject those, exactly like the executor.)
pub fn plan_communication_naive(circuit: &Circuit, n_ranks: usize) -> Result<CommStats> {
    if !n_ranks.is_power_of_two() {
        return Err(Error::Invalid(format!(
            "{n_ranks} ranks: rank count must be a power of two"
        )));
    }
    let n_global = n_ranks.trailing_zeros() as usize;
    let n_qubits = circuit.n_qubits();
    if n_global + 2 > n_qubits {
        return Err(Error::Invalid(format!(
            "{n_ranks} ranks leave fewer than 2 local qubits of a {n_qubits}-qubit register"
        )));
    }
    let n_local = n_qubits - n_global;
    let part_bytes = 16u64 << n_local;
    let mut stats = CommStats::default();
    for g in circuit.gates() {
        let globals = g.qubits().iter().filter(|&&q| q >= n_local).count() as u32;
        if globals == 0 {
            stats.local_gates += 1;
        } else {
            stats.global_gates += 1;
            // Each group of 2^globals ranks exchanges pairwise: every rank
            // sends its partition to each of the (2^globals − 1) partners.
            let group = 1u64 << globals;
            let msgs = n_ranks as u64 / group * group * (group - 1);
            stats.messages += msgs;
            stats.bytes += msgs * part_bytes;
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwq_circuit::Circuit;

    #[test]
    fn local_only_circuit_has_no_comm() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).rz(1, 0.3);
        let s = plan_communication(&c, 4).unwrap(); // 2 global qubits: 2 and 3
        assert_eq!(s.messages, 0);
        assert_eq!(s.local_gates, 3);
        assert_eq!(s.global_fraction(), 0.0);
    }

    #[test]
    fn global_single_qubit_gate_pairs_ranks() {
        let mut c = Circuit::new(4);
        c.h(3); // with 4 ranks, qubits 2,3 are global
        let s = plan_communication(&c, 4).unwrap();
        // 2 groups of 2 ranks, each rank sends to 1 partner: 4 messages.
        // H is dense, so lean and naive agree.
        assert_eq!(s.messages, 4);
        assert_eq!(s.bytes, 4 * 16 * 4); // partitions of 2^2 amplitudes
        assert_eq!(s.global_gates, 1);
        assert_eq!(s, plan_communication_naive(&c, 4).unwrap());
    }

    #[test]
    fn diagonal_global_gate_moves_zero_bytes() {
        let mut c = Circuit::new(4);
        c.rz(3, 0.7).cz(2, 3); // both diagonal, both on global qubits
        let s = plan_communication(&c, 4).unwrap();
        assert_eq!(s.messages, 0);
        assert_eq!(s.bytes, 0);
        assert_eq!(s.global_gates, 2);
        // rz: 1 naive send × 4 ranks; cz: 3 naive sends × 4 ranks.
        assert_eq!(s.exchanges_elided, 4 + 12);
        assert_eq!(s.bytes_saved, (4 + 12) * 16 * 4);
        let naive = plan_communication_naive(&c, 4).unwrap();
        assert_eq!(naive.messages, 4 + 12);
        assert_eq!(s.bytes_saved, naive.bytes);
    }

    #[test]
    fn global_global_two_qubit_gate_quads_ranks() {
        let mut c = Circuit::new(4);
        c.cx(2, 3);
        // Naive: one group of 4 ranks, each sends to 3 partners.
        let naive = plan_communication_naive(&c, 4).unwrap();
        assert_eq!(naive.messages, 12);
        assert_eq!(naive.global_gates, 1);
        assert_eq!(naive.exchanges_elided, 0);
        // Lean: CX's control-off sub-block is the identity, so only the
        // two control-on ranks pair-exchange across the target bit.
        let lean = plan_communication(&c, 4).unwrap();
        assert_eq!(lean.messages, 2);
        assert_eq!(lean.bytes, 2 * 16 * 4);
        assert_eq!(lean.exchanges_elided, 10);
        assert_eq!(lean.bytes_saved, 10 * 16 * 4);
    }

    #[test]
    fn fused_exchange_window_shares_one_exchange() {
        // cx·rz·cx at a global-target apex: the rz is a global phase, so
        // the second cx reuses the first exchange's mirror. (A *global*
        // control would be block-local — no exchange at all.)
        let mut c = Circuit::new(4);
        c.cx(0, 3).rz(3, 0.5).cx(0, 3);
        let lean = plan_communication(&c, 4).unwrap();
        let naive = plan_communication_naive(&c, 4).unwrap();
        assert_eq!(naive.messages, 3 * 4);
        // Each cx is a half-shard pair exchange; the second is fused.
        assert_eq!(lean.messages, 4);
        assert_eq!(lean.bytes, 4 * (16 * 4) / 2);
        assert_eq!(lean.exchanges_fused, 4);
        // rz elided on every rank.
        assert_eq!(lean.exchanges_elided, 4);
        assert_eq!(
            lean.bytes_saved,
            naive.bytes - lean.bytes,
            "saved must complement moved: {lean:?}"
        );
    }

    #[test]
    fn more_ranks_more_comm() {
        let mut c = Circuit::new(10);
        for q in 0..10 {
            c.h(q);
        }
        let s2 = plan_communication(&c, 2).unwrap();
        let s8 = plan_communication(&c, 8).unwrap();
        assert!(s8.global_gates > s2.global_gates);
        assert!(s8.messages > s2.messages);
    }

    #[test]
    fn single_rank_never_communicates() {
        let mut c = Circuit::new(6);
        c.h(5).cx(4, 5).swap(0, 5);
        let s = plan_communication(&c, 1).unwrap();
        assert_eq!(s.messages, 0);
        assert_eq!(s.global_gates, 0);
        assert_eq!(s.local_gates, 3);
    }

    #[test]
    fn accumulation() {
        let mut a = CommStats {
            messages: 2,
            bytes: 64,
            global_gates: 1,
            local_gates: 3,
            exchanges_elided: 5,
            exchanges_fused: 1,
            bytes_saved: 128,
        };
        a += CommStats {
            messages: 1,
            bytes: 32,
            global_gates: 1,
            local_gates: 0,
            exchanges_elided: 2,
            exchanges_fused: 3,
            bytes_saved: 64,
        };
        assert_eq!(a.messages, 3);
        assert_eq!(a.bytes, 96);
        assert_eq!(a.exchanges_elided, 7);
        assert_eq!(a.exchanges_fused, 4);
        assert_eq!(a.bytes_saved, 192);
        assert!((a.avg_message_bytes() - 32.0).abs() < 1e-12);
        assert!((a.global_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn non_power_of_two_ranks_rejected() {
        let c = Circuit::new(4);
        for bad in [0usize, 3, 6, 12] {
            let e = plan_communication(&c, bad).unwrap_err();
            assert!(
                matches!(e, nwq_common::Error::Invalid(_)),
                "{bad} ranks: {e}"
            );
        }
    }

    /// Regression for the degenerate-rank divergence: with
    /// `n_ranks ∈ {2^n_qubits, 2^(n_qubits+1)}` the executor refuses to
    /// build partitions (fewer than 2 local qubits per rank), but the
    /// planner used to clamp `n_local` and report full pairwise traffic
    /// for 1-amplitude "partitions". Planner and executor must agree in
    /// this regime too: both reject.
    #[test]
    fn degenerate_rank_counts_agree_with_executor() {
        for n_qubits in [3usize, 4, 5] {
            let mut c = Circuit::new(n_qubits);
            for q in 0..n_qubits {
                c.h(q);
            }
            for n_ranks in [1usize << n_qubits, 1usize << (n_qubits + 1)] {
                let planned = plan_communication(&c, n_ranks);
                let executed = crate::exec::run_distributed(&c, &[], n_ranks);
                assert!(
                    planned.is_err(),
                    "planner must reject {n_ranks} ranks on {n_qubits} qubits"
                );
                assert!(
                    executed.is_err(),
                    "executor must reject {n_ranks} ranks on {n_qubits} qubits"
                );
                assert!(matches!(
                    planned.unwrap_err(),
                    nwq_common::Error::Invalid(_)
                ));
            }
            // The boundary case (exactly 2 local qubits) is valid on both
            // sides and must agree exactly.
            if n_qubits >= 4 {
                let n_ranks = 1usize << (n_qubits - 2);
                let planned = plan_communication(&c, n_ranks).unwrap();
                let (_, measured) = crate::exec::run_and_gather(&c, &[], n_ranks).unwrap();
                assert_eq!(planned, measured, "{n_qubits} qubits / {n_ranks} ranks");
            }
        }
    }
}
