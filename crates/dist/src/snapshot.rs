//! Versioned shard snapshots: the consistent cuts that make sharded
//! execution survivable.
//!
//! The resilient compiler ([`crate::shard::run_sharded_resilient`]) inserts
//! snapshot barriers into the deterministic step tape at fixed tape
//! indices. Because every pair-exchange is *contained within a single
//! step* (send + receive of the same step tag), a barrier at tape index
//! `s` has no in-flight messages crossing it: the set of shards deposited
//! for one version is a consistent global cut by construction. Each rank
//! deposits a bitwise copy of its shard when it reaches the barrier; a
//! version is **complete** once all ranks have deposited, and recovery
//! only ever restores complete versions — a version the dying rank never
//! reached simply stays partial and is ignored.
//!
//! The store is in-memory first (restore must be fast — it is on the
//! recovery critical path) with an optional on-disk mirror of raw
//! little-endian `f64` pairs per shard, so a checkpoint survives the
//! coordinator process too.

use nwq_common::{Error, Result, C64};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// One restored consistent cut: the tape can be replayed from
/// `resume_step` with these shards as the initial state.
#[derive(Clone, Debug)]
pub struct RestoredCut {
    /// Snapshot version (0-based, in tape order).
    pub version: usize,
    /// Tape index of the snapshot barrier itself.
    pub step: usize,
    /// Tape index execution resumes from (the step after the barrier).
    pub resume_step: usize,
    /// One bitwise shard copy per rank.
    pub shards: Vec<Vec<C64>>,
}

struct Slot {
    step: usize,
    shards: Vec<Option<Vec<C64>>>,
    deposited: usize,
}

/// Versioned, rank-indexed shard snapshot store shared by all workers of a
/// resilient run (and across its recovery generations).
pub struct SnapshotStore {
    n_ranks: usize,
    /// Complete versions kept in memory (older ones are pruned so a long
    /// tape doesn't hold every historical cut).
    keep: usize,
    dir: Option<PathBuf>,
    inner: Mutex<BTreeMap<usize, Slot>>,
}

impl SnapshotStore {
    /// A store for `n_ranks` shards keeping the newest `keep` complete
    /// versions in memory, optionally mirroring each deposit to `dir`.
    pub fn new(n_ranks: usize, keep: usize, dir: Option<PathBuf>) -> Self {
        SnapshotStore {
            n_ranks,
            keep: keep.max(1),
            dir,
            inner: Mutex::new(BTreeMap::new()),
        }
    }

    /// Deposits rank `rank`'s shard for snapshot `version` taken at tape
    /// index `step`. Re-deposits during replay overwrite bitwise-identical
    /// data (the tape is deterministic), so idempotence is free.
    pub fn deposit(&self, version: usize, step: usize, rank: usize, shard: &[C64]) -> Result<()> {
        if let Some(dir) = &self.dir {
            write_shard_file(dir, version, rank, shard)?;
        }
        let mut inner = self.inner.lock().map_err(|_| poisoned())?;
        let slot = inner.entry(version).or_insert_with(|| Slot {
            step,
            shards: (0..self.n_ranks).map(|_| None).collect(),
            deposited: 0,
        });
        if slot.step != step {
            return Err(Error::Backend(format!(
                "snapshot v{version}: rank {rank} deposited at step {step}, \
                 but the version was opened at step {}",
                slot.step
            )));
        }
        if slot.shards[rank].is_none() {
            slot.deposited += 1;
        }
        slot.shards[rank] = Some(shard.to_vec());
        let completed = slot.deposited == self.n_ranks;
        if completed {
            nwq_telemetry::counter_add("resilience.shard_snapshots", 1);
            // Prune: keep only the newest `keep` complete versions (and
            // any newer, still-partial ones).
            let complete: Vec<usize> = inner
                .iter()
                .filter(|(_, s)| s.deposited == self.n_ranks)
                .map(|(&v, _)| v)
                .collect();
            if complete.len() > self.keep {
                for &v in &complete[..complete.len() - self.keep] {
                    inner.remove(&v);
                }
            }
        }
        Ok(())
    }

    /// The newest complete consistent cut, cloned out for respawning
    /// workers. `None` means recovery must restart from the zero state.
    pub fn last_complete(&self) -> Result<Option<RestoredCut>> {
        let inner = self.inner.lock().map_err(|_| poisoned())?;
        let Some((&version, slot)) = inner
            .iter()
            .rev()
            .find(|(_, s)| s.deposited == self.n_ranks)
        else {
            return Ok(None);
        };
        let shards = slot
            .shards
            .iter()
            .map(|s| s.as_ref().expect("complete slot has all shards").clone())
            .collect();
        Ok(Some(RestoredCut {
            version,
            step: slot.step,
            resume_step: slot.step + 1,
            shards,
        }))
    }

    /// Number of complete versions currently held in memory.
    pub fn complete_in_memory(&self) -> usize {
        self.inner
            .lock()
            .map(|inner| {
                inner
                    .values()
                    .filter(|s| s.deposited == self.n_ranks)
                    .count()
            })
            .unwrap_or(0)
    }
}

fn poisoned() -> Error {
    Error::Backend("snapshot store mutex poisoned by a panicking worker".into())
}

fn shard_path(dir: &Path, version: usize, rank: usize) -> PathBuf {
    dir.join(format!("snap_v{version}_r{rank}.bin"))
}

fn write_shard_file(dir: &Path, version: usize, rank: usize, shard: &[C64]) -> Result<()> {
    std::fs::create_dir_all(dir)
        .map_err(|e| Error::Backend(format!("snapshot dir {}: {e}", dir.display())))?;
    let mut bytes = Vec::with_capacity(shard.len() * 16);
    for a in shard {
        bytes.extend_from_slice(&a.re.to_le_bytes());
        bytes.extend_from_slice(&a.im.to_le_bytes());
    }
    let path = shard_path(dir, version, rank);
    std::fs::write(&path, bytes)
        .map_err(|e| Error::Backend(format!("snapshot write {}: {e}", path.display())))
}

/// Reads one on-disk shard mirror back (raw little-endian `f64` pairs);
/// the round trip is bitwise.
pub fn read_shard_file(dir: &Path, version: usize, rank: usize) -> Result<Vec<C64>> {
    let path = shard_path(dir, version, rank);
    let bytes = std::fs::read(&path)
        .map_err(|e| Error::Backend(format!("snapshot read {}: {e}", path.display())))?;
    if bytes.len() % 16 != 0 {
        return Err(Error::Backend(format!(
            "snapshot {}: truncated ({} bytes)",
            path.display(),
            bytes.len()
        )));
    }
    let mut shard = Vec::with_capacity(bytes.len() / 16);
    for chunk in bytes.chunks_exact(16) {
        let re = f64::from_le_bytes(chunk[..8].try_into().expect("8-byte chunk"));
        let im = f64::from_le_bytes(chunk[8..].try_into().expect("8-byte chunk"));
        shard.push(C64::new(re, im));
    }
    Ok(shard)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard_of(rank: usize, len: usize) -> Vec<C64> {
        (0..len)
            .map(|i| C64::new(rank as f64 + 0.125 * i as f64, -(i as f64) / 3.0))
            .collect()
    }

    #[test]
    fn partial_versions_are_never_restored() {
        let store = SnapshotStore::new(2, 2, None);
        store.deposit(0, 5, 0, &shard_of(0, 4)).unwrap();
        assert!(store.last_complete().unwrap().is_none());
        store.deposit(0, 5, 1, &shard_of(1, 4)).unwrap();
        let cut = store.last_complete().unwrap().expect("complete");
        assert_eq!((cut.version, cut.step, cut.resume_step), (0, 5, 6));
        assert_eq!(cut.shards[1], shard_of(1, 4));
    }

    #[test]
    fn newest_complete_wins_and_old_versions_are_pruned() {
        let store = SnapshotStore::new(2, 1, None);
        for v in 0..3 {
            store.deposit(v, 10 * v + 1, 0, &shard_of(v, 4)).unwrap();
            store
                .deposit(v, 10 * v + 1, 1, &shard_of(v + 8, 4))
                .unwrap();
        }
        // A newer partial version must not shadow the complete one.
        store.deposit(3, 31, 0, &shard_of(99, 4)).unwrap();
        let cut = store.last_complete().unwrap().expect("complete");
        assert_eq!(cut.version, 2);
        assert_eq!(cut.shards[0], shard_of(2, 4));
        assert_eq!(store.complete_in_memory(), 1);
    }

    #[test]
    fn redeposit_is_idempotent() {
        let store = SnapshotStore::new(2, 2, None);
        store.deposit(0, 3, 0, &shard_of(0, 4)).unwrap();
        store.deposit(0, 3, 1, &shard_of(1, 4)).unwrap();
        // Replay after recovery re-reaches the barrier with identical data.
        store.deposit(0, 3, 0, &shard_of(0, 4)).unwrap();
        let cut = store.last_complete().unwrap().expect("complete");
        assert_eq!(cut.shards[0], shard_of(0, 4));
        // Same version at a different step is a desync, not a replay.
        assert!(store.deposit(0, 4, 0, &shard_of(0, 4)).is_err());
    }

    #[test]
    fn on_disk_mirror_round_trips_bitwise() {
        let dir = std::env::temp_dir().join(format!("nwq-snap-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SnapshotStore::new(2, 2, Some(dir.clone()));
        let shard = vec![
            C64::new(0.1, -0.0),
            C64::new(f64::MIN_POSITIVE, 1.0 / 3.0),
            C64::new(-2.5e-17, 0.0),
            C64::new(1.0, -1.0),
        ];
        store.deposit(4, 9, 1, &shard).unwrap();
        let back = read_shard_file(&dir, 4, 1).unwrap();
        assert_eq!(back.len(), shard.len());
        for (a, b) in back.iter().zip(&shard) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
