//! # nwq-dist
//!
//! Multi-rank (PGAS-style) distributed statevector execution — the
//! substrate standing in for NWQ-Sim's multi-node MPI/NVSHMEM backends on
//! Perlmutter/Summit:
//!
//! - [`shard`] — REAL sharded execution: one OS worker thread per rank,
//!   true partner-exchange messages on global-qubit gates, bitwise
//!   identical to the single-node simulator on the unfused path;
//! - [`partition::DistStateVector`] — the partitioned amplitude container
//!   (its own `apply_*` methods remain as the single-threaded reference
//!   implementation the sharded path is checked against);
//! - [`energy`] — gather-free shard-parallel expectation values, so
//!   registers past single-allocation size can still be read out;
//! - [`comm`] — communication counters and the non-executing planner
//!   (pinned to agree exactly with the measured exchange counts);
//! - [`costmodel`] — α–β latency/bandwidth model with Perlmutter-like
//!   defaults, kept as a predictor checked against measured counters;
//! - [`exec`] — circuit execution and gather-based verification (bit-exact
//!   against the single-node simulator for every rank count);
//! - [`faults`] — deterministic seeded fault injection (lost ranks,
//!   corrupted exchanges, norm drift, failed evaluations, recoverable
//!   rank deaths / message drops / stragglers) used to exercise the
//!   workspace's recovery paths;
//! - [`snapshot`] — versioned consistent-cut shard snapshots backing
//!   [`shard::run_sharded_resilient`]'s bitwise rank-loss recovery.

#![warn(missing_docs)]

pub mod comm;
pub mod costmodel;
pub mod energy;
pub mod exec;
pub mod faults;
pub mod partition;
pub mod remap;
pub mod shard;
pub mod snapshot;

pub use comm::{plan_communication, plan_communication_naive, plan_communication_with, CommStats};
pub use costmodel::CostModel;
pub use energy::{distributed_energy, run_distributed_energy, run_resilient_energy};
pub use exec::{
    run_and_gather, run_distributed, run_distributed_faulty, run_distributed_resilient,
};
pub use faults::{
    FaultInjector, FaultSchedule, FaultSpec, FaultStats, MessageDrop, RankDeath, RankDelay,
};
pub use partition::DistStateVector;
pub use remap::{plan_layout, run_distributed_with_layout};
pub use shard::{
    run_sharded, run_sharded_faulty, run_sharded_resilient, RecoveryOptions, RecoveryReport,
    ShardOptions,
};
pub use snapshot::SnapshotStore;

#[cfg(test)]
mod proptests {
    use crate::exec::run_and_gather;
    use nwq_circuit::Circuit;
    use proptest::prelude::*;

    fn arb_circuit(n: usize, max_len: usize) -> impl Strategy<Value = Circuit> {
        let gate = (0..8u8, 0..n, 1..n.max(2), -3.0..3.0f64);
        proptest::collection::vec(gate, 0..max_len).prop_map(move |specs| {
            let mut c = Circuit::new(n);
            for (kind, q, dq, angle) in specs {
                let q2 = (q + dq) % n;
                match kind {
                    0 => c.h(q),
                    1 => c.x(q),
                    2 => c.rz(q, angle),
                    3 => c.ry(q, angle),
                    4 if q2 != q => c.cx(q, q2),
                    5 if q2 != q => c.cz(q, q2),
                    6 if q2 != q => c.rzz(q, q2, angle),
                    7 if q2 != q => c.swap(q, q2),
                    _ => c.rx(q, angle),
                };
            }
            c
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn distributed_bit_exact_vs_single_node(
            c in (5usize..=6).prop_flat_map(|n| arb_circuit(n, 20))
        ) {
            // The real sharded run must be BITWISE identical to the
            // single-node simulator for every shard count — same kernel
            // arithmetic, same diagonal fast paths, exchange and all.
            let single = nwq_statevec::simulate(&c, &[]).unwrap();
            for n_ranks in [1usize, 2, 4, 8] {
                let (gathered, stats) = run_and_gather(&c, &[], n_ranks).unwrap();
                for (a, b) in gathered.amplitudes().iter().zip(single.amplitudes()) {
                    prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
                    prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
                }
                // Measured exchange traffic equals the non-executing plan.
                let plan = crate::comm::plan_communication(&c, n_ranks).unwrap();
                prop_assert_eq!(stats, plan);
            }
        }

        #[test]
        fn zero_rate_faulty_run_bit_exact(c in arb_circuit(5, 16)) {
            // A zero-rate FaultInjector consumes its RNG draws but must be
            // bitwise invisible to the executed state.
            let single = nwq_statevec::simulate(&c, &[]).unwrap();
            for n_ranks in [2usize, 4, 8] {
                let mut inj = crate::FaultInjector::new(crate::FaultSpec::default());
                let d = crate::run_distributed_faulty(&c, &[], n_ranks, &mut inj).unwrap();
                prop_assert_eq!(inj.stats().total(), 0);
                for (a, b) in d.gather().amplitudes().iter().zip(single.amplitudes()) {
                    prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
                    prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
                }
            }
        }

        #[test]
        fn lean_and_full_exchange_agree_bitwise(
            c in (5usize..=6).prop_flat_map(|n| arb_circuit(n, 20)),
            kill_seed in 0usize..1000,
        ) {
            // The exchange-lean executor (elision + half-shard payloads +
            // fusion) and the full-exchange executor are two wire
            // protocols for the same arithmetic: both must be BITWISE
            // identical to the single-node simulator for every shard
            // count, and full mode must measure exactly the naive plan.
            let single = nwq_statevec::simulate(&c, &[]).unwrap();
            let lean_opts = crate::ShardOptions::default();
            let full_opts = crate::ShardOptions {
                lean_exchange: false,
                exchange_timeout_ms: 100,
                exchange_retries: 2,
                ..crate::ShardOptions::default()
            };
            for n_ranks in [1usize, 2, 4, 8] {
                for (opts, plan, label) in [
                    (&lean_opts, crate::comm::plan_communication(&c, n_ranks).unwrap(), "lean"),
                    (&full_opts, crate::comm::plan_communication_naive(&c, n_ranks).unwrap(), "full"),
                ] {
                    let d = crate::run_sharded(&c, &[], n_ranks, opts).unwrap();
                    for (a, b) in d.gather().amplitudes().iter().zip(single.amplitudes()) {
                        prop_assert_eq!(a.re.to_bits(), b.re.to_bits(), "{} ranks={}", label, n_ranks);
                        prop_assert_eq!(a.im.to_bits(), b.im.to_bits(), "{} ranks={}", label, n_ranks);
                    }
                    prop_assert_eq!(d.comm_stats(), plan, "{} ranks={}", label, n_ranks);
                }
            }
            // A rank death replayed through the lean protocol (elision
            // decisions and lost fusion mirrors included) stays bitwise.
            if !c.gates().is_empty() {
                let n_ranks = 4usize;
                let schedule = crate::FaultSchedule::kill(
                    kill_seed % c.gates().len(),
                    (kill_seed / 7) % n_ranks,
                );
                let recovery = crate::RecoveryOptions {
                    snapshot_every: 2,
                    max_recoveries: 8,
                    keep_versions: 2,
                    snapshot_dir: None,
                };
                let (d, report) = crate::run_sharded_resilient(
                    &c, &[], n_ranks, &full_opts, &recovery, &schedule,
                ).unwrap();
                // full_opts carries the short test deadlines; flip lean on.
                let lean_faulty = crate::ShardOptions {
                    lean_exchange: true,
                    ..full_opts
                };
                let (dl, report_l) = crate::run_sharded_resilient(
                    &c, &[], n_ranks, &lean_faulty, &recovery, &schedule,
                ).unwrap();
                prop_assert_eq!(report.recoveries, 1);
                prop_assert_eq!(report_l.recoveries, 1);
                for (a, b) in dl.gather().amplitudes().iter().zip(d.gather().amplitudes()) {
                    prop_assert_eq!(a.re.to_bits(), b.re.to_bits(), "faulty lean vs full");
                    prop_assert_eq!(a.im.to_bits(), b.im.to_bits(), "faulty lean vs full");
                }
                for (a, b) in dl.gather().amplitudes().iter().zip(single.amplitudes()) {
                    prop_assert_eq!(a.re.to_bits(), b.re.to_bits(), "faulty lean vs single");
                    prop_assert_eq!(a.im.to_bits(), b.im.to_bits(), "faulty lean vs single");
                }
            }
        }

        #[test]
        fn comm_plan_matches_execution(c in arb_circuit(6, 24)) {
            for n_ranks in [2usize, 4] {
                let (_, stats) = run_and_gather(&c, &[], n_ranks).unwrap();
                let plan = crate::comm::plan_communication(&c, n_ranks).unwrap();
                prop_assert_eq!(stats, plan);
            }
        }

        #[test]
        fn comm_monotone_in_rank_count(c in arb_circuit(6, 24)) {
            let m2 = crate::comm::plan_communication(&c, 2).unwrap().messages;
            let m4 = crate::comm::plan_communication(&c, 4).unwrap().messages;
            let m8 = crate::comm::plan_communication(&c, 8).unwrap().messages;
            prop_assert!(m2 <= m4 && m4 <= m8);
        }
    }
}
