//! # nwq-dist
//!
//! Multi-rank (PGAS-style) distributed statevector execution — the
//! substrate standing in for NWQ-Sim's multi-node MPI/NVSHMEM backends on
//! Perlmutter/Summit:
//!
//! - [`shard`] — REAL sharded execution: one OS worker thread per rank,
//!   true partner-exchange messages on global-qubit gates, bitwise
//!   identical to the single-node simulator on the unfused path;
//! - [`partition::DistStateVector`] — the partitioned amplitude container
//!   (its own `apply_*` methods remain as the single-threaded reference
//!   implementation the sharded path is checked against);
//! - [`energy`] — gather-free shard-parallel expectation values, so
//!   registers past single-allocation size can still be read out;
//! - [`comm`] — communication counters and the non-executing planner
//!   (pinned to agree exactly with the measured exchange counts);
//! - [`costmodel`] — α–β latency/bandwidth model with Perlmutter-like
//!   defaults, kept as a predictor checked against measured counters;
//! - [`exec`] — circuit execution and gather-based verification (bit-exact
//!   against the single-node simulator for every rank count);
//! - [`faults`] — deterministic seeded fault injection (lost ranks,
//!   corrupted exchanges, norm drift, failed evaluations, recoverable
//!   rank deaths / message drops / stragglers) used to exercise the
//!   workspace's recovery paths;
//! - [`snapshot`] — versioned consistent-cut shard snapshots backing
//!   [`shard::run_sharded_resilient`]'s bitwise rank-loss recovery.

#![warn(missing_docs)]

pub mod comm;
pub mod costmodel;
pub mod energy;
pub mod exec;
pub mod faults;
pub mod partition;
pub mod remap;
pub mod shard;
pub mod snapshot;

pub use comm::{plan_communication, CommStats};
pub use costmodel::CostModel;
pub use energy::{distributed_energy, run_distributed_energy, run_resilient_energy};
pub use exec::{
    run_and_gather, run_distributed, run_distributed_faulty, run_distributed_resilient,
};
pub use faults::{
    FaultInjector, FaultSchedule, FaultSpec, FaultStats, MessageDrop, RankDeath, RankDelay,
};
pub use partition::DistStateVector;
pub use remap::{plan_layout, run_distributed_with_layout};
pub use shard::{
    run_sharded, run_sharded_faulty, run_sharded_resilient, RecoveryOptions, RecoveryReport,
    ShardOptions,
};
pub use snapshot::SnapshotStore;

#[cfg(test)]
mod proptests {
    use crate::exec::run_and_gather;
    use nwq_circuit::Circuit;
    use proptest::prelude::*;

    fn arb_circuit(n: usize, max_len: usize) -> impl Strategy<Value = Circuit> {
        let gate = (0..8u8, 0..n, 1..n.max(2), -3.0..3.0f64);
        proptest::collection::vec(gate, 0..max_len).prop_map(move |specs| {
            let mut c = Circuit::new(n);
            for (kind, q, dq, angle) in specs {
                let q2 = (q + dq) % n;
                match kind {
                    0 => c.h(q),
                    1 => c.x(q),
                    2 => c.rz(q, angle),
                    3 => c.ry(q, angle),
                    4 if q2 != q => c.cx(q, q2),
                    5 if q2 != q => c.cz(q, q2),
                    6 if q2 != q => c.rzz(q, q2, angle),
                    7 if q2 != q => c.swap(q, q2),
                    _ => c.rx(q, angle),
                };
            }
            c
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn distributed_bit_exact_vs_single_node(
            c in (5usize..=6).prop_flat_map(|n| arb_circuit(n, 20))
        ) {
            // The real sharded run must be BITWISE identical to the
            // single-node simulator for every shard count — same kernel
            // arithmetic, same diagonal fast paths, exchange and all.
            let single = nwq_statevec::simulate(&c, &[]).unwrap();
            for n_ranks in [1usize, 2, 4, 8] {
                let (gathered, stats) = run_and_gather(&c, &[], n_ranks).unwrap();
                for (a, b) in gathered.amplitudes().iter().zip(single.amplitudes()) {
                    prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
                    prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
                }
                // Measured exchange traffic equals the non-executing plan.
                let plan = crate::comm::plan_communication(&c, n_ranks).unwrap();
                prop_assert_eq!(stats, plan);
            }
        }

        #[test]
        fn zero_rate_faulty_run_bit_exact(c in arb_circuit(5, 16)) {
            // A zero-rate FaultInjector consumes its RNG draws but must be
            // bitwise invisible to the executed state.
            let single = nwq_statevec::simulate(&c, &[]).unwrap();
            for n_ranks in [2usize, 4, 8] {
                let mut inj = crate::FaultInjector::new(crate::FaultSpec::default());
                let d = crate::run_distributed_faulty(&c, &[], n_ranks, &mut inj).unwrap();
                prop_assert_eq!(inj.stats().total(), 0);
                for (a, b) in d.gather().amplitudes().iter().zip(single.amplitudes()) {
                    prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
                    prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
                }
            }
        }

        #[test]
        fn comm_plan_matches_execution(c in arb_circuit(6, 24)) {
            for n_ranks in [2usize, 4] {
                let (_, stats) = run_and_gather(&c, &[], n_ranks).unwrap();
                let plan = crate::comm::plan_communication(&c, n_ranks).unwrap();
                prop_assert_eq!(stats, plan);
            }
        }

        #[test]
        fn comm_monotone_in_rank_count(c in arb_circuit(6, 24)) {
            let m2 = crate::comm::plan_communication(&c, 2).unwrap().messages;
            let m4 = crate::comm::plan_communication(&c, 4).unwrap().messages;
            let m8 = crate::comm::plan_communication(&c, 8).unwrap().messages;
            prop_assert!(m2 <= m4 && m4 <= m8);
        }
    }
}
