//! # nwq-dist
//!
//! Simulated multi-rank (PGAS-style) distributed statevector execution —
//! the substrate standing in for NWQ-Sim's multi-node MPI/NVSHMEM backends
//! on Perlmutter/Summit:
//!
//! - [`partition::DistStateVector`] — amplitudes partitioned across ranks,
//!   with rank-local parallel kernels and explicit partner exchanges for
//!   gates on global qubits;
//! - [`comm`] — communication counters and the non-executing planner
//!   (pinned to agree exactly with execution);
//! - [`costmodel`] — α–β latency/bandwidth model with Perlmutter-like
//!   defaults for scaling-shape studies;
//! - [`exec`] — circuit execution and gather-based verification (bit-exact
//!   against the single-node simulator for every rank count);
//! - [`faults`] — deterministic seeded fault injection (lost ranks,
//!   corrupted exchanges, norm drift, failed evaluations) used to exercise
//!   the workspace's recovery paths.

#![warn(missing_docs)]

pub mod comm;
pub mod costmodel;
pub mod exec;
pub mod faults;
pub mod partition;
pub mod remap;

pub use comm::{plan_communication, CommStats};
pub use costmodel::CostModel;
pub use exec::{run_and_gather, run_distributed, run_distributed_faulty};
pub use faults::{FaultInjector, FaultSpec, FaultStats};
pub use partition::DistStateVector;
pub use remap::{plan_layout, run_distributed_with_layout};

#[cfg(test)]
mod proptests {
    use crate::exec::run_and_gather;
    use nwq_circuit::Circuit;
    use proptest::prelude::*;

    fn arb_circuit(n: usize, max_len: usize) -> impl Strategy<Value = Circuit> {
        let gate = (0..8u8, 0..n, 1..n.max(2), -3.0..3.0f64);
        proptest::collection::vec(gate, 0..max_len).prop_map(move |specs| {
            let mut c = Circuit::new(n);
            for (kind, q, dq, angle) in specs {
                let q2 = (q + dq) % n;
                match kind {
                    0 => c.h(q),
                    1 => c.x(q),
                    2 => c.rz(q, angle),
                    3 => c.ry(q, angle),
                    4 if q2 != q => c.cx(q, q2),
                    5 if q2 != q => c.cz(q, q2),
                    6 if q2 != q => c.rzz(q, q2, angle),
                    7 if q2 != q => c.swap(q, q2),
                    _ => c.rx(q, angle),
                };
            }
            c
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn distributed_bit_exact_vs_single_node(c in arb_circuit(5, 20)) {
            let single = nwq_statevec::simulate(&c, &[]).unwrap();
            for n_ranks in [2usize, 4, 8] {
                let (gathered, _) = run_and_gather(&c, &[], n_ranks).unwrap();
                for (a, b) in gathered.amplitudes().iter().zip(single.amplitudes()) {
                    prop_assert!(a.approx_eq(*b, 1e-9));
                }
            }
        }

        #[test]
        fn comm_plan_matches_execution(c in arb_circuit(6, 24)) {
            for n_ranks in [2usize, 4] {
                let (_, stats) = run_and_gather(&c, &[], n_ranks).unwrap();
                let plan = crate::comm::plan_communication(&c, n_ranks).unwrap();
                prop_assert_eq!(stats, plan);
            }
        }

        #[test]
        fn comm_monotone_in_rank_count(c in arb_circuit(6, 24)) {
            let m2 = crate::comm::plan_communication(&c, 2).unwrap().messages;
            let m4 = crate::comm::plan_communication(&c, 4).unwrap().messages;
            let m8 = crate::comm::plan_communication(&c, 8).unwrap().messages;
            prop_assert!(m2 <= m4 && m4 <= m8);
        }
    }
}
