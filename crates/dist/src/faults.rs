//! Deterministic fault injection for resilience testing.
//!
//! Long VQE campaigns on real HPC systems see evaluation failures, NaN/Inf
//! amplitudes, norm drift, lost ranks, and corrupted exchanges as routine
//! events. This module makes those events *reproducible*: a seeded
//! [`FaultInjector`] decides, per opportunity, whether a fault fires, so
//! every recovery path in the workspace can be exercised by an ordinary
//! unit test. The injector is pure configuration + RNG — it never touches
//! simulator state itself; the execution layers ([`crate::exec`] and the
//! `FaultyBackend` decorator in `nwq-core`) ask it what to break.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-opportunity fault probabilities (each in `[0, 1]`) plus the RNG
/// seed. The default spec injects nothing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultSpec {
    /// Probability that an energy evaluation fails outright (models a
    /// crashed/preempted backend call).
    pub eval_failure: f64,
    /// Probability that an evaluation returns a NaN energy (models
    /// corrupted amplitudes reaching the reduction).
    pub nan_amplitude: f64,
    /// Probability that a kernel sweep leaves the state with norm drift
    /// (models accumulated floating-point corruption).
    pub norm_drift: f64,
    /// Probability that a rank is lost during a global-qubit exchange.
    /// This is the *legacy, terminal* class: the run aborts. For the
    /// recoverable class see [`FaultSpec::rank_death`].
    pub rank_loss: f64,
    /// Probability that an exchanged message corrupts an amplitude.
    pub message_corruption: f64,
    /// Probability (per gate step) that a rank process dies — the
    /// *recoverable* class consumed by [`crate::shard::run_sharded_resilient`]
    /// via [`FaultSchedule::from_injector`].
    pub rank_death: f64,
    /// Probability (per gate step) that a rank silently drops its exchange
    /// sends, leaving partners to hit their receive deadline.
    pub message_drop: f64,
    /// Probability (per gate step) that a rank stalls as a straggler
    /// before executing the step.
    pub message_delay: f64,
    /// Straggler stall length in milliseconds (used when `message_delay`
    /// fires).
    pub delay_ms: u64,
    /// RNG seed; the whole fault sequence is a pure function of it.
    pub seed: u64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            eval_failure: 0.0,
            nan_amplitude: 0.0,
            norm_drift: 0.0,
            rank_loss: 0.0,
            message_corruption: 0.0,
            rank_death: 0.0,
            message_drop: 0.0,
            message_delay: 0.0,
            delay_ms: 0,
            seed: 0,
        }
    }
}

impl FaultSpec {
    /// A spec that injects evaluation failures at `rate` — the knob the
    /// CLI's `--inject-faults RATE` exposes.
    pub fn eval_failures(rate: f64, seed: u64) -> Self {
        FaultSpec {
            eval_failure: rate,
            seed,
            ..FaultSpec::default()
        }
    }

    /// Whether any fault class has a nonzero rate.
    pub fn is_active(&self) -> bool {
        self.eval_failure > 0.0
            || self.nan_amplitude > 0.0
            || self.norm_drift > 0.0
            || self.rank_loss > 0.0
            || self.message_corruption > 0.0
            || self.rank_death > 0.0
            || self.message_drop > 0.0
            || self.message_delay > 0.0
    }
}

/// Counts of faults actually injected, by class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Evaluation failures fired.
    pub eval_failures: u64,
    /// NaN-amplitude faults fired.
    pub nan_amplitudes: u64,
    /// Norm-drift faults fired.
    pub norm_drifts: u64,
    /// Rank losses fired.
    pub rank_losses: u64,
    /// Message corruptions fired.
    pub message_corruptions: u64,
    /// Recoverable rank deaths fired.
    pub rank_deaths: u64,
    /// Message drops fired.
    pub message_drops: u64,
    /// Straggler delays fired.
    pub message_delays: u64,
}

impl FaultStats {
    /// Total faults fired across all classes.
    pub fn total(&self) -> u64 {
        self.eval_failures
            + self.nan_amplitudes
            + self.norm_drifts
            + self.rank_losses
            + self.message_corruptions
            + self.rank_deaths
            + self.message_drops
            + self.message_delays
    }
}

/// Seeded fault source. Each `should_*` call consumes exactly one RNG draw
/// for its class, so the fault sequence is deterministic given the spec —
/// two runs with the same seed fail at the same opportunities.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    spec: FaultSpec,
    rng: StdRng,
    stats: FaultStats,
}

impl FaultInjector {
    /// An injector driven by `spec`.
    pub fn new(spec: FaultSpec) -> Self {
        FaultInjector {
            spec,
            rng: StdRng::seed_from_u64(spec.seed),
            stats: FaultStats::default(),
        }
    }

    /// The driving spec.
    pub fn spec(&self) -> FaultSpec {
        self.spec
    }

    /// Faults fired so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// One seeded draw for one fault opportunity. The draw is consumed
    /// even at rate 0, so enabling one class never shifts another class's
    /// sequence.
    fn trip(&mut self, rate: f64, class: &'static str) -> bool {
        let fired = self.rng.gen_bool(rate.clamp(0.0, 1.0));
        if fired {
            nwq_telemetry::counter_add("resilience.faults_injected", 1);
            nwq_telemetry::counter_add(class, 1);
        }
        fired
    }

    /// Should the next energy evaluation fail?
    pub fn should_fail_eval(&mut self) -> bool {
        let fired = self.trip(self.spec.eval_failure, "resilience.faults.eval_failure");
        self.stats.eval_failures += fired as u64;
        fired
    }

    /// Should the next evaluation return a NaN energy?
    pub fn should_inject_nan(&mut self) -> bool {
        let fired = self.trip(self.spec.nan_amplitude, "resilience.faults.nan_amplitude");
        self.stats.nan_amplitudes += fired as u64;
        fired
    }

    /// Should the next sweep pick up norm drift?
    pub fn should_drift_norm(&mut self) -> bool {
        let fired = self.trip(self.spec.norm_drift, "resilience.faults.norm_drift");
        self.stats.norm_drifts += fired as u64;
        fired
    }

    /// Should the next global exchange lose a rank? Returns the lost rank
    /// id (in `0..n_ranks`) when it fires.
    pub fn should_lose_rank(&mut self, n_ranks: usize) -> Option<usize> {
        let fired = self.trip(self.spec.rank_loss, "resilience.faults.rank_loss");
        self.stats.rank_losses += fired as u64;
        if fired && n_ranks > 0 {
            Some(self.rng.gen_range(0..n_ranks))
        } else {
            None
        }
    }

    /// Should the next exchanged message corrupt an amplitude?
    pub fn should_corrupt_message(&mut self) -> bool {
        let fired = self.trip(
            self.spec.message_corruption,
            "resilience.faults.message_corruption",
        );
        self.stats.message_corruptions += fired as u64;
        fired
    }

    /// Should a rank die at the next gate step (recoverably)? Returns the
    /// dying rank id when it fires; a second draw decides whether it dies
    /// mid-exchange (after its sends, before its receives).
    pub fn should_kill_rank(&mut self, n_ranks: usize) -> Option<(usize, bool)> {
        let fired = self.trip(self.spec.rank_death, "resilience.faults.rank_death");
        self.stats.rank_deaths += fired as u64;
        if fired && n_ranks > 0 {
            let rank = self.rng.gen_range(0..n_ranks);
            let mid_exchange = self.rng.gen_bool(0.5);
            Some((rank, mid_exchange))
        } else {
            None
        }
    }

    /// Should a rank drop its exchange sends at the next gate step?
    /// Returns the dropping rank id when it fires.
    pub fn should_drop_message(&mut self, n_ranks: usize) -> Option<usize> {
        let fired = self.trip(self.spec.message_drop, "resilience.faults.message_drop");
        self.stats.message_drops += fired as u64;
        if fired && n_ranks > 0 {
            Some(self.rng.gen_range(0..n_ranks))
        } else {
            None
        }
    }

    /// Should a rank straggle at the next gate step? Returns
    /// `(rank, delay_ms)` when it fires.
    pub fn should_delay_message(&mut self, n_ranks: usize) -> Option<(usize, u64)> {
        let fired = self.trip(self.spec.message_delay, "resilience.faults.message_delay");
        self.stats.message_delays += fired as u64;
        if fired && n_ranks > 0 {
            Some((self.rng.gen_range(0..n_ranks), self.spec.delay_ms))
        } else {
            None
        }
    }

    /// A random index into a partition of `len` amplitudes (used to pick
    /// the corruption site).
    pub fn pick_index(&mut self, len: usize) -> usize {
        if len <= 1 {
            0
        } else {
            self.rng.gen_range(0..len)
        }
    }
}

/// A rank death planned at a gate step. `mid_exchange` deaths complete the
/// send half of the step's pair-exchange and die before the receive half —
/// the worst case for partners, who see the step's payload arrive and then
/// the channel close.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RankDeath {
    /// Gate index (0-based, over the circuit's gate sequence).
    pub gate_step: usize,
    /// Dying rank id.
    pub rank: usize,
    /// Die after sends but before receives at that step.
    pub mid_exchange: bool,
}

/// A planned message drop: `rank` silently skips its sends at `gate_step`,
/// so partners hit their receive deadline instead of a closed channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MessageDrop {
    /// Gate index (0-based).
    pub gate_step: usize,
    /// Dropping rank id.
    pub rank: usize,
}

/// A planned straggler stall: `rank` sleeps `delay_ms` before executing
/// `gate_step`. Stalls under the exchange deadline must NOT trigger
/// recovery (no false positives).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RankDelay {
    /// Gate index (0-based).
    pub gate_step: usize,
    /// Straggling rank id.
    pub rank: usize,
    /// Stall length in milliseconds.
    pub delay_ms: u64,
}

/// A deterministic schedule of recoverable shard faults, in *gate*
/// coordinates. The resilient compiler translates these to absolute tape
/// indices and arms each entry exactly once, so a fault fires in the
/// generation that first reaches its step and never re-fires during
/// replay (which would otherwise recovery-loop forever).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    /// Planned rank deaths.
    pub deaths: Vec<RankDeath>,
    /// Planned message drops.
    pub drops: Vec<MessageDrop>,
    /// Planned straggler stalls.
    pub delays: Vec<RankDelay>,
}

impl FaultSchedule {
    /// No faults at all.
    pub fn none() -> Self {
        FaultSchedule::default()
    }

    /// A single clean rank death at `gate_step`.
    pub fn kill(gate_step: usize, rank: usize) -> Self {
        FaultSchedule {
            deaths: vec![RankDeath {
                gate_step,
                rank,
                mid_exchange: false,
            }],
            ..FaultSchedule::default()
        }
    }

    /// Whether the schedule plans any fault.
    pub fn is_empty(&self) -> bool {
        self.deaths.is_empty() && self.drops.is_empty() && self.delays.is_empty()
    }

    /// Draws a schedule from a seeded injector: one `rank_death`,
    /// `message_drop`, and `message_delay` opportunity per gate step, in
    /// that order, so the schedule is a pure function of the spec.
    pub fn from_injector(inj: &mut FaultInjector, n_gates: usize, n_ranks: usize) -> Self {
        let mut schedule = FaultSchedule::default();
        for gate_step in 0..n_gates {
            if let Some((rank, mid_exchange)) = inj.should_kill_rank(n_ranks) {
                schedule.deaths.push(RankDeath {
                    gate_step,
                    rank,
                    mid_exchange,
                });
            }
            if let Some(rank) = inj.should_drop_message(n_ranks) {
                schedule.drops.push(MessageDrop { gate_step, rank });
            }
            if let Some((rank, delay_ms)) = inj.should_delay_message(n_ranks) {
                schedule.delays.push(RankDelay {
                    gate_step,
                    rank,
                    delay_ms,
                });
            }
        }
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_injects_nothing() {
        let mut inj = FaultInjector::new(FaultSpec::default());
        assert!(!inj.spec().is_active());
        for _ in 0..1000 {
            assert!(!inj.should_fail_eval());
            assert!(!inj.should_inject_nan());
            assert!(!inj.should_drift_norm());
            assert!(inj.should_lose_rank(4).is_none());
            assert!(!inj.should_corrupt_message());
        }
        assert_eq!(inj.stats().total(), 0);
    }

    #[test]
    fn fault_sequence_is_deterministic() {
        let spec = FaultSpec {
            eval_failure: 0.3,
            rank_loss: 0.2,
            seed: 99,
            ..FaultSpec::default()
        };
        let draw = |spec| {
            let mut inj = FaultInjector::new(spec);
            let evals: Vec<bool> = (0..200).map(|_| inj.should_fail_eval()).collect();
            let ranks: Vec<Option<usize>> = (0..200).map(|_| inj.should_lose_rank(8)).collect();
            (evals, ranks, inj.stats())
        };
        let (e1, r1, s1) = draw(spec);
        let (e2, r2, s2) = draw(spec);
        assert_eq!(e1, e2);
        assert_eq!(r1, r2);
        assert_eq!(s1, s2);
        assert!(s1.eval_failures > 0 && s1.rank_losses > 0);
    }

    #[test]
    fn rates_are_roughly_honored() {
        let mut inj = FaultInjector::new(FaultSpec::eval_failures(0.1, 7));
        assert!(inj.spec().is_active());
        let n = 10_000;
        let fired = (0..n).filter(|_| inj.should_fail_eval()).count();
        let rate = fired as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.02, "observed rate {rate}");
        assert_eq!(inj.stats().eval_failures, fired as u64);
    }

    #[test]
    fn telemetry_counts_injected_faults() {
        nwq_telemetry::reset();
        nwq_telemetry::set_enabled(true);
        let before = nwq_telemetry::counter_value("resilience.faults_injected");
        let mut inj = FaultInjector::new(FaultSpec {
            message_corruption: 1.0,
            seed: 1,
            ..FaultSpec::default()
        });
        assert!(inj.should_corrupt_message());
        assert!(inj.should_corrupt_message());
        let injected = nwq_telemetry::counter_value("resilience.faults_injected") - before;
        let by_class = nwq_telemetry::counter_value("resilience.faults.message_corruption");
        nwq_telemetry::set_enabled(false);
        assert_eq!(injected, 2);
        assert_eq!(by_class, 2);
    }

    #[test]
    fn schedule_from_injector_is_deterministic_and_in_range() {
        let spec = FaultSpec {
            rank_death: 0.2,
            message_drop: 0.1,
            message_delay: 0.15,
            delay_ms: 25,
            seed: 42,
            ..FaultSpec::default()
        };
        assert!(spec.is_active());
        let draw = || FaultSchedule::from_injector(&mut FaultInjector::new(spec), 64, 4);
        let (s1, s2) = (draw(), draw());
        assert_eq!(s1, s2);
        assert!(!s1.is_empty());
        assert!(s1.deaths.iter().all(|d| d.rank < 4 && d.gate_step < 64));
        assert!(s1.drops.iter().all(|d| d.rank < 4 && d.gate_step < 64));
        assert!(s1
            .delays
            .iter()
            .all(|d| d.rank < 4 && d.gate_step < 64 && d.delay_ms == 25));
        let mut inj = FaultInjector::new(spec);
        let _ = FaultSchedule::from_injector(&mut inj, 64, 4);
        let stats = inj.stats();
        assert_eq!(stats.rank_deaths as usize, s1.deaths.len());
        assert_eq!(stats.message_drops as usize, s1.drops.len());
        assert_eq!(stats.message_delays as usize, s1.delays.len());
    }

    #[test]
    fn new_classes_do_not_shift_legacy_draw_sequences() {
        // The legacy fault classes must keep their seeded sequences even
        // now that the spec carries recoverable-class rates: legacy draws
        // happen through the same `trip` path in the same order, and the
        // new classes only consume RNG when their methods are called.
        let legacy = FaultSpec {
            rank_loss: 0.3,
            seed: 17,
            ..FaultSpec::default()
        };
        let mut a = FaultInjector::new(legacy);
        let mut b = FaultInjector::new(FaultSpec {
            rank_death: 0.5,
            message_drop: 0.5,
            ..legacy
        });
        let seq_a: Vec<Option<usize>> = (0..100).map(|_| a.should_lose_rank(8)).collect();
        let seq_b: Vec<Option<usize>> = (0..100).map(|_| b.should_lose_rank(8)).collect();
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn kill_schedule_is_a_single_clean_death() {
        let s = FaultSchedule::kill(7, 2);
        assert_eq!(s.deaths.len(), 1);
        assert!(s.drops.is_empty() && s.delays.is_empty());
        let d = s.deaths[0];
        assert_eq!((d.gate_step, d.rank, d.mid_exchange), (7, 2, false));
        assert!(FaultSchedule::none().is_empty());
    }

    #[test]
    fn lost_rank_ids_are_in_range() {
        let mut inj = FaultInjector::new(FaultSpec {
            rank_loss: 1.0,
            seed: 3,
            ..FaultSpec::default()
        });
        for _ in 0..100 {
            let r = inj.should_lose_rank(4).unwrap();
            assert!(r < 4);
        }
        assert!(inj.pick_index(1) == 0 && inj.pick_index(16) < 16);
    }
}
