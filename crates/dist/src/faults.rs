//! Deterministic fault injection for resilience testing.
//!
//! Long VQE campaigns on real HPC systems see evaluation failures, NaN/Inf
//! amplitudes, norm drift, lost ranks, and corrupted exchanges as routine
//! events. This module makes those events *reproducible*: a seeded
//! [`FaultInjector`] decides, per opportunity, whether a fault fires, so
//! every recovery path in the workspace can be exercised by an ordinary
//! unit test. The injector is pure configuration + RNG — it never touches
//! simulator state itself; the execution layers ([`crate::exec`] and the
//! `FaultyBackend` decorator in `nwq-core`) ask it what to break.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-opportunity fault probabilities (each in `[0, 1]`) plus the RNG
/// seed. The default spec injects nothing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultSpec {
    /// Probability that an energy evaluation fails outright (models a
    /// crashed/preempted backend call).
    pub eval_failure: f64,
    /// Probability that an evaluation returns a NaN energy (models
    /// corrupted amplitudes reaching the reduction).
    pub nan_amplitude: f64,
    /// Probability that a kernel sweep leaves the state with norm drift
    /// (models accumulated floating-point corruption).
    pub norm_drift: f64,
    /// Probability that a rank is lost during a global-qubit exchange.
    pub rank_loss: f64,
    /// Probability that an exchanged message corrupts an amplitude.
    pub message_corruption: f64,
    /// RNG seed; the whole fault sequence is a pure function of it.
    pub seed: u64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            eval_failure: 0.0,
            nan_amplitude: 0.0,
            norm_drift: 0.0,
            rank_loss: 0.0,
            message_corruption: 0.0,
            seed: 0,
        }
    }
}

impl FaultSpec {
    /// A spec that injects evaluation failures at `rate` — the knob the
    /// CLI's `--inject-faults RATE` exposes.
    pub fn eval_failures(rate: f64, seed: u64) -> Self {
        FaultSpec {
            eval_failure: rate,
            seed,
            ..FaultSpec::default()
        }
    }

    /// Whether any fault class has a nonzero rate.
    pub fn is_active(&self) -> bool {
        self.eval_failure > 0.0
            || self.nan_amplitude > 0.0
            || self.norm_drift > 0.0
            || self.rank_loss > 0.0
            || self.message_corruption > 0.0
    }
}

/// Counts of faults actually injected, by class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Evaluation failures fired.
    pub eval_failures: u64,
    /// NaN-amplitude faults fired.
    pub nan_amplitudes: u64,
    /// Norm-drift faults fired.
    pub norm_drifts: u64,
    /// Rank losses fired.
    pub rank_losses: u64,
    /// Message corruptions fired.
    pub message_corruptions: u64,
}

impl FaultStats {
    /// Total faults fired across all classes.
    pub fn total(&self) -> u64 {
        self.eval_failures
            + self.nan_amplitudes
            + self.norm_drifts
            + self.rank_losses
            + self.message_corruptions
    }
}

/// Seeded fault source. Each `should_*` call consumes exactly one RNG draw
/// for its class, so the fault sequence is deterministic given the spec —
/// two runs with the same seed fail at the same opportunities.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    spec: FaultSpec,
    rng: StdRng,
    stats: FaultStats,
}

impl FaultInjector {
    /// An injector driven by `spec`.
    pub fn new(spec: FaultSpec) -> Self {
        FaultInjector {
            spec,
            rng: StdRng::seed_from_u64(spec.seed),
            stats: FaultStats::default(),
        }
    }

    /// The driving spec.
    pub fn spec(&self) -> FaultSpec {
        self.spec
    }

    /// Faults fired so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// One seeded draw for one fault opportunity. The draw is consumed
    /// even at rate 0, so enabling one class never shifts another class's
    /// sequence.
    fn trip(&mut self, rate: f64, class: &'static str) -> bool {
        let fired = self.rng.gen_bool(rate.clamp(0.0, 1.0));
        if fired {
            nwq_telemetry::counter_add("resilience.faults_injected", 1);
            nwq_telemetry::counter_add(class, 1);
        }
        fired
    }

    /// Should the next energy evaluation fail?
    pub fn should_fail_eval(&mut self) -> bool {
        let fired = self.trip(self.spec.eval_failure, "resilience.faults.eval_failure");
        self.stats.eval_failures += fired as u64;
        fired
    }

    /// Should the next evaluation return a NaN energy?
    pub fn should_inject_nan(&mut self) -> bool {
        let fired = self.trip(self.spec.nan_amplitude, "resilience.faults.nan_amplitude");
        self.stats.nan_amplitudes += fired as u64;
        fired
    }

    /// Should the next sweep pick up norm drift?
    pub fn should_drift_norm(&mut self) -> bool {
        let fired = self.trip(self.spec.norm_drift, "resilience.faults.norm_drift");
        self.stats.norm_drifts += fired as u64;
        fired
    }

    /// Should the next global exchange lose a rank? Returns the lost rank
    /// id (in `0..n_ranks`) when it fires.
    pub fn should_lose_rank(&mut self, n_ranks: usize) -> Option<usize> {
        let fired = self.trip(self.spec.rank_loss, "resilience.faults.rank_loss");
        self.stats.rank_losses += fired as u64;
        if fired && n_ranks > 0 {
            Some(self.rng.gen_range(0..n_ranks))
        } else {
            None
        }
    }

    /// Should the next exchanged message corrupt an amplitude?
    pub fn should_corrupt_message(&mut self) -> bool {
        let fired = self.trip(
            self.spec.message_corruption,
            "resilience.faults.message_corruption",
        );
        self.stats.message_corruptions += fired as u64;
        fired
    }

    /// A random index into a partition of `len` amplitudes (used to pick
    /// the corruption site).
    pub fn pick_index(&mut self, len: usize) -> usize {
        if len <= 1 {
            0
        } else {
            self.rng.gen_range(0..len)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_injects_nothing() {
        let mut inj = FaultInjector::new(FaultSpec::default());
        assert!(!inj.spec().is_active());
        for _ in 0..1000 {
            assert!(!inj.should_fail_eval());
            assert!(!inj.should_inject_nan());
            assert!(!inj.should_drift_norm());
            assert!(inj.should_lose_rank(4).is_none());
            assert!(!inj.should_corrupt_message());
        }
        assert_eq!(inj.stats().total(), 0);
    }

    #[test]
    fn fault_sequence_is_deterministic() {
        let spec = FaultSpec {
            eval_failure: 0.3,
            rank_loss: 0.2,
            seed: 99,
            ..FaultSpec::default()
        };
        let draw = |spec| {
            let mut inj = FaultInjector::new(spec);
            let evals: Vec<bool> = (0..200).map(|_| inj.should_fail_eval()).collect();
            let ranks: Vec<Option<usize>> = (0..200).map(|_| inj.should_lose_rank(8)).collect();
            (evals, ranks, inj.stats())
        };
        let (e1, r1, s1) = draw(spec);
        let (e2, r2, s2) = draw(spec);
        assert_eq!(e1, e2);
        assert_eq!(r1, r2);
        assert_eq!(s1, s2);
        assert!(s1.eval_failures > 0 && s1.rank_losses > 0);
    }

    #[test]
    fn rates_are_roughly_honored() {
        let mut inj = FaultInjector::new(FaultSpec::eval_failures(0.1, 7));
        assert!(inj.spec().is_active());
        let n = 10_000;
        let fired = (0..n).filter(|_| inj.should_fail_eval()).count();
        let rate = fired as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.02, "observed rate {rate}");
        assert_eq!(inj.stats().eval_failures, fired as u64);
    }

    #[test]
    fn telemetry_counts_injected_faults() {
        nwq_telemetry::reset();
        nwq_telemetry::set_enabled(true);
        let before = nwq_telemetry::counter_value("resilience.faults_injected");
        let mut inj = FaultInjector::new(FaultSpec {
            message_corruption: 1.0,
            seed: 1,
            ..FaultSpec::default()
        });
        assert!(inj.should_corrupt_message());
        assert!(inj.should_corrupt_message());
        let injected = nwq_telemetry::counter_value("resilience.faults_injected") - before;
        let by_class = nwq_telemetry::counter_value("resilience.faults.message_corruption");
        nwq_telemetry::set_enabled(false);
        assert_eq!(injected, 2);
        assert_eq!(by_class, 2);
    }

    #[test]
    fn lost_rank_ids_are_in_range() {
        let mut inj = FaultInjector::new(FaultSpec {
            rank_loss: 1.0,
            seed: 3,
            ..FaultSpec::default()
        });
        for _ in 0..100 {
            let r = inj.should_lose_rank(4).unwrap();
            assert!(r < 4);
        }
        assert!(inj.pick_index(1) == 0 && inj.pick_index(16) < 16);
    }
}
