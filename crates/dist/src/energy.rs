//! Gather-free distributed expectation values.
//!
//! The point of sharded execution is registers too large to hold in one
//! allocation — so the energy readout must not [`DistStateVector::gather`]
//! either. This module evaluates `⟨ψ|H|ψ⟩` directly on the shards with the
//! batched §4.2 flip-group reduction from [`nwq_statevec::expval`]:
//!
//! `⟨H⟩ = Σ_m Σ_x conj(ψ[x⊕m]) ψ[x] · Σ_{t: m_t=m} c_t φ_t (−1)^{|x∧z_t|}`
//!
//! For a flip-mask `m`, rank `r`'s partner shard is `r ⊕ (m >> n_local)` —
//! each rank reads exactly one remote shard per group, the distributed
//! analog of one exchanged message per rank. The per-rank partials are
//! summed in rank order, so the reduction is deterministic.
//!
//! The expectation-phase traffic is recorded in telemetry
//! (`dist.expval_messages` / `dist.expval_bytes`) but *not* folded into
//! the gate-phase [`crate::comm::CommStats`]: `plan_communication`
//! predicts circuit execution, and the measured-equals-planned invariant
//! is pinned by tests.

use crate::partition::DistStateVector;
use nwq_common::{Error, Result, C_ZERO};
use nwq_pauli::PauliOp;
use nwq_statevec::expval::{flip_groups, shard_group_partial};
use rayon::prelude::*;

/// Evaluates `Re⟨ψ|H|ψ⟩` on a sharded register without gathering.
pub fn distributed_energy(state: &DistStateVector, op: &PauliOp) -> Result<f64> {
    if op.n_qubits() != state.n_qubits() {
        return Err(Error::DimensionMismatch {
            expected: 1usize << state.n_qubits(),
            got: 1usize << op.n_qubits(),
        });
    }
    let _span = nwq_telemetry::span!("dist.energy");
    let n_local = state.n_local();
    let n_ranks = state.n_ranks();
    let part_bytes = (state.partition_len() * 16) as u64;
    let groups = flip_groups(op);
    let mut expval_messages = 0u64;
    let mut total = C_ZERO;
    for g in &groups {
        let global_flip = (g.mask >> n_local) as usize;
        if global_flip >= n_ranks {
            // A flip on a rank-id bit beyond the layout pairs each shard
            // with one that does not exist — every such product is over
            // amplitudes of disjoint support halves, but the mask cannot
            // arise: PauliOp width was checked above, so global_flip < 2^n_global.
            return Err(Error::Invalid(format!(
                "flip mask {:#x} addresses rank {global_flip} of {n_ranks}",
                g.mask
            )));
        }
        if global_flip != 0 {
            // One cross-rank shard read per rank, mirroring an exchange.
            expval_messages += n_ranks as u64;
        }
        // Per-rank partials computed in parallel, folded in rank order so
        // the result is deterministic run-to-run.
        let partials: Vec<_> = (0..n_ranks)
            .into_par_iter()
            .map(|r| {
                shard_group_partial(
                    state.partition(r),
                    state.partition(r ^ global_flip),
                    r,
                    n_local,
                    g.mask,
                    &g.terms,
                )
            })
            .collect();
        for p in partials {
            total += p;
        }
    }
    nwq_telemetry::counter_add("dist.expval_messages", expval_messages);
    nwq_telemetry::counter_add("dist.expval_bytes", expval_messages * part_bytes);
    if total.re.is_finite() {
        Ok(total.re)
    } else {
        nwq_telemetry::counter_add("resilience.nonfinite_detected", 1);
        Err(Error::Numerical(
            "non-finite energy from distributed expectation".into(),
        ))
    }
}

/// Convenience for scaling runs: execute `circuit` sharded over `n_ranks`
/// and read the energy without ever materializing the full register in
/// one allocation. Returns `(energy, comm stats of the gate phase)`.
pub fn run_distributed_energy(
    circuit: &nwq_circuit::Circuit,
    params: &[f64],
    n_ranks: usize,
    op: &PauliOp,
) -> Result<(f64, crate::comm::CommStats)> {
    let state = crate::exec::run_distributed(circuit, params, n_ranks)?;
    let energy = distributed_energy(&state, op)?;
    Ok((energy, state.comm_stats()))
}

/// [`run_distributed_energy`] through the survivable executor: the gate
/// phase runs with snapshots + recovery, then the energy is read out
/// gather-free from the recovered (bitwise-identical) shards. Returns
/// `(energy, recovery report)`.
pub fn run_resilient_energy(
    circuit: &nwq_circuit::Circuit,
    params: &[f64],
    n_ranks: usize,
    op: &PauliOp,
    opts: &crate::shard::ShardOptions,
    recovery: &crate::shard::RecoveryOptions,
    schedule: &crate::faults::FaultSchedule,
) -> Result<(f64, crate::shard::RecoveryReport)> {
    let (state, report) =
        crate::exec::run_distributed_resilient(circuit, params, n_ranks, opts, recovery, schedule)?;
    let energy = distributed_energy(&state, op)?;
    Ok((energy, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwq_circuit::Circuit;

    fn sample_circuit(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 1..n {
            c.cx(q - 1, q);
        }
        c.rz(n - 1, 0.7).ry(0, -0.4).swap(0, n - 1);
        c
    }

    #[test]
    fn distributed_energy_matches_single_node() {
        let c = sample_circuit(6);
        let h =
            PauliOp::parse("0.5 ZZIIII + 0.25 XIIIIX + 0.125 IYZXII + 0.1 ZIIIII + 0.05 IIIIII")
                .unwrap();
        let single = nwq_statevec::simulate(&c, &[]).unwrap();
        let expected = nwq_statevec::expval::energy_direct_batched(&single, &h).unwrap();
        for n_ranks in [1usize, 2, 4, 8] {
            let (e, _) = run_distributed_energy(&c, &[], n_ranks, &h).unwrap();
            assert!(
                (e - expected).abs() < 1e-12,
                "ranks={n_ranks}: {e} vs {expected}"
            );
        }
    }

    #[test]
    fn energy_rejects_width_mismatch() {
        let c = sample_circuit(4);
        let d = crate::exec::run_distributed(&c, &[], 2).unwrap();
        let h = PauliOp::parse("1.0 ZZZZZ").unwrap();
        assert!(distributed_energy(&d, &h).is_err());
    }

    #[test]
    fn energy_surfaces_non_finite_states() {
        let c = sample_circuit(5);
        let mut d = crate::exec::run_distributed(&c, &[], 4).unwrap();
        d.corrupt_amplitude(1, 0, nwq_common::C64::new(f64::NAN, 0.0))
            .unwrap();
        let h = PauliOp::parse("1.0 ZZZZZ").unwrap();
        let e = distributed_energy(&d, &h).unwrap_err();
        assert!(matches!(e, Error::Numerical(_)), "{e}");
    }
}
