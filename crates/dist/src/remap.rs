//! Communication-avoiding qubit layout (the SV-Sim qubit-remapping
//! technique).
//!
//! On a partitioned statevector only gates touching *global* qubits (the
//! bits encoded in the rank id) communicate. Since the initial state
//! `|0…0⟩` is symmetric under qubit relabeling, the executor is free to
//! choose *which logical qubits* occupy the global positions before the
//! run starts — for free. [`plan_layout`] puts the most frequently used
//! logical qubits in local positions; [`run_distributed_with_layout`]
//! executes under that layout and un-permutes on gather, so callers see
//! logical-order amplitudes with (often dramatically) fewer exchanges.

use crate::comm::CommStats;
use crate::exec::run_distributed;
use nwq_circuit::Circuit;
use nwq_common::{Error, Result, C64};
use nwq_statevec::StateVector;

/// Number of gates touching each qubit.
pub fn gate_frequency(circuit: &Circuit) -> Vec<usize> {
    let mut freq = vec![0usize; circuit.n_qubits()];
    for g in circuit.gates() {
        for q in g.qubits() {
            freq[q] += 1;
        }
    }
    freq
}

/// Chooses a logical→physical map placing the `n_local` busiest qubits in
/// local positions (`0..n_local`), busiest first; ties break toward the
/// original order so the map is deterministic.
pub fn plan_layout(circuit: &Circuit, n_ranks: usize) -> Result<Vec<usize>> {
    if !n_ranks.is_power_of_two() {
        return Err(Error::Invalid(format!(
            "{n_ranks} ranks: must be a power of two"
        )));
    }
    let n_global = n_ranks.trailing_zeros() as usize;
    // Same bound the executor and planner enforce: every rank must keep at
    // least 2 local qubits.
    if n_global + 2 > circuit.n_qubits() {
        return Err(Error::Invalid(format!(
            "{n_ranks} ranks leave fewer than 2 local qubits of a {}-qubit register",
            circuit.n_qubits()
        )));
    }
    let freq = gate_frequency(circuit);
    let mut order: Vec<usize> = (0..circuit.n_qubits()).collect();
    order.sort_by_key(|&q| (std::cmp::Reverse(freq[q]), q));
    // order[i] is the i-th busiest logical qubit: give it physical slot i.
    let mut layout = vec![0usize; circuit.n_qubits()];
    for (physical, &logical) in order.iter().enumerate() {
        layout[logical] = physical;
    }
    Ok(layout)
}

/// Permutes a physical-layout statevector back to logical qubit order:
/// `out[logical_index] = amps[physical_index]` where physical bit
/// `layout[q]` carries logical bit `q`.
pub fn unpermute(state: &StateVector, layout: &[usize]) -> Result<StateVector> {
    if layout.len() != state.n_qubits() {
        return Err(Error::DimensionMismatch {
            expected: state.n_qubits(),
            got: layout.len(),
        });
    }
    let n = layout.len();
    let amps = state.amplitudes();
    let mut out = vec![C64::default(); amps.len()];
    for (phys_idx, &a) in amps.iter().enumerate() {
        let mut logical_idx = 0usize;
        for (q, &p) in layout.iter().enumerate().take(n) {
            if (phys_idx >> p) & 1 == 1 {
                logical_idx |= 1 << q;
            }
        }
        out[logical_idx] = a;
    }
    StateVector::from_amplitudes(out)
}

/// Runs `circuit` distributed over `n_ranks` under a frequency-planned
/// layout; returns `(logical-order state, comm stats, layout)`.
pub fn run_distributed_with_layout(
    circuit: &Circuit,
    params: &[f64],
    n_ranks: usize,
) -> Result<(StateVector, CommStats, Vec<usize>)> {
    let layout = plan_layout(circuit, n_ranks)?;
    let remapped = {
        let mut c = Circuit::with_params(circuit.n_qubits(), circuit.n_params());
        for g in circuit.gates() {
            c.push(g.remapped(|q| layout[q]))?;
        }
        c
    };
    let dist = run_distributed(&remapped, params, n_ranks)?;
    let stats = dist.comm_stats();
    let logical = unpermute(&dist.gather(), &layout)?;
    Ok((logical, stats, layout))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwq_circuit::Circuit;

    /// Adversarial circuit: all activity on the *top* qubits, which a
    /// naive layout makes global.
    fn top_heavy(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        for _ in 0..4 {
            c.h(n - 1).rz(n - 1, 0.3).cx(n - 1, n - 2).ry(n - 2, 0.4);
        }
        c
    }

    #[test]
    fn frequency_counting() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).rz(2, 0.1).cx(0, 2);
        assert_eq!(gate_frequency(&c), vec![3, 1, 2]);
    }

    #[test]
    fn layout_places_busy_qubits_local() {
        let c = top_heavy(6);
        let layout = plan_layout(&c, 4).unwrap(); // 4 local, 2 global slots
                                                  // Qubits 4 and 5 are the busiest: both must land in 0..4.
        assert!(layout[5] < 4, "layout {layout:?}");
        assert!(layout[4] < 4, "layout {layout:?}");
        // Layout is a permutation.
        let mut seen = layout.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn remapped_execution_matches_single_node() {
        let c = top_heavy(6);
        let single = nwq_statevec::simulate(&c, &[]).unwrap();
        for n_ranks in [2usize, 4] {
            let (state, _, _) = run_distributed_with_layout(&c, &[], n_ranks).unwrap();
            assert!(
                (state.fidelity(&single).unwrap() - 1.0).abs() < 1e-10,
                "ranks={n_ranks}"
            );
            // Amplitude-exact, not just up to phase/permutation.
            for (a, b) in state.amplitudes().iter().zip(single.amplitudes()) {
                assert!(a.approx_eq(*b, 1e-10));
            }
        }
    }

    #[test]
    fn remapping_eliminates_comm_on_top_heavy_circuit() {
        let c = top_heavy(6);
        let naive = crate::exec::run_and_gather(&c, &[], 4).unwrap().1;
        let (_, remapped, _) = run_distributed_with_layout(&c, &[], 4).unwrap();
        assert!(naive.messages > 0, "test circuit must communicate naively");
        assert_eq!(
            remapped.messages, 0,
            "all activity fits in local qubits after remapping"
        );
    }

    #[test]
    fn remapping_never_hurts_on_mixed_circuit() {
        let mut c = Circuit::new(6);
        c.h(0).cx(0, 5).rz(5, 0.4).cx(5, 0).h(5).cx(2, 3).swap(1, 4);
        let naive = crate::exec::run_and_gather(&c, &[], 4).unwrap().1;
        let (state, remapped, _) = run_distributed_with_layout(&c, &[], 4).unwrap();
        assert!(remapped.messages <= naive.messages);
        let single = nwq_statevec::simulate(&c, &[]).unwrap();
        assert!((state.fidelity(&single).unwrap() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn unpermute_identity_layout_is_noop() {
        let s = StateVector::basis(3, 5).unwrap();
        let out = unpermute(&s, &[0, 1, 2]).unwrap();
        assert_eq!(out.amplitudes(), s.amplitudes());
        assert!(unpermute(&s, &[0, 1]).is_err());
    }

    #[test]
    fn unpermute_swap_layout() {
        // Layout [1, 0, 2]: logical 0 lives at physical 1. Physical |010⟩
        // (idx 2) means logical qubit 0 set → logical idx 1.
        let s = StateVector::basis(3, 2).unwrap();
        let out = unpermute(&s, &[1, 0, 2]).unwrap();
        assert!((out.probability(1) - 1.0).abs() < 1e-12);
    }
}
