//! A statevector partitioned across simulated ranks.
//!
//! Rank `r` owns amplitudes whose top `log2(R)` index bits equal `r`
//! (PGAS layout, as in SV-Sim): global index = `(rank << n_local) | local`.
//! Gates on local qubits run independently per rank (in parallel — each
//! rank models one node's GPU); gates touching global qubits require
//! partner ranks to exchange partitions, which is where all communication
//! cost comes from.

use crate::comm::CommStats;
use nwq_common::bits::dim;
use nwq_common::{Error, Mat2, Mat4, Result, C64, C_ONE, C_ZERO};
use nwq_statevec::StateVector;
use rayon::prelude::*;

/// A distributed statevector over `n_ranks` simulated ranks.
#[derive(Clone, Debug)]
pub struct DistStateVector {
    n_qubits: usize,
    n_local: usize,
    partitions: Vec<Vec<C64>>,
    comm: CommStats,
}

impl DistStateVector {
    /// `|0…0⟩` distributed over `n_ranks` (power of two, and small enough
    /// that every rank owns at least 4 amplitudes so two-qubit local gates
    /// remain possible).
    pub fn zero(n_qubits: usize, n_ranks: usize) -> Result<Self> {
        if !n_ranks.is_power_of_two() {
            return Err(Error::Invalid(format!(
                "{n_ranks} ranks: must be a power of two"
            )));
        }
        let n_global = n_ranks.trailing_zeros() as usize;
        if n_global + 2 > n_qubits {
            return Err(Error::Invalid(format!(
                "{n_ranks} ranks leave fewer than 2 local qubits of a {n_qubits}-qubit register"
            )));
        }
        let n_local = n_qubits - n_global;
        let part_len = dim(n_local);
        let mut partitions = vec![vec![C_ZERO; part_len]; n_ranks];
        partitions[0][0] = C_ONE;
        Ok(DistStateVector {
            n_qubits,
            n_local,
            partitions,
            comm: CommStats::default(),
        })
    }

    /// Assembles a distributed state from worker-produced shards (the real
    /// sharded executor's reassembly path). Shard shape is the caller's
    /// invariant: `partitions.len()` ranks of `2^n_local` amplitudes each.
    pub(crate) fn from_parts(
        n_qubits: usize,
        n_local: usize,
        partitions: Vec<Vec<C64>>,
        comm: CommStats,
    ) -> Self {
        debug_assert_eq!(partitions.len() << n_local, dim(n_qubits));
        debug_assert!(partitions.iter().all(|p| p.len() == dim(n_local)));
        DistStateVector {
            n_qubits,
            n_local,
            partitions,
            comm,
        }
    }

    /// Read-only view of one rank's shard (global indices
    /// `rank·2^n_local .. (rank+1)·2^n_local`).
    pub fn partition(&self, rank: usize) -> &[C64] {
        &self.partitions[rank]
    }

    /// Register width.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Rank count.
    pub fn n_ranks(&self) -> usize {
        self.partitions.len()
    }

    /// Qubits stored within each rank (the rest select the rank).
    pub fn n_local(&self) -> usize {
        self.n_local
    }

    /// Communication counters accumulated so far.
    pub fn comm_stats(&self) -> CommStats {
        self.comm
    }

    /// Gathers the partitions into a single-node [`StateVector`]
    /// (the verification/readout path).
    pub fn gather(&self) -> StateVector {
        let mut amps = Vec::with_capacity(dim(self.n_qubits));
        for p in &self.partitions {
            amps.extend_from_slice(p);
        }
        StateVector::from_amplitudes(amps).expect("partition sizes are powers of two")
    }

    #[inline]
    fn part_bytes(&self) -> u64 {
        (self.partitions[0].len() * 16) as u64
    }

    /// Amplitudes per rank partition.
    pub fn partition_len(&self) -> usize {
        self.partitions[0].len()
    }

    /// Overwrites one amplitude of one rank's partition — the
    /// fault-injection hook modelling a corrupted exchange payload. The
    /// simulator itself never calls this.
    pub fn corrupt_amplitude(&mut self, rank: usize, index: usize, value: C64) -> Result<()> {
        let part = self.partitions.get_mut(rank).ok_or(Error::Invalid(format!(
            "rank {rank} out of range for corruption hook"
        )))?;
        let len = part.len();
        let slot = part.get_mut(index).ok_or(Error::Invalid(format!(
            "amplitude {index} out of range {len}"
        )))?;
        *slot = value;
        Ok(())
    }

    /// Rescales one rank's partition — the fault-injection hook modelling
    /// accumulated norm drift on a node.
    pub fn scale_partition(&mut self, rank: usize, factor: f64) -> Result<()> {
        let part = self.partitions.get_mut(rank).ok_or(Error::Invalid(format!(
            "rank {rank} out of range for drift hook"
        )))?;
        for a in part.iter_mut() {
            *a = *a * factor;
        }
        Ok(())
    }

    /// Applies a single-qubit gate.
    pub fn apply_mat2(&mut self, q: usize, m: &Mat2) -> Result<()> {
        if q >= self.n_qubits {
            return Err(Error::QubitOutOfRange {
                qubit: q,
                n_qubits: self.n_qubits,
            });
        }
        if q < self.n_local {
            // Rank-local: every rank applies the kernel to its partition.
            self.comm.local_gates += 1;
            nwq_telemetry::counter_add("dist.local_gates", 1);
            self.partitions
                .par_iter_mut()
                .for_each(|p| nwq_statevec::kernels::apply_mat2(p, q, m));
            return Ok(());
        }
        // Global qubit: ranks pair up across the qubit's rank-id bit and
        // exchange partitions (modeled MPI sendrecv, 2 messages per pair).
        self.comm.global_gates += 1;
        nwq_telemetry::counter_add("dist.global_gates", 1);
        let bit = 1usize << (q - self.n_local);
        let n_ranks = self.partitions.len();
        let part_bytes = self.part_bytes();
        for r0 in 0..n_ranks {
            if r0 & bit != 0 {
                continue;
            }
            let r1 = r0 | bit;
            let (lo, hi) = self.partitions.split_at_mut(r1);
            let p0 = &mut lo[r0];
            let p1 = &mut hi[0];
            self.comm.messages += 2;
            self.comm.bytes += 2 * part_bytes;
            p0.iter_mut().zip(p1.iter_mut()).for_each(|(a, b)| {
                let (x, y) = (*a, *b);
                *a = m.0[0][0] * x + m.0[0][1] * y;
                *b = m.0[1][0] * x + m.0[1][1] * y;
            });
        }
        nwq_telemetry::counter_add("dist.messages", n_ranks as u64);
        nwq_telemetry::counter_add("dist.bytes", n_ranks as u64 * part_bytes);
        Ok(())
    }

    /// Applies a two-qubit gate; `qa` is the matrix's high bit.
    pub fn apply_mat4(&mut self, qa: usize, qb: usize, m: &Mat4) -> Result<()> {
        if qa >= self.n_qubits || qb >= self.n_qubits {
            return Err(Error::QubitOutOfRange {
                qubit: qa.max(qb),
                n_qubits: self.n_qubits,
            });
        }
        if qa == qb {
            return Err(Error::DuplicateQubit(qa));
        }
        let local = self.n_local;
        match (qa < local, qb < local) {
            (true, true) => {
                self.comm.local_gates += 1;
                nwq_telemetry::counter_add("dist.local_gates", 1);
                self.partitions
                    .par_iter_mut()
                    .for_each(|p| nwq_statevec::kernels::apply_mat4(p, qa, qb, m));
                Ok(())
            }
            (false, true) => self.apply_global_local(qa, qb, m, false),
            (true, false) => {
                // Swap matrix qubit roles so the global qubit is "high".
                self.apply_global_local(qb, qa, &m.swap_qubits(), false)
            }
            (false, false) => self.apply_global_global(qa, qb, m),
        }
    }

    /// Two-qubit gate with `g` global (matrix high bit) and `l` local.
    fn apply_global_local(&mut self, g: usize, l: usize, m: &Mat4, _: bool) -> Result<()> {
        self.comm.global_gates += 1;
        nwq_telemetry::counter_add("dist.global_gates", 1);
        let bit = 1usize << (g - self.n_local);
        let n_ranks = self.partitions.len();
        let l_mask = 1usize << l;
        let part_bytes = self.part_bytes();
        for r0 in 0..n_ranks {
            if r0 & bit != 0 {
                continue;
            }
            let r1 = r0 | bit;
            let (lo_part, hi_part) = self.partitions.split_at_mut(r1);
            let p0 = &mut lo_part[r0];
            let p1 = &mut hi_part[0];
            self.comm.messages += 2;
            self.comm.bytes += 2 * part_bytes;
            for i in 0..p0.len() {
                if i & l_mask != 0 {
                    continue;
                }
                let j = i | l_mask;
                // Matrix index: (global bit << 1) | local bit.
                let v = [p0[i], p0[j], p1[i], p1[j]];
                let mut out = [C_ZERO; 4];
                for (r, o) in out.iter_mut().enumerate() {
                    let row = &m.0[r];
                    *o = row[0] * v[0] + row[1] * v[1] + row[2] * v[2] + row[3] * v[3];
                }
                p0[i] = out[0];
                p0[j] = out[1];
                p1[i] = out[2];
                p1[j] = out[3];
            }
        }
        nwq_telemetry::counter_add("dist.messages", n_ranks as u64);
        nwq_telemetry::counter_add("dist.bytes", n_ranks as u64 * part_bytes);
        Ok(())
    }

    /// Two-qubit gate with both qubits global: groups of four ranks.
    fn apply_global_global(&mut self, qa: usize, qb: usize, m: &Mat4) -> Result<()> {
        self.comm.global_gates += 1;
        nwq_telemetry::counter_add("dist.global_gates", 1);
        let ba = 1usize << (qa - self.n_local);
        let bb = 1usize << (qb - self.n_local);
        let n_ranks = self.partitions.len();
        let part_len = self.partitions[0].len();
        for base in 0..n_ranks {
            if base & (ba | bb) != 0 {
                continue;
            }
            let ranks = [base, base | bb, base | ba, base | ba | bb];
            // All-to-all within the quad: each rank sends to 3 partners.
            self.comm.messages += 12;
            self.comm.bytes += 12 * self.part_bytes();
            for i in 0..part_len {
                let v = [
                    self.partitions[ranks[0]][i],
                    self.partitions[ranks[1]][i],
                    self.partitions[ranks[2]][i],
                    self.partitions[ranks[3]][i],
                ];
                for (r, &rank) in ranks.iter().enumerate() {
                    let row = &m.0[r];
                    self.partitions[rank][i] =
                        row[0] * v[0] + row[1] * v[1] + row[2] * v[2] + row[3] * v[3];
                }
            }
        }
        // 12 messages per quad of ranks → 3 per rank overall.
        nwq_telemetry::counter_add("dist.messages", 3 * n_ranks as u64);
        nwq_telemetry::counter_add("dist.bytes", 3 * n_ranks as u64 * self.part_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwq_common::mat::{mat_cx, mat_h, mat_x};

    #[test]
    fn construction_checks() {
        assert!(DistStateVector::zero(4, 3).is_err());
        assert!(DistStateVector::zero(3, 4).is_err()); // < 2 local qubits
        let d = DistStateVector::zero(5, 4).unwrap();
        assert_eq!(d.n_local(), 3);
        assert_eq!(d.n_ranks(), 4);
        assert_eq!(d.gather().probability(0), 1.0);
    }

    #[test]
    fn local_gate_no_comm() {
        let mut d = DistStateVector::zero(4, 2).unwrap();
        d.apply_mat2(0, &mat_h()).unwrap();
        assert_eq!(d.comm_stats().messages, 0);
        assert_eq!(d.comm_stats().local_gates, 1);
    }

    #[test]
    fn global_x_moves_amplitude_between_ranks() {
        let mut d = DistStateVector::zero(4, 2).unwrap(); // qubit 3 global
        d.apply_mat2(3, &mat_x()).unwrap();
        let s = d.gather();
        assert!((s.probability(0b1000) - 1.0).abs() < 1e-12);
        assert_eq!(d.comm_stats().messages, 2);
        assert_eq!(d.comm_stats().global_gates, 1);
    }

    #[test]
    fn global_h_creates_cross_rank_superposition() {
        let mut d = DistStateVector::zero(4, 2).unwrap();
        d.apply_mat2(3, &mat_h()).unwrap();
        let s = d.gather();
        assert!((s.probability(0) - 0.5).abs() < 1e-12);
        assert!((s.probability(0b1000) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn global_local_cx() {
        // CX(3, 0) on 2 ranks: control global.
        let mut d = DistStateVector::zero(4, 2).unwrap();
        d.apply_mat2(3, &mat_x()).unwrap(); // set control
        d.apply_mat4(3, 0, &mat_cx()).unwrap();
        let s = d.gather();
        assert!((s.probability(0b1001) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn local_global_cx() {
        // CX(0, 3): control local, target global.
        let mut d = DistStateVector::zero(4, 2).unwrap();
        d.apply_mat2(0, &mat_x()).unwrap();
        d.apply_mat4(0, 3, &mat_cx()).unwrap();
        let s = d.gather();
        assert!((s.probability(0b1001) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn global_global_cx() {
        // 4 ranks on 5 qubits: qubits 3, 4 global.
        let mut d = DistStateVector::zero(5, 4).unwrap();
        d.apply_mat2(4, &mat_x()).unwrap();
        d.apply_mat4(4, 3, &mat_cx()).unwrap();
        let s = d.gather();
        assert!((s.probability(0b11000) - 1.0).abs() < 1e-12);
        // X(4): 2 rank pairs × 2 messages; CX(4,3): one quad × 12.
        assert_eq!(d.comm_stats().messages, 4 + 12);
    }

    #[test]
    fn validation_errors() {
        let mut d = DistStateVector::zero(4, 2).unwrap();
        assert!(d.apply_mat2(4, &mat_x()).is_err());
        assert!(d.apply_mat4(1, 1, &mat_cx()).is_err());
        assert!(d.apply_mat4(1, 9, &mat_cx()).is_err());
    }
}
