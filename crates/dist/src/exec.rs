//! Circuit execution on the distributed statevector.

use crate::comm::CommStats;
use crate::faults::FaultInjector;
use crate::partition::DistStateVector;
use nwq_circuit::{Circuit, GateMatrix};
use nwq_common::{Error, Result, C64};
use nwq_statevec::StateVector;

/// Runs `circuit` on a fresh distributed `|0…0⟩` over `n_ranks`,
/// returning the final distributed state.
pub fn run_distributed(
    circuit: &Circuit,
    params: &[f64],
    n_ranks: usize,
) -> Result<DistStateVector> {
    let _span = nwq_telemetry::span!("dist.run");
    let mut state = DistStateVector::zero(circuit.n_qubits(), n_ranks)?;
    for gate in circuit.gates() {
        match gate.matrix(params)? {
            GateMatrix::One(q, m) => state.apply_mat2(q, &m)?,
            GateMatrix::Two(a, b, m) => state.apply_mat4(a, b, &m)?,
        }
    }
    let stats = state.comm_stats();
    let model = crate::costmodel::CostModel::perlmutter_like();
    let total_gates = stats.global_gates + stats.local_gates;
    nwq_telemetry::value_add("dist.modeled_comm_s", model.comm_time_s(&stats, n_ranks));
    nwq_telemetry::value_add(
        "dist.modeled_total_s",
        model.total_time_s(&stats, total_gates, circuit.n_qubits(), n_ranks),
    );
    Ok(state)
}

/// Runs `circuit` on a fresh distributed `|0…0⟩` with faults drawn from
/// `injector`:
///
/// - **rank loss** may strike before any gate (a node can die at any
///   point) and aborts with `Error::Backend` naming the lost rank;
/// - **message corruption** and **norm drift** strike only after gates on
///   global qubits — they model damage carried by the partition exchange,
///   so rank-local gates cannot trigger them.
///
/// The injected damage is left in the returned state for downstream health
/// guards ([`nwq_statevec::NormGuard`], the expval finiteness checks) to
/// detect; this function only plants it.
pub fn run_distributed_faulty(
    circuit: &Circuit,
    params: &[f64],
    n_ranks: usize,
    injector: &mut FaultInjector,
) -> Result<DistStateVector> {
    let _span = nwq_telemetry::span!("dist.run_faulty");
    let mut state = DistStateVector::zero(circuit.n_qubits(), n_ranks)?;
    let n_local = state.n_local();
    for gate in circuit.gates() {
        if let Some(rank) = injector.should_lose_rank(n_ranks) {
            return Err(Error::Backend(format!(
                "rank {rank} lost during distributed execution"
            )));
        }
        let is_global = gate.qubits().iter().any(|&q| q >= n_local);
        match gate.matrix(params)? {
            GateMatrix::One(q, m) => state.apply_mat2(q, &m)?,
            GateMatrix::Two(a, b, m) => state.apply_mat4(a, b, &m)?,
        }
        if is_global {
            if injector.should_corrupt_message() {
                let rank = injector.pick_index(n_ranks);
                let idx = injector.pick_index(state.partition_len());
                state.corrupt_amplitude(rank, idx, C64::new(f64::NAN, f64::NAN))?;
            }
            if injector.should_drift_norm() {
                let rank = injector.pick_index(n_ranks);
                state.scale_partition(rank, 1.001)?;
            }
        }
    }
    Ok(state)
}

/// Runs distributed and gathers, returning `(state, comm stats)` — the
/// validation entry point used by the cross-crate tests.
pub fn run_and_gather(
    circuit: &Circuit,
    params: &[f64],
    n_ranks: usize,
) -> Result<(StateVector, CommStats)> {
    let d = run_distributed(circuit, params, n_ranks)?;
    let stats = d.comm_stats();
    Ok((d.gather(), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::plan_communication;
    use nwq_circuit::Circuit;

    fn sample_circuit(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 1..n {
            c.cx(q - 1, q);
        }
        c.rz(n - 1, 0.7).ry(0, -0.4).swap(0, n - 1);
        c
    }

    #[test]
    fn distributed_matches_single_node_all_rank_counts() {
        let c = sample_circuit(6);
        let single = nwq_statevec::simulate(&c, &[]).unwrap();
        for n_ranks in [1usize, 2, 4, 8] {
            let (gathered, _) = run_and_gather(&c, &[], n_ranks).unwrap();
            for (a, b) in gathered.amplitudes().iter().zip(single.amplitudes()) {
                assert!(a.approx_eq(*b, 1e-10), "ranks={n_ranks}");
            }
        }
    }

    #[test]
    fn executed_comm_matches_plan() {
        let c = sample_circuit(6);
        for n_ranks in [1usize, 2, 4] {
            let (_, stats) = run_and_gather(&c, &[], n_ranks).unwrap();
            let planned = plan_communication(&c, n_ranks).unwrap();
            assert_eq!(stats.messages, planned.messages, "ranks={n_ranks}");
            assert_eq!(stats.bytes, planned.bytes, "ranks={n_ranks}");
            assert_eq!(stats.global_gates, planned.global_gates);
            assert_eq!(stats.local_gates, planned.local_gates);
        }
    }

    #[test]
    fn ghz_across_ranks() {
        let c = {
            let mut c = Circuit::new(5);
            c.h(0);
            for q in 1..5 {
                c.cx(0, q);
            }
            c
        };
        let (s, stats) = run_and_gather(&c, &[], 4).unwrap();
        assert!((s.probability(0) - 0.5).abs() < 1e-10);
        assert!((s.probability(0b11111) - 0.5).abs() < 1e-10);
        assert!(stats.global_gates >= 2); // CX onto qubits 3 and 4
    }

    #[test]
    fn zero_rate_faulty_run_matches_clean_run() {
        let c = sample_circuit(5);
        let clean = run_distributed(&c, &[], 4).unwrap().gather();
        let mut inj = FaultInjector::new(crate::faults::FaultSpec::default());
        let faulty = run_distributed_faulty(&c, &[], 4, &mut inj)
            .unwrap()
            .gather();
        for (a, b) in faulty.amplitudes().iter().zip(clean.amplitudes()) {
            assert!(a.approx_eq(*b, 1e-12));
        }
        assert_eq!(inj.stats().total(), 0);
    }

    #[test]
    fn rank_loss_aborts_with_backend_error() {
        let c = sample_circuit(5);
        let mut inj = FaultInjector::new(crate::faults::FaultSpec {
            rank_loss: 1.0,
            seed: 5,
            ..Default::default()
        });
        let e = run_distributed_faulty(&c, &[], 4, &mut inj).unwrap_err();
        assert!(matches!(e, Error::Backend(_)), "{e}");
        assert!(e.is_transient());
        assert_eq!(inj.stats().rank_losses, 1);
    }

    #[test]
    fn message_corruption_plants_non_finite_amplitudes() {
        let c = sample_circuit(5);
        let mut inj = FaultInjector::new(crate::faults::FaultSpec {
            message_corruption: 1.0,
            seed: 11,
            ..Default::default()
        });
        let s = run_distributed_faulty(&c, &[], 4, &mut inj)
            .unwrap()
            .gather();
        assert!(inj.stats().message_corruptions > 0);
        assert!(!s.norm_sqr().is_finite());
    }

    #[test]
    fn norm_drift_breaks_normalization_detectably() {
        let c = sample_circuit(5);
        let mut inj = FaultInjector::new(crate::faults::FaultSpec {
            norm_drift: 1.0,
            seed: 2,
            ..Default::default()
        });
        let s = run_distributed_faulty(&c, &[], 4, &mut inj)
            .unwrap()
            .gather();
        assert!(inj.stats().norm_drifts > 0);
        let norm = s.norm_sqr();
        assert!(norm.is_finite());
        assert!((norm - 1.0).abs() > 1e-9, "norm {norm} should have drifted");
    }

    #[test]
    fn parameterized_distributed_run() {
        let mut c = Circuit::new(4);
        c.ry(3, nwq_circuit::ParamExpr::var(0)).cx(3, 0);
        let single = nwq_statevec::simulate(&c, &[1.1]).unwrap();
        let (gathered, _) = run_and_gather(&c, &[1.1], 2).unwrap();
        for (a, b) in gathered.amplitudes().iter().zip(single.amplitudes()) {
            assert!(a.approx_eq(*b, 1e-10));
        }
    }
}
