//! Circuit execution on the distributed statevector.

use crate::comm::CommStats;
use crate::faults::{FaultInjector, FaultSchedule};
use crate::partition::DistStateVector;
use crate::shard::{
    run_sharded, run_sharded_faulty, run_sharded_resilient, RecoveryOptions, RecoveryReport,
    ShardOptions,
};
use nwq_circuit::Circuit;
use nwq_common::Result;
use nwq_statevec::StateVector;

/// Runs `circuit` on a fresh distributed `|0…0⟩` over `n_ranks`,
/// returning the final distributed state.
///
/// Execution is *real* sharded execution ([`crate::shard`]): one worker
/// thread per rank, true partner exchanges on global-qubit gates. The
/// unfused per-gate path keeps the result bitwise identical to the
/// single-node simulator, which the parity tests below pin down.
pub fn run_distributed(
    circuit: &Circuit,
    params: &[f64],
    n_ranks: usize,
) -> Result<DistStateVector> {
    let _span = nwq_telemetry::span!("dist.run");
    let state = run_sharded(circuit, params, n_ranks, &ShardOptions::default())?;
    let stats = state.comm_stats();
    let model = crate::costmodel::CostModel::perlmutter_like();
    let total_gates = stats.global_gates + stats.local_gates;
    nwq_telemetry::value_add("dist.modeled_comm_s", model.comm_time_s(&stats, n_ranks));
    nwq_telemetry::value_add(
        "dist.modeled_total_s",
        model.total_time_s(&stats, total_gates, circuit.n_qubits(), n_ranks),
    );
    Ok(state)
}

/// Runs `circuit` on a fresh distributed `|0…0⟩` with faults drawn from
/// `injector`:
///
/// - **rank loss** may strike before any gate (a node can die at any
///   point): the losing worker drops out and the run aborts with
///   `Error::Backend` naming the lost rank;
/// - **message corruption** and **norm drift** strike only after gates on
///   global qubits — they model damage carried by the partition exchange,
///   so rank-local gates cannot trigger them.
///
/// Faults are drawn at compile time in the same per-gate order the old
/// simulated path used (seeded schedules reproduce), then replayed by the
/// owning worker threads. The injected damage is left in the returned
/// state for downstream health guards ([`nwq_statevec::NormGuard`], the
/// expval finiteness checks) to detect; this function only plants it.
pub fn run_distributed_faulty(
    circuit: &Circuit,
    params: &[f64],
    n_ranks: usize,
    injector: &mut FaultInjector,
) -> Result<DistStateVector> {
    let _span = nwq_telemetry::span!("dist.run_faulty");
    run_sharded_faulty(circuit, params, n_ranks, injector)
}

/// Runs `circuit` through the survivable sharded executor
/// ([`crate::shard::run_sharded_resilient`]): consistent-cut snapshots,
/// exchange deadlines, and bitwise replay recovery from the faults
/// `schedule` plans (or any real channel failure). Telemetry records the
/// recovery count and latency under `resilience.shard_*`.
pub fn run_distributed_resilient(
    circuit: &Circuit,
    params: &[f64],
    n_ranks: usize,
    opts: &ShardOptions,
    recovery: &RecoveryOptions,
    schedule: &FaultSchedule,
) -> Result<(DistStateVector, RecoveryReport)> {
    let _span = nwq_telemetry::span!("dist.run_resilient");
    run_sharded_resilient(circuit, params, n_ranks, opts, recovery, schedule)
}

/// Runs distributed and gathers, returning `(state, comm stats)` — the
/// validation entry point used by the cross-crate tests.
pub fn run_and_gather(
    circuit: &Circuit,
    params: &[f64],
    n_ranks: usize,
) -> Result<(StateVector, CommStats)> {
    let d = run_distributed(circuit, params, n_ranks)?;
    let stats = d.comm_stats();
    Ok((d.gather(), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::plan_communication;
    use nwq_circuit::Circuit;
    use nwq_common::Error;

    fn sample_circuit(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 1..n {
            c.cx(q - 1, q);
        }
        c.rz(n - 1, 0.7).ry(0, -0.4).swap(0, n - 1);
        c
    }

    #[test]
    fn distributed_matches_single_node_all_rank_counts() {
        // BITWISE parity: the real sharded path replicates the single-node
        // kernels' arithmetic exactly, not just to tolerance.
        let c = sample_circuit(6);
        let single = nwq_statevec::simulate(&c, &[]).unwrap();
        for n_ranks in [1usize, 2, 4, 8] {
            let (gathered, _) = run_and_gather(&c, &[], n_ranks).unwrap();
            for (a, b) in gathered.amplitudes().iter().zip(single.amplitudes()) {
                assert_eq!(a.re.to_bits(), b.re.to_bits(), "ranks={n_ranks}");
                assert_eq!(a.im.to_bits(), b.im.to_bits(), "ranks={n_ranks}");
            }
        }
    }

    #[test]
    fn executed_comm_matches_plan() {
        let c = sample_circuit(6);
        for n_ranks in [1usize, 2, 4, 8] {
            let (_, stats) = run_and_gather(&c, &[], n_ranks).unwrap();
            let planned = plan_communication(&c, n_ranks).unwrap();
            assert_eq!(stats.messages, planned.messages, "ranks={n_ranks}");
            assert_eq!(stats.bytes, planned.bytes, "ranks={n_ranks}");
            assert_eq!(stats.global_gates, planned.global_gates);
            assert_eq!(stats.local_gates, planned.local_gates);
        }
    }

    #[test]
    fn ghz_across_ranks() {
        let c = {
            let mut c = Circuit::new(5);
            c.h(0);
            for q in 1..5 {
                c.cx(0, q);
            }
            c
        };
        let (s, stats) = run_and_gather(&c, &[], 4).unwrap();
        assert!((s.probability(0) - 0.5).abs() < 1e-10);
        assert!((s.probability(0b11111) - 0.5).abs() < 1e-10);
        assert!(stats.global_gates >= 2); // CX onto qubits 3 and 4
    }

    #[test]
    fn zero_rate_faulty_run_matches_clean_run() {
        let c = sample_circuit(5);
        let clean = run_distributed(&c, &[], 4).unwrap().gather();
        let mut inj = FaultInjector::new(crate::faults::FaultSpec::default());
        let faulty = run_distributed_faulty(&c, &[], 4, &mut inj)
            .unwrap()
            .gather();
        for (a, b) in faulty.amplitudes().iter().zip(clean.amplitudes()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        assert_eq!(inj.stats().total(), 0);
    }

    #[test]
    fn rank_loss_aborts_with_backend_error() {
        let c = sample_circuit(5);
        let mut inj = FaultInjector::new(crate::faults::FaultSpec {
            rank_loss: 1.0,
            seed: 5,
            ..Default::default()
        });
        let e = run_distributed_faulty(&c, &[], 4, &mut inj).unwrap_err();
        assert!(matches!(e, Error::Backend(_)), "{e}");
        assert!(e.is_transient());
        assert_eq!(inj.stats().rank_losses, 1);
    }

    #[test]
    fn message_corruption_plants_non_finite_amplitudes() {
        let c = sample_circuit(5);
        let mut inj = FaultInjector::new(crate::faults::FaultSpec {
            message_corruption: 1.0,
            seed: 11,
            ..Default::default()
        });
        let s = run_distributed_faulty(&c, &[], 4, &mut inj)
            .unwrap()
            .gather();
        assert!(inj.stats().message_corruptions > 0);
        assert!(!s.norm_sqr().is_finite());
    }

    #[test]
    fn norm_drift_breaks_normalization_detectably() {
        let c = sample_circuit(5);
        let mut inj = FaultInjector::new(crate::faults::FaultSpec {
            norm_drift: 1.0,
            seed: 2,
            ..Default::default()
        });
        let s = run_distributed_faulty(&c, &[], 4, &mut inj)
            .unwrap()
            .gather();
        assert!(inj.stats().norm_drifts > 0);
        let norm = s.norm_sqr();
        assert!(norm.is_finite());
        assert!((norm - 1.0).abs() > 1e-9, "norm {norm} should have drifted");
    }

    #[test]
    fn parameterized_distributed_run() {
        let mut c = Circuit::new(4);
        c.ry(3, nwq_circuit::ParamExpr::var(0)).cx(3, 0);
        let single = nwq_statevec::simulate(&c, &[1.1]).unwrap();
        let (gathered, _) = run_and_gather(&c, &[1.1], 2).unwrap();
        for (a, b) in gathered.amplitudes().iter().zip(single.amplitudes()) {
            assert!(a.approx_eq(*b, 1e-10));
        }
    }
}
