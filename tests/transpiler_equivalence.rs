//! Integration: transpiler passes preserve semantics on real chemistry
//! circuits, executed on the optimized simulator (not just the test
//! oracle).

use nwq_chem::molecules::h2_sto3g;
use nwq_chem::uccsd::uccsd_ansatz;
use nwq_circuit::fusion::fuse;
use nwq_circuit::passes::cancel_and_merge;
use nwq_circuit::qft::qft_circuit;
use nwq_circuit::Circuit;
use nwq_statevec::simulate;

fn fidelity(a: &nwq_statevec::StateVector, b: &nwq_statevec::StateVector) -> f64 {
    a.fidelity(b).expect("same width")
}

#[test]
fn fusion_preserves_uccsd_states_and_energies() {
    let mol = h2_sto3g();
    let h = mol.to_qubit_hamiltonian().expect("JW");
    let ansatz = uccsd_ansatz(4, 2).expect("UCCSD");
    for theta in [[0.0, 0.0, 0.0], [0.07, -0.04, -0.21], [0.3, 0.2, 0.1]] {
        let bound = ansatz.bind(&theta).expect("bind");
        let (fused, stats) = fuse(&bound).expect("fuse");
        assert!(
            stats.reduction() > 0.5,
            "fusion under 50% on UCCSD: {:?}",
            stats
        );
        let plain = simulate(&bound, &[]).expect("plain run");
        let optimized = simulate(&fused, &[]).expect("fused run");
        assert!((fidelity(&plain, &optimized) - 1.0).abs() < 1e-9);
        let e_plain = plain.energy(&h).expect("energy");
        let e_fused = optimized.energy(&h).expect("energy");
        assert!((e_plain - e_fused).abs() < 1e-9);
    }
}

#[test]
fn cancellation_then_fusion_compose() {
    let ansatz = uccsd_ansatz(6, 2)
        .expect("UCCSD")
        .bind(&[0.11; 8])
        .expect("bind");
    let cleaned = cancel_and_merge(&ansatz).expect("cancel");
    let (fused, _) = fuse(&cleaned).expect("fuse");
    assert!(fused.len() <= cleaned.len());
    assert!(cleaned.len() <= ansatz.len());
    let a = simulate(&ansatz, &[]).expect("run");
    let b = simulate(&fused, &[]).expect("run");
    assert!((fidelity(&a, &b) - 1.0).abs() < 1e-9);
}

#[test]
fn fusion_on_qft_circuit() {
    let qft = qft_circuit(6).expect("QFT builds");
    let (fused, stats) = fuse(&qft).expect("fuse");
    assert!(stats.gates_after < stats.gates_before);
    let a = simulate(&qft, &[]).expect("run");
    let b = simulate(&fused, &[]).expect("run");
    assert!((fidelity(&a, &b) - 1.0).abs() < 1e-9);
}

#[test]
fn uccsd_inverse_roundtrip_on_simulator() {
    let ansatz = uccsd_ansatz(6, 2).expect("UCCSD");
    let theta = vec![0.09; ansatz.n_params()];
    let bound = ansatz.bind(&theta).expect("bind");
    let mut round = bound.clone();
    round.append(&bound.inverse()).expect("append");
    let state = simulate(&round, &[]).expect("run");
    assert!((state.probability(0) - 1.0).abs() < 1e-9);
}

#[test]
fn fusion_respects_two_qubit_cap() {
    // Every fused block in a wide circuit stays ≤ 2 qubits (paper §4.3's
    // deliberate design decision).
    let mut c = Circuit::new(8);
    for q in 0..8 {
        c.h(q);
    }
    for q in 0..7 {
        c.cx(q, q + 1);
    }
    for q in 0..8 {
        c.rz(q, 0.1 * q as f64);
    }
    let (fused, _) = fuse(&c).expect("fuse");
    for g in fused.gates() {
        assert!(g.qubits().len() <= 2);
    }
}
