//! Multi-tenant serving must not change physics: energies served to N
//! concurrent clients are bitwise identical to serial library runs — with
//! cross-job batching, shared caching, worker reuse, and injected faults
//! all in play — and overload surfaces as explicit rejection, never lost
//! or corrupted jobs.

use nwq_core::backend::{Backend, DirectBackend};
use nwq_core::resilience::{run_vqe_with, FaultSpec, ResilienceOptions};
use nwq_opt::NelderMead;
use nwq_serve::{
    build_problem, Client, Engine, EngineConfig, JobSpec, JobStatus, Priority, QueueConfig, Server,
    ServerConfig, SubmitOutcome,
};
use std::time::Duration;

fn accept(engine: &Engine, spec: JobSpec) -> u64 {
    match engine.submit(spec) {
        SubmitOutcome::Accepted(id) => id,
        r => panic!("expected acceptance, got {r:?}"),
    }
}

fn finished(engine: &Engine, id: u64) -> nwq_serve::JobView {
    let view = engine
        .wait_terminal(id, Duration::from_secs(120))
        .expect("job id must be known");
    assert_eq!(view.status, JobStatus::Done, "job {id}: {:?}", view.error);
    view
}

/// Serial references computed through the plain library, no server.
fn reference_energies(thetas: &[Vec<f64>]) -> Vec<f64> {
    let problem = build_problem("toy").expect("registry");
    let mut backend = DirectBackend::new();
    thetas
        .iter()
        .map(|t| {
            backend
                .energy(&problem.problem.ansatz, t, &problem.problem.hamiltonian)
                .expect("serial evaluation")
        })
        .collect()
}

fn theta_grid(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|k| vec![-1.2 + 0.17 * k as f64, 0.9 - 0.21 * k as f64])
        .collect()
}

#[test]
fn concurrent_energy_jobs_match_serial_backend_bitwise() {
    let engine = Engine::start(EngineConfig {
        workers: 4,
        max_batch: 8,
        ..Default::default()
    });
    let thetas = theta_grid(24);
    let references = reference_energies(&thetas);
    // Submit from 4 concurrent tenant threads, interleaved priorities.
    let ids: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|c| {
                let engine = &engine;
                let thetas = &thetas;
                scope.spawn(move || {
                    thetas
                        .iter()
                        .skip(c)
                        .step_by(4)
                        .map(|t| {
                            let pri = if c % 2 == 0 {
                                Priority::High
                            } else {
                                Priority::Low
                            };
                            accept(engine, JobSpec::energy("toy", t.clone()).with_priority(pri))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (c, client_ids) in ids.iter().enumerate() {
        for (i, &id) in client_ids.iter().enumerate() {
            let k = c + 4 * i; // position in the original grid
            let served = finished(&engine, id).outcome.unwrap().energy;
            assert_eq!(
                served.to_bits(),
                references[k].to_bits(),
                "θ #{k} served through the engine must be bitwise identical"
            );
        }
    }
    engine.drain();
}

#[test]
fn concurrent_vqe_jobs_match_serial_driver_bitwise() {
    let engine = Engine::start(EngineConfig {
        workers: 3,
        ..Default::default()
    });
    let x0 = vec![0.8, -0.4];
    // Three tenants run the *same* minimization concurrently; a serial
    // library run is the ground truth for all of them.
    let ids: Vec<u64> = (0..3)
        .map(|_| accept(&engine, JobSpec::vqe("toy", x0.clone(), 1200)))
        .collect();
    let problem = build_problem("toy").unwrap();
    let mut backend = DirectBackend::new();
    let mut opt = NelderMead::for_vqe();
    let reference = run_vqe_with(
        &problem.problem,
        &mut backend,
        &mut opt,
        &x0,
        1200,
        &ResilienceOptions::default(),
    )
    .unwrap();
    for id in ids {
        let out = finished(&engine, id).outcome.unwrap();
        assert_eq!(
            out.energy.to_bits(),
            reference.energy.to_bits(),
            "served VQE energy must equal the serial driver's bitwise"
        );
        assert_eq!(out.evaluations, reference.evaluations as u64);
    }
    engine.drain();
}

#[test]
fn injected_faults_with_retries_leave_energies_bitwise_identical() {
    // A hostile 25% evaluation-failure rate on every worker: retries must
    // absorb all of it without changing a single returned bit.
    let engine = Engine::start(EngineConfig {
        workers: 2,
        faults: Some(FaultSpec::eval_failures(0.25, 20260805)),
        ..Default::default()
    });
    let thetas = theta_grid(16);
    let references = reference_energies(&thetas);
    let energy_ids: Vec<u64> = thetas
        .iter()
        .map(|t| accept(&engine, JobSpec::energy("toy", t.clone())))
        .collect();
    let x0 = vec![0.8, -0.4];
    let vqe_id = accept(&engine, JobSpec::vqe("toy", x0.clone(), 900));

    for (k, id) in energy_ids.into_iter().enumerate() {
        let served = finished(&engine, id).outcome.unwrap().energy;
        assert_eq!(served.to_bits(), references[k].to_bits(), "θ #{k}");
    }
    let problem = build_problem("toy").unwrap();
    let mut backend = DirectBackend::new();
    let mut opt = NelderMead::for_vqe();
    let clean = run_vqe_with(
        &problem.problem,
        &mut backend,
        &mut opt,
        &x0,
        900,
        &ResilienceOptions::default(),
    )
    .unwrap();
    let served = finished(&engine, vqe_id).outcome.unwrap();
    assert_eq!(served.energy.to_bits(), clean.energy.to_bits());
    engine.drain();
}

#[test]
fn overload_rejects_explicitly_and_drains_without_loss() {
    let engine = Engine::start(EngineConfig {
        workers: 1,
        queue: QueueConfig {
            capacity: 4,
            ..Default::default()
        },
        ..Default::default()
    });
    // Pin the worker so the queue actually fills.
    let blocker = accept(&engine, JobSpec::vqe("toy", vec![1.0, 2.0], 1500));
    let mut accepted = vec![blocker];
    let mut rejected = 0u64;
    for k in 0..20 {
        match engine.submit(JobSpec::energy("toy", vec![0.05 * k as f64, 0.3])) {
            SubmitOutcome::Accepted(id) => accepted.push(id),
            SubmitOutcome::Rejected { reason } => {
                assert_eq!(reason, "queue_full");
                rejected += 1;
            }
        }
    }
    assert!(rejected > 0, "20 submissions into 4 slots must overflow");
    engine.drain();
    // Drain loses nothing: every accepted job is terminal-and-done.
    for id in accepted {
        assert_eq!(engine.view(id).unwrap().status, JobStatus::Done);
    }
    let stats = engine.stats();
    assert_eq!(stats.rejected, rejected);
    assert_eq!(
        stats.completed + stats.rejected,
        stats.submitted,
        "every submission is accounted for: {stats:?}"
    );
}

#[test]
fn worker_panic_quarantines_poison_and_drains_without_loss() {
    // A poison job panics its worker on every claim. Containment must
    // requeue its batch-mates (who then complete), quarantine the poison
    // job after the attempt budget, and keep drain accounting exact:
    // nothing claimed is ever lost.
    let marker = f64::from_bits(0x7ff8_0000_dead_0002); // NaN payload, never computed
    let engine = Engine::start(EngineConfig {
        workers: 2,
        max_batch: 8,
        max_job_attempts: 3,
        panic_marker: Some(marker),
        ..Default::default()
    });
    // Pin both workers so the poison job and innocents pool in the queue
    // and get claimed together.
    let blockers: Vec<u64> = (0..2)
        .map(|_| accept(&engine, JobSpec::vqe("toy", vec![1.0, 2.0], 1200)))
        .collect();
    let poison = accept(&engine, JobSpec::energy("toy", vec![marker, 0.1]));
    let thetas = theta_grid(6);
    let references = reference_energies(&thetas);
    let innocents: Vec<u64> = thetas
        .iter()
        .map(|t| accept(&engine, JobSpec::energy("toy", t.clone())))
        .collect();
    engine.drain();
    // Innocents survive the crashes of their batch — and still serve
    // bitwise-exact energies through the requeue path.
    for (k, id) in innocents.into_iter().enumerate() {
        let view = engine.view(id).unwrap();
        assert_eq!(view.status, JobStatus::Done, "θ #{k}: {:?}", view.error);
        assert_eq!(
            view.outcome.unwrap().energy.to_bits(),
            references[k].to_bits(),
            "θ #{k} must be bitwise exact even after a crash-requeue"
        );
    }
    for id in blockers {
        assert_eq!(engine.view(id).unwrap().status, JobStatus::Done);
    }
    let view = engine.view(poison).unwrap();
    assert_eq!(view.status, JobStatus::Failed);
    let err = view.error.expect("quarantine carries a terminal error");
    assert!(
        err.starts_with("poison_job_quarantined"),
        "poison job must be quarantined, got: {err}"
    );
    let stats = engine.stats();
    assert_eq!(stats.quarantined, 1, "{stats:?}");
    assert!(stats.requeued >= 1, "{stats:?}");
    // Zero-loss drain accounting: every accepted job reached exactly one
    // terminal state; nothing vanished inside the crash loop.
    assert_eq!(
        stats.completed + stats.failed + stats.cancelled + stats.expired,
        stats.accepted,
        "{stats:?}"
    );
    assert_eq!(stats.submitted, stats.accepted + stats.rejected);
}

#[test]
fn tcp_round_trip_preserves_energies_bitwise() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr().unwrap().to_string();
    let serving = std::thread::spawn(move || server.run());

    let thetas = theta_grid(6);
    let references = reference_energies(&thetas);
    let mut client = Client::connect(&addr).expect("connect");
    let ids: Vec<u64> = thetas
        .iter()
        .map(
            |t| match client.submit(&JobSpec::energy("toy", t.clone())).unwrap() {
                SubmitOutcome::Accepted(id) => id,
                r => panic!("{r:?}"),
            },
        )
        .collect();
    for (k, id) in ids.into_iter().enumerate() {
        let reply = client.wait_result(id).expect("result");
        let served = reply
            .get("energy")
            .and_then(nwq_telemetry::JsonValue::as_f64)
            .expect("done reply carries energy");
        assert_eq!(
            served.to_bits(),
            references[k].to_bits(),
            "θ #{k} must survive engine + JSON wire bitwise"
        );
    }
    client.drain().expect("drain");
    serving.join().unwrap().expect("server exits cleanly");
}
