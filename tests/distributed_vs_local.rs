//! Integration: the simulated multi-rank engine is bit-exact against the
//! single-node engine on chemistry workloads, and its communication
//! accounting matches the static planner.

use nwq_chem::molecules::h2_sto3g;
use nwq_chem::uccsd::uccsd_ansatz;
use nwq_circuit::qft::qft_circuit;
use nwq_dist::{plan_communication, run_and_gather, CostModel};
use nwq_statevec::simulate;

#[test]
fn uccsd_ansatz_bit_exact_across_rank_counts() {
    let ansatz = uccsd_ansatz(6, 2)
        .expect("UCCSD")
        .bind(&[0.13; 8])
        .expect("bind");
    let single = simulate(&ansatz, &[]).expect("single-node");
    for n_ranks in [1usize, 2, 4, 8] {
        let (gathered, _) = run_and_gather(&ansatz, &[], n_ranks).expect("distributed");
        for (a, b) in gathered.amplitudes().iter().zip(single.amplitudes()) {
            assert!(a.approx_eq(*b, 1e-10), "ranks={n_ranks}");
        }
    }
}

#[test]
fn energies_match_across_engines() {
    let mol = h2_sto3g();
    let h = mol.to_qubit_hamiltonian().expect("JW");
    let ansatz = uccsd_ansatz(4, 2).expect("UCCSD");
    let theta = [0.06, -0.03, -0.2];
    let bound = ansatz.bind(&theta).expect("bind");
    let e_single = simulate(&bound, &[])
        .expect("run")
        .energy(&h)
        .expect("energy");
    let (gathered, _) = run_and_gather(&bound, &[], 2).expect("distributed");
    let e_dist = gathered.energy(&h).expect("energy");
    assert!((e_single - e_dist).abs() < 1e-12);
}

#[test]
fn qft_stresses_global_qubits() {
    // The QFT touches every qubit pair: heavy cross-rank traffic, still
    // bit-exact.
    let qft = qft_circuit(7).expect("QFT");
    let single = simulate(&qft, &[]).expect("single-node");
    let (gathered, stats) = run_and_gather(&qft, &[], 8).expect("distributed");
    assert!(stats.global_gates > 0);
    assert!(stats.messages > 0);
    for (a, b) in gathered.amplitudes().iter().zip(single.amplitudes()) {
        assert!(a.approx_eq(*b, 1e-9));
    }
}

#[test]
fn planner_matches_execution_on_chemistry_circuits() {
    let ansatz = uccsd_ansatz(6, 2)
        .expect("UCCSD")
        .bind(&[0.1; 8])
        .expect("bind");
    for n_ranks in [2usize, 4] {
        let (_, executed) = run_and_gather(&ansatz, &[], n_ranks).expect("distributed");
        let planned = plan_communication(&ansatz, n_ranks).expect("plan");
        assert_eq!(executed, planned, "ranks={n_ranks}");
    }
}

#[test]
fn cost_model_shows_compute_scaling() {
    let ansatz = uccsd_ansatz(6, 2)
        .expect("UCCSD")
        .bind(&[0.1; 8])
        .expect("bind");
    let model = CostModel::perlmutter_like();
    let t1 = model.compute_time_s(ansatz.len() as u64, 6, 1);
    let t4 = model.compute_time_s(ansatz.len() as u64, 6, 4);
    assert!((t1 / t4 - 4.0).abs() < 1e-9);
    // Communication is zero on one rank, positive on more.
    assert_eq!(
        model.comm_time_s(&plan_communication(&ansatz, 1).expect("plan"), 1),
        0.0
    );
    assert!(model.comm_time_s(&plan_communication(&ansatz, 4).expect("plan"), 4) > 0.0);
}
