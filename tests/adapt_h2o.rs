//! Integration: ADAPT-VQE convergence on downfolded water-like models
//! (the Fig 5 experiment at test-sized scale; the 12-qubit instance runs
//! in the `figures` binary).

use nwq_chem::molecules::water_model;
use nwq_chem::pool::OperatorPool;
use nwq_core::adapt::{run_adapt_vqe, AdaptConfig, StopReason};
use nwq_core::backend::DirectBackend;
use nwq_core::exact::{ground_energy_sector_default, Sector};
use nwq_core::workflow::run_adapt_workflow;
use nwq_opt::NelderMead;

#[test]
fn adapt_reaches_chemical_accuracy_on_8_qubit_water_model() {
    let mol = water_model(4, 4);
    let h = mol.to_qubit_hamiltonian().expect("hamiltonian builds");
    let e_exact = ground_energy_sector_default(&h, Sector::closed_shell(4)).expect("Lanczos");
    let e_hf = mol.hf_total_energy();
    assert!(e_exact < e_hf, "model must have correlation energy");

    let pool = OperatorPool::singles_doubles(8, 4).expect("pool builds");
    let mut backend = DirectBackend::new();
    let mut opt = NelderMead::for_vqe();
    let config = AdaptConfig {
        max_iterations: 12,
        grad_tol: 1e-6,
        inner_max_evals: 1500,
        target_energy: Some(e_exact),
        accuracy: 1e-3,
    };
    let r = run_adapt_vqe(&h, &pool, 4, &mut backend, &mut opt, &config).expect("ADAPT");

    // Fig 5's qualitative claims at this scale:
    // (1) chemical accuracy is reached,
    assert_eq!(
        r.stop_reason,
        StopReason::ReachedAccuracy,
        "dE = {}",
        r.energy - e_exact
    );
    assert!(r.energy - e_exact <= 1e-3);
    // (2) energy decreases monotonically with iteration,
    let mut prev = f64::INFINITY;
    for it in &r.iterations {
        assert!(it.energy <= prev + 1e-9);
        prev = it.energy;
    }
    // (3) one operator (layer) is added per iteration,
    assert_eq!(r.params.len(), r.iterations.len());
    // (4) the result is variational.
    assert!(r.energy >= e_exact - 1e-8);
}

#[test]
fn adapt_workflow_downfolds_then_converges() {
    // Full §2 + §5.3 chain: 5-orbital model → 4-orbital active space
    // (8 qubits) → ADAPT.
    let mol = water_model(5, 4);
    let mut backend = DirectBackend::new();
    let config = AdaptConfig {
        max_iterations: 10,
        grad_tol: 1e-6,
        inner_max_evals: 1200,
        target_energy: None,
        accuracy: 1e-3,
    };
    let (h, r, report) =
        run_adapt_workflow(&mol, 0, 4, &mut backend, &config).expect("workflow runs");
    assert_eq!(h.n_qubits(), 8);
    assert_eq!(report.discarded_virtuals, 1);
    assert!(report.external_mp2_energy < 0.0);
    // The ADAPT energy must sit between exact and HF of the active space.
    let e_exact = ground_energy_sector_default(&h, Sector::closed_shell(4)).expect("Lanczos");
    assert!(r.energy >= e_exact - 1e-8);
    assert!(!r.iterations.is_empty());
    let first = r.iterations.first().unwrap().energy;
    let last = r.iterations.last().unwrap().energy;
    assert!(last <= first);
}

#[test]
fn adapt_gradient_screening_prefers_strong_operators() {
    // The first chosen operator must carry the largest HF-state gradient.
    let mol = water_model(4, 4);
    let h = mol.to_qubit_hamiltonian().expect("hamiltonian builds");
    let pool = OperatorPool::singles_doubles(8, 4).expect("pool builds");
    let mut psi = vec![nwq_common::C_ZERO; 1 << 8];
    psi[mol.hf_determinant() as usize] = nwq_common::C_ONE;
    let grads = pool.gradients(&h, &psi).expect("gradients");
    let best_by_grad = grads
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
        .unwrap()
        .0;
    let mut backend = DirectBackend::new();
    let mut opt = NelderMead::for_vqe();
    let config = AdaptConfig {
        max_iterations: 1,
        inner_max_evals: 400,
        ..Default::default()
    };
    let r = run_adapt_vqe(&h, &pool, 4, &mut backend, &mut opt, &config).expect("ADAPT");
    assert_eq!(r.iterations[0].operator, pool.ops[best_by_grad].name);
}
