//! Integration: the structure/bind split end to end.
//!
//! Pins the three PR-level guarantees that unit tests cannot see in one
//! crate: (1) the UCCSD ansatz — whose CX·RZ(θ)·CX apex blocks are exactly
//! diagonal at every θ even though no two of them are *adjacent* — compiles
//! to a plan that actually uses the diagonal sweep kernel; (2) every energy
//! path reuses ONE cached [`PlanTemplate`] per circuit structure; and
//! (3) neither template reuse, cache clearing, nor the serve worker path
//! changes a single bit of any reported energy.

use nwq_chem::molecules::h2_sto3g;
use nwq_chem::uccsd::uccsd_ansatz;
use nwq_core::backend::{Backend, DirectBackend};
use nwq_serve::{build_problem, Engine, EngineConfig, JobSpec, JobStatus, SubmitOutcome};
use nwq_statevec::{plan_cache, ExecPlan, PlanOp};
use std::sync::Arc;
use std::time::Duration;

fn h2_setup() -> (nwq_pauli::PauliOp, nwq_circuit::Circuit) {
    let mol = h2_sto3g();
    let h = mol.to_qubit_hamiltonian().expect("JW");
    let ansatz = uccsd_ansatz(4, 2).expect("UCCSD");
    (h, ansatz)
}

/// Regression for the "diag_coalesced == 0 on UCCSD" investigation: the
/// UCCSD exponential's apex blocks (CX ladder · RZ(θ) · CX ladder) fuse to
/// exactly-diagonal two-qubit matrices at every θ, but are fenced from one
/// another by the non-diagonal ladder blocks, so ≥2-factor *coalescing*
/// can never fire. Single-factor sweeps make the plan route them through
/// the diagonal kernel anyway — this pins that they exist.
#[test]
fn uccsd_plan_contains_diagonal_sweeps() {
    let (_, ansatz) = h2_setup();
    for theta in [[0.1, -0.2, 0.4], [1.3, 0.7, -0.9]] {
        let plan = ExecPlan::compile(&ansatz, &theta).unwrap();
        let sweeps = plan
            .ops()
            .iter()
            .filter(|op| matches!(op, PlanOp::DiagSweep { .. }))
            .count();
        assert!(
            sweeps >= 1,
            "UCCSD plan at {theta:?} must contain a DiagSweep, ops: {}",
            plan.len()
        );
    }
}

/// One template per circuit structure, shared across independent backends
/// and energy evaluations — and template reuse never changes the energy.
#[test]
fn energy_paths_share_one_template_and_energies_survive_cache_clear() {
    let (h, ansatz) = h2_setup();
    let thetas = [[0.0, 0.0, 0.0], [0.31, -0.62, 0.2], [1.1, 0.45, -0.8]];

    // Cold energies: template built fresh for this structure.
    plan_cache::clear();
    let mut cold = Vec::new();
    for theta in &thetas {
        let mut backend = DirectBackend::new();
        cold.push(backend.energy(&ansatz, theta, &h).unwrap());
    }

    // The structure resolves to one shared template across lookups.
    let t1 = plan_cache::template_for(&ansatz).unwrap();
    let t2 = plan_cache::template_for(&ansatz).unwrap();
    assert!(
        Arc::ptr_eq(&t1, &t2),
        "same structure must share a template"
    );

    // Warm energies through fresh backends: bitwise the cold values.
    for (theta, &cold_e) in thetas.iter().zip(&cold) {
        let mut backend = DirectBackend::new();
        let warm_e = backend.energy(&ansatz, theta, &h).unwrap();
        assert_eq!(warm_e.to_bits(), cold_e.to_bits());
    }

    // Clearing the cache and rebuilding the template changes nothing.
    plan_cache::clear();
    let mut backend = DirectBackend::new();
    for (theta, &cold_e) in thetas.iter().zip(&cold) {
        let rebuilt_e = backend.energy(&ansatz, theta, &h).unwrap();
        assert_eq!(rebuilt_e.to_bits(), cold_e.to_bits());
    }
}

/// The serve worker path — warmed per-worker backends over the global
/// template cache — returns bitwise the energies of a standalone
/// [`DirectBackend`] run of the same parameters.
#[test]
fn serve_workers_match_direct_backend_bitwise_through_template_cache() {
    let engine = Engine::start(EngineConfig {
        workers: 2,
        ..Default::default()
    });
    let thetas = [[0.3, -0.7], [0.3, -0.7], [1.05, 0.2]];
    let ids: Vec<_> = thetas
        .iter()
        .map(
            |&t| match engine.submit(JobSpec::energy("toy", t.to_vec())) {
                SubmitOutcome::Accepted(id) => id,
                r => panic!("{r:?}"),
            },
        )
        .collect();
    let problem = build_problem("toy").unwrap();
    for (&theta, &id) in thetas.iter().zip(&ids) {
        let view = engine
            .wait_terminal(id, Duration::from_secs(60))
            .expect("job id must be known");
        assert_eq!(view.status, JobStatus::Done, "{:?}", view.error);
        let mut direct = DirectBackend::new();
        let reference = direct
            .energy(
                &problem.problem.ansatz,
                &theta,
                &problem.problem.hamiltonian,
            )
            .unwrap();
        assert_eq!(view.outcome.unwrap().energy.to_bits(), reference.to_bits());
    }
    engine.drain();
}
