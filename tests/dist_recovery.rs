//! Chaos tests for the survivable sharded executor: a rank killed at an
//! arbitrary gate step must be recovered from the last consistent cut and
//! replayed to a state — and an energy — BITWISE identical to the
//! fault-free run, across shard counts. Stragglers that stay under the
//! exchange deadline must never trip a spurious recovery.

use nwq_circuit::Circuit;
use nwq_dist::{
    distributed_energy, run_resilient_energy, run_sharded, run_sharded_resilient, FaultSchedule,
    RankDelay, RecoveryOptions, ShardOptions,
};
use nwq_pauli::PauliOp;
use proptest::prelude::*;

/// Short exchange deadlines so a dead rank's partners give up in
/// milliseconds instead of the production default's seconds.
fn test_opts() -> ShardOptions {
    ShardOptions {
        fuse_local: false,
        exchange_timeout_ms: 100,
        exchange_retries: 2,
        ..ShardOptions::default()
    }
}

fn test_recovery(snapshot_every: usize) -> RecoveryOptions {
    RecoveryOptions {
        snapshot_every,
        max_recoveries: 8,
        keep_versions: 2,
        snapshot_dir: None,
    }
}

/// Random circuits over the same gate alphabet the dist parity proptests
/// sweep — every kind the sharded executor knows, local and global.
fn arb_circuit(n: usize, max_len: usize) -> impl Strategy<Value = Circuit> {
    let gate = (0..8u8, 0..n, 1..n.max(2), -3.0..3.0f64);
    proptest::collection::vec(gate, 1..max_len).prop_map(move |specs| {
        let mut c = Circuit::new(n);
        for (kind, q, dq, angle) in specs {
            let q2 = (q + dq) % n;
            match kind {
                0 => c.h(q),
                1 => c.x(q),
                2 => c.rz(q, angle),
                3 => c.ry(q, angle),
                4 if q2 != q => c.cx(q, q2),
                5 if q2 != q => c.cz(q, q2),
                6 if q2 != q => c.rzz(q, q2, angle),
                7 if q2 != q => c.swap(q, q2),
                _ => c.rx(q, angle),
            };
        }
        c
    })
}

fn ring_hamiltonian(n: usize) -> PauliOp {
    let mut terms = Vec::new();
    for q in 0..n {
        let mut zz = vec!['I'; n];
        zz[q] = 'Z';
        zz[(q + 1) % n] = 'Z';
        terms.push(format!("0.5 {}", zz.iter().collect::<String>()));
        let mut x = vec!['I'; n];
        x[q] = 'X';
        terms.push(format!("0.25 {}", x.iter().collect::<String>()));
    }
    PauliOp::parse(&terms.join(" + ")).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Kill a random rank at a random gate step, for every shard count:
    /// amplitudes and the gather-free energy must be bitwise identical to
    /// the fault-free run.
    #[test]
    fn random_rank_death_recovers_bitwise(
        c in (5usize..=6).prop_flat_map(|n| arb_circuit(n, 18)),
        kill_seed in 0usize..1000,
        snapshot_every in 1usize..6,
    ) {
        let h = ring_hamiltonian(c.n_qubits());
        let clean = run_sharded(&c, &[], 1, &test_opts()).unwrap().gather();
        for n_ranks in [2usize, 4, 8] {
            // The shard-partial reduction order depends on the rank count,
            // so the fault-free energy reference is per-n_ranks.
            let clean_energy = {
                let state = run_sharded(&c, &[], n_ranks, &test_opts()).unwrap();
                distributed_energy(&state, &h).unwrap()
            };
            let gate_step = kill_seed % c.gates().len();
            let rank = (kill_seed / 7) % n_ranks;
            let schedule = FaultSchedule::kill(gate_step, rank);
            let (state, report) = run_sharded_resilient(
                &c, &[], n_ranks, &test_opts(), &test_recovery(snapshot_every), &schedule,
            ).unwrap();
            prop_assert_eq!(report.recoveries, 1, "ranks={}", n_ranks);
            for (a, b) in state.gather().amplitudes().iter().zip(clean.amplitudes()) {
                prop_assert_eq!(a.re.to_bits(), b.re.to_bits(), "ranks={}", n_ranks);
                prop_assert_eq!(a.im.to_bits(), b.im.to_bits(), "ranks={}", n_ranks);
            }
            let (energy, report) = run_resilient_energy(
                &c, &[], n_ranks, &h, &test_opts(), &test_recovery(snapshot_every), &schedule,
            ).unwrap();
            prop_assert_eq!(report.recoveries, 1);
            prop_assert_eq!(energy.to_bits(), clean_energy.to_bits(), "ranks={}", n_ranks);
        }
    }
}

/// Stragglers below the exchange deadline slow the run down but must not
/// be mistaken for dead ranks: zero recoveries, bitwise-clean result.
#[test]
fn stragglers_under_deadline_cause_no_false_recoveries() {
    let mut c = Circuit::new(5);
    c.h(0);
    for q in 1..5 {
        c.cx(q - 1, q);
    }
    c.ry(4, 0.8).rzz(0, 4, -0.4).swap(1, 4);
    let clean = run_sharded(&c, &[], 4, &test_opts()).unwrap().gather();
    let schedule = FaultSchedule {
        deaths: vec![],
        drops: vec![],
        delays: (0..4)
            .map(|rank| RankDelay {
                gate_step: 1 + rank,
                rank,
                delay_ms: 30,
            })
            .collect(),
    };
    let (state, report) =
        run_sharded_resilient(&c, &[], 4, &test_opts(), &test_recovery(4), &schedule).unwrap();
    assert_eq!(report.recoveries, 0, "sub-deadline stalls are not failures");
    assert_eq!(report.generations, 1);
    for (a, b) in state.gather().amplitudes().iter().zip(clean.amplitudes()) {
        assert_eq!(a.re.to_bits(), b.re.to_bits());
        assert_eq!(a.im.to_bits(), b.im.to_bits());
    }
}

/// The recovered energy pipeline composes with telemetry: the resilience
/// counters move when a death is recovered.
#[test]
fn recovery_counters_are_recorded() {
    nwq_telemetry::set_enabled(true);
    let before = nwq_telemetry::counter_value("resilience.shard_recoveries");
    let mut c = Circuit::new(5);
    c.h(0);
    for q in 1..5 {
        c.cx(q - 1, q);
    }
    let schedule = FaultSchedule::kill(2, 1);
    let (_, report) =
        run_sharded_resilient(&c, &[], 4, &test_opts(), &test_recovery(2), &schedule).unwrap();
    assert_eq!(report.recoveries, 1);
    let after = nwq_telemetry::counter_value("resilience.shard_recoveries");
    assert!(after > before, "counter must advance: {before} -> {after}");
}
