//! Integration: alternative ansätze and execution strategies — the
//! hardware-efficient ansatz vs UCCSD, and batched parameter-shift
//! gradients driving a gradient-based VQE.

use nwq_chem::molecules::h2_sto3g;
use nwq_chem::uccsd::uccsd_ansatz;
use nwq_circuit::hea::hardware_efficient_ansatz;
use nwq_core::backend::{Backend, DirectBackend};
use nwq_core::exact::ground_energy_default;
use nwq_core::vqe::{run_vqe, VqeProblem};
use nwq_opt::{NelderMead, Optimizer};
use nwq_statevec::batch::{batched_excitation_gradient, batched_parameter_shift_gradient};

#[test]
fn hea_vqe_solves_toy_hamiltonian() {
    let h = nwq_pauli::PauliOp::parse("1.0 ZZ + 1.0 XX").unwrap();
    let exact = ground_energy_default(&h).unwrap();
    let ansatz = hardware_efficient_ansatz(2, 2).unwrap();
    let problem = VqeProblem {
        hamiltonian: h,
        ansatz,
    };
    let mut backend = DirectBackend::new();
    let mut opt = NelderMead {
        initial_step: 0.4,
        ..Default::default()
    };
    let x0: Vec<f64> = (0..problem.ansatz.n_params())
        .map(|k| 0.3 + 0.1 * k as f64)
        .collect();
    let r = run_vqe(&problem, &mut backend, &mut opt, &x0, 6000).unwrap();
    assert!((r.energy - exact).abs() < 1e-4, "{} vs {exact}", r.energy);
}

#[test]
fn hea_is_shallower_but_less_structured_than_uccsd() {
    // The tradeoff the paper's related work discusses: HEA needs far
    // fewer gates per layer than UCCSD, at the cost of chemical
    // structure.
    let uccsd = uccsd_ansatz(4, 2).unwrap();
    let hea = hardware_efficient_ansatz(4, 2).unwrap();
    assert!(
        hea.len() < uccsd.len() / 3,
        "HEA {} vs UCCSD {}",
        hea.len(),
        uccsd.len()
    );
    assert!(hea.depth() < uccsd.depth());
}

#[test]
fn hea_vqe_on_h2_beats_hartree_fock() {
    // HEA lacks particle-number structure and traps simplex methods in
    // barren regions; exact per-rotation parameter-shift gradients (the
    // π/2 rule IS exact for HEA) with Adam escape them.
    let mol = h2_sto3g();
    let h = mol.to_qubit_hamiltonian().unwrap();
    let exact = ground_energy_default(&h).unwrap();
    let ansatz = hardware_efficient_ansatz(4, 2).unwrap();
    let mut theta: Vec<f64> = (0..ansatz.n_params())
        .map(|k| 0.3 + 0.17 * (k as f64) * (if k % 2 == 0 { 1.0 } else { -1.0 }))
        .collect();
    let mut m = vec![0.0; theta.len()];
    let mut v = vec![0.0; theta.len()];
    let (lr, b1, b2, eps) = (0.08, 0.9, 0.999, 1e-8);
    for t in 1..=250 {
        let grad = batched_parameter_shift_gradient(&ansatz, &theta, &h).unwrap();
        for i in 0..theta.len() {
            m[i] = b1 * m[i] + (1.0 - b1) * grad[i];
            v[i] = b2 * v[i] + (1.0 - b2) * grad[i] * grad[i];
            let mh = m[i] / (1.0 - b1_pow(b1, t));
            let vh = v[i] / (1.0 - b1_pow(b2, t));
            theta[i] -= lr * mh / (vh.sqrt() + eps);
        }
    }
    let e = nwq_statevec::simulate(&ansatz.bind(&theta).unwrap(), &[])
        .unwrap()
        .energy(&h)
        .unwrap();
    assert!(
        e < mol.hf_total_energy() - 1e-3,
        "{e} vs HF {}",
        mol.hf_total_energy()
    );
    assert!(e >= exact - 1e-9, "variational bound violated");
}

#[test]
fn batched_gradient_descent_matches_nelder_mead_optimum() {
    // Drive Adam with batched parameter-shift gradients (paper §6.2
    // batching) and confirm it lands on the same H2 minimum as the
    // derivative-free path.
    let mol = h2_sto3g();
    let h = mol.to_qubit_hamiltonian().unwrap();
    let ansatz = uccsd_ansatz(4, 2).unwrap();
    let exact = ground_energy_default(&h).unwrap();

    let mut theta = vec![0.0; ansatz.n_params()];
    let mut m = vec![0.0; theta.len()];
    let mut v = vec![0.0; theta.len()];
    let (lr, b1, b2, eps) = (0.1, 0.9, 0.999, 1e-8);
    for t in 1..=120 {
        // UCCSD parameters need the π/4 excitation rule: the π/2 rule
        // returns an exactly zero gradient at the HF point.
        let grad = batched_excitation_gradient(&ansatz, &theta, &h).unwrap();
        for i in 0..theta.len() {
            m[i] = b1 * m[i] + (1.0 - b1) * grad[i];
            v[i] = b2 * v[i] + (1.0 - b2) * grad[i] * grad[i];
            let mh = m[i] / (1.0 - b1_pow(b1, t));
            let vh = v[i] / (1.0 - b1_pow(b2, t));
            theta[i] -= lr * mh / (vh.sqrt() + eps);
        }
    }
    let e = nwq_statevec::simulate(&ansatz.bind(&theta).unwrap(), &[])
        .unwrap()
        .energy(&h)
        .unwrap();
    assert!(
        (e - exact).abs() < 1.6e-3,
        "batched-gradient VQE {e} vs {exact}"
    );

    // Cross-check against the derivative-free optimum.
    let problem = VqeProblem {
        hamiltonian: h,
        ansatz,
    };
    let mut backend = DirectBackend::new();
    let mut nm = NelderMead::for_vqe();
    let x0 = vec![0.0; problem.ansatz.n_params()];
    let mut objective = |x: &[f64]| {
        backend
            .energy(&problem.ansatz, x, &problem.hamiltonian)
            .unwrap()
    };
    let nm_result = nm.minimize(&mut objective, &x0, 4000);
    assert!((e - nm_result.value).abs() < 2e-3);
}

fn b1_pow(b: f64, t: usize) -> f64 {
    b.powi(t as i32)
}
