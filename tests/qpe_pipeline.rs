//! Integration: quantum phase estimation through the full stack —
//! Hamiltonians from the chemistry substrate, circuits from the
//! transpiler, execution on the optimized simulator.

use nwq_chem::molecules::h2_sto3g;
use nwq_chem::uccsd::{append_hf_state, uccsd_ansatz};
use nwq_core::exact::ground_energy_default;
use nwq_core::qpe::{run_qpe, QpeConfig};
use nwq_pauli::PauliOp;
use std::f64::consts::PI;

#[test]
fn qpe_exact_on_commuting_chemistry_like_hamiltonian() {
    // Diagonal (Z-only) Hamiltonians commute term-wise: QPE is exact up
    // to register resolution.
    let h = PauliOp::parse("0.5 ZII + 0.25 IZI + 0.125 IIZ").expect("parses");
    let mut prep = nwq_circuit::Circuit::new(3);
    prep.x(0).x(2); // |101⟩: E = −0.5 + 0.25 − 0.125 = −0.375
    let cfg = QpeConfig {
        n_ancilla: 6,
        t: PI,
        trotter_steps: 1,
        ..Default::default()
    };
    let out = run_qpe(&h, &prep, &cfg).expect("QPE");
    let e = out.energy_near(-0.4);
    assert!((e + 0.375).abs() <= out.resolution() / 2.0 + 1e-12, "E {e}");
    assert!(out.peak_probability > 0.9);
}

#[test]
fn qpe_h2_improves_with_resolution() {
    let mol = h2_sto3g();
    let h = mol.to_qubit_hamiltonian().expect("JW");
    let mut prep = nwq_circuit::Circuit::new(4);
    append_hf_state(&mut prep, 2).expect("prep");
    let fci = ground_energy_default(&h).expect("Lanczos");
    let coarse = run_qpe(
        &h,
        &prep,
        &QpeConfig {
            n_ancilla: 4,
            t: 1.5,
            trotter_steps: 6,
            ..Default::default()
        },
    )
    .expect("QPE");
    let fine = run_qpe(
        &h,
        &prep,
        &QpeConfig {
            n_ancilla: 6,
            t: 1.5,
            trotter_steps: 12,
            ..Default::default()
        },
    )
    .expect("QPE");
    let err_coarse = (coarse.energy_near(fci) - fci).abs();
    let err_fine = (fine.energy_near(fci) - fci).abs();
    assert!(err_fine <= err_coarse + 1e-9, "{err_fine} !<= {err_coarse}");
    assert!(err_fine < 0.1, "fine QPE error {err_fine}");
}

#[test]
fn qpe_from_vqe_state_sharpens_peak() {
    // Preparing the ansatz-optimized state (instead of bare HF) increases
    // the ground-peak weight: the VQE → QPE handoff of the workflow.
    let mol = h2_sto3g();
    let h = mol.to_qubit_hamiltonian().expect("JW");
    let fci = ground_energy_default(&h).expect("Lanczos");

    let mut hf_prep = nwq_circuit::Circuit::new(4);
    append_hf_state(&mut hf_prep, 2).expect("prep");

    // Short VQE to get good parameters.
    let ansatz = uccsd_ansatz(4, 2).expect("UCCSD");
    let problem = nwq_core::vqe::VqeProblem {
        hamiltonian: h.clone(),
        ansatz: ansatz.clone(),
    };
    let mut backend = nwq_core::backend::DirectBackend::new();
    let mut opt = nwq_opt::NelderMead::for_vqe();
    let x0 = vec![0.0; ansatz.n_params()];
    let vqe = nwq_core::vqe::run_vqe(&problem, &mut backend, &mut opt, &x0, 2500).expect("VQE");
    let vqe_prep = ansatz.bind(&vqe.params).expect("bind");

    let cfg = QpeConfig {
        n_ancilla: 5,
        t: 1.5,
        trotter_steps: 10,
        ..Default::default()
    };
    let from_hf = run_qpe(&h, &hf_prep, &cfg).expect("QPE");
    let from_vqe = run_qpe(&h, &vqe_prep, &cfg).expect("QPE");
    assert!(
        from_vqe.peak_probability >= from_hf.peak_probability - 1e-9,
        "VQE state peak {} < HF peak {}",
        from_vqe.peak_probability,
        from_hf.peak_probability
    );
    let e = from_vqe.energy_near(fci);
    assert!(
        (e - fci).abs() < 0.15,
        "QPE-from-VQE error {}",
        (e - fci).abs()
    );
}

#[test]
fn qpe_distribution_normalized() {
    let h = PauliOp::parse("1.0 Z").expect("parses");
    let mut prep = nwq_circuit::Circuit::new(1);
    prep.h(0);
    let out = run_qpe(
        &h,
        &prep,
        &QpeConfig {
            n_ancilla: 4,
            t: 1.0,
            trotter_steps: 2,
            ..Default::default()
        },
    )
    .expect("QPE");
    let total: f64 = out.distribution.iter().sum();
    assert!((total - 1.0).abs() < 1e-9);
    assert!(out.phase >= 0.0 && out.phase < 1.0);
}
