//! Cross-crate resilience tests: checkpoint→restart trajectory identity
//! (property-tested over the kill point and optimizer), end-to-end fault
//! injection through the full VQE stack, and per-fault-class detection by
//! the numerical health guards.

use nwq_circuit::{Circuit, ParamExpr};
use nwq_common::Error;
use nwq_core::backend::DirectBackend;
use nwq_core::resilience::{
    run_vqe_with, CheckpointConfig, FaultSpec, FaultyBackend, ResilienceOptions, ResumeState,
};
use nwq_core::vqe::{run_vqe, VqeProblem, VqeResult};
use nwq_dist::{run_distributed_faulty, FaultInjector};
use nwq_opt::{NelderMead, Optimizer, Spsa};
use nwq_pauli::PauliOp;
use nwq_statevec::NormGuard;
use proptest::prelude::*;
use std::path::PathBuf;

fn toy_problem() -> VqeProblem {
    let mut ansatz = Circuit::new(2);
    ansatz
        .ry(0, ParamExpr::var(0))
        .cx(0, 1)
        .ry(1, ParamExpr::var(1));
    VqeProblem {
        hamiltonian: PauliOp::parse("1.0 ZZ + 1.0 XX").unwrap(),
        ansatz,
    }
}

fn make_optimizer(which: bool) -> Box<dyn Optimizer> {
    if which {
        Box::new(NelderMead::default())
    } else {
        Box::new(Spsa {
            a: 0.3,
            ..Default::default()
        })
    }
}

fn tmp_checkpoint(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nwq-restart-{}-{tag}.json", std::process::id()))
}

fn assert_bitwise_equal(a: &VqeResult, b: &VqeResult) {
    assert_eq!(a.energy.to_bits(), b.energy.to_bits());
    assert_eq!(a.evaluations, b.evaluations);
    assert_eq!(a.params.len(), b.params.len());
    for (x, y) in a.params.iter().zip(&b.params) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    assert_eq!(a.history, b.history);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Killing a run at ANY point and resuming from its checkpoint must
    /// reproduce the uninterrupted trajectory bitwise, for both a
    /// deterministic simplex optimizer and seeded SPSA.
    #[test]
    fn kill_anywhere_resume_is_bitwise_identical(
        kill_after in 1usize..120,
        use_nelder_mead in proptest::bool::ANY,
        x0a in -1.5..1.5f64,
        x0b in -1.5..1.5f64,
    ) {
        let problem = toy_problem();
        let x0 = [x0a, x0b];
        let max_evals = 160;
        let clean = {
            let mut backend = DirectBackend::new();
            let mut opt = make_optimizer(use_nelder_mead);
            run_vqe(&problem, &mut backend, &mut *opt, &x0, max_evals).unwrap()
        };
        let path = tmp_checkpoint(&format!("prop-{kill_after}-{use_nelder_mead}"));
        let killed = {
            let mut backend = DirectBackend::new();
            let mut opt = make_optimizer(use_nelder_mead);
            let opts = ResilienceOptions {
                checkpoint: Some(CheckpointConfig::new(&path)),
                abort_after_evals: Some(kill_after),
                ..Default::default()
            };
            run_vqe_with(&problem, &mut backend, &mut *opt, &x0, max_evals, &opts)
        };
        match killed {
            // Kill point inside the run: resume and compare bitwise.
            Err(Error::Interrupted { checkpoint: Some(_), .. }) => {
                let resumed = {
                    let mut backend = DirectBackend::new();
                    let mut opt = make_optimizer(use_nelder_mead);
                    let opts = ResilienceOptions {
                        resume: Some(ResumeState::load(&path).unwrap()),
                        ..Default::default()
                    };
                    run_vqe_with(&problem, &mut backend, &mut *opt, &x0, max_evals, &opts)
                        .unwrap()
                };
                assert_bitwise_equal(&resumed, &clean);
            }
            // Run converged before the kill point: must match the clean run.
            Ok(r) => assert_bitwise_equal(&r, &clean),
            Err(other) => panic!("unexpected failure: {other}"),
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn h2_uccsd_vqe_converges_through_ten_percent_faults() {
    let m = nwq_chem::molecules::h2_sto3g();
    let h = m.to_qubit_hamiltonian().unwrap();
    let exact =
        nwq_core::exact::ground_energy_sector_default(&h, nwq_core::exact::Sector::closed_shell(2))
            .unwrap();
    let problem = VqeProblem {
        hamiltonian: h,
        ansatz: nwq_chem::uccsd::uccsd_ansatz(4, 2).unwrap(),
    };
    let mut backend = FaultyBackend::wrap(DirectBackend::new(), FaultSpec::eval_failures(0.1, 7));
    let mut opt = NelderMead::for_vqe();
    let x0 = vec![0.0; problem.ansatz.n_params()];
    let r = run_vqe_with(
        &problem,
        &mut backend,
        &mut opt,
        &x0,
        4000,
        &ResilienceOptions::default(),
    )
    .unwrap();
    assert!(
        (r.energy - exact).abs() < 1.6e-3,
        "faulted VQE {} vs exact {exact}",
        r.energy
    );
    assert!(backend.fault_stats().eval_failures > 0);
}

// --- per-fault-class detection: every fault the injector can plant is ---
// --- caught by a guard somewhere downstream.                          ---

#[test]
fn rank_loss_is_surfaced_as_transient_backend_error() {
    let mut c = Circuit::new(4);
    c.h(0).cx(0, 1).cx(1, 2).cx(2, 3);
    let mut inj = FaultInjector::new(nwq_dist::FaultSpec {
        rank_loss: 1.0,
        seed: 1,
        ..Default::default()
    });
    let e = run_distributed_faulty(&c, &[], 4, &mut inj).unwrap_err();
    assert!(e.is_transient(), "{e}");
}

#[test]
fn corrupted_exchange_is_caught_by_the_norm_guard() {
    let mut c = Circuit::new(4);
    c.h(3).cx(3, 0).cx(0, 2); // gates on global qubits at 4 ranks
    let mut inj = FaultInjector::new(nwq_dist::FaultSpec {
        message_corruption: 1.0,
        seed: 2,
        ..Default::default()
    });
    let corrupted = run_distributed_faulty(&c, &[], 4, &mut inj)
        .unwrap()
        .gather();
    assert!(inj.stats().message_corruptions > 0);
    // Feed the corrupted state through a strictly guarded executor sweep:
    // the non-finite amplitudes must be rejected as a numerical error.
    let mut ex = nwq_statevec::Executor::with_guard(NormGuard::strict());
    let mut state = corrupted;
    let id = Circuit::new(4);
    let e = ex.run_on(&id, &[], &mut state).unwrap_err();
    assert!(matches!(e, Error::Numerical(_)), "{e}");
}

#[test]
fn norm_drift_is_repaired_by_the_norm_guard() {
    let mut c = Circuit::new(4);
    c.h(3).cx(3, 0).cx(0, 2);
    let mut inj = FaultInjector::new(nwq_dist::FaultSpec {
        norm_drift: 1.0,
        seed: 3,
        ..Default::default()
    });
    let drifted = run_distributed_faulty(&c, &[], 4, &mut inj)
        .unwrap()
        .gather();
    assert!(inj.stats().norm_drifts > 0);
    assert!((drifted.norm_sqr() - 1.0).abs() > 1e-9);
    let mut ex = nwq_statevec::Executor::with_guard(NormGuard::strict());
    let mut state = drifted;
    let id = Circuit::new(4);
    ex.run_on(&id, &[], &mut state).unwrap();
    assert!(
        (state.norm_sqr() - 1.0).abs() < 1e-12,
        "guard must renormalize"
    );
}

#[test]
fn injected_nan_energy_is_detected_and_retried_end_to_end() {
    let problem = toy_problem();
    let spec = FaultSpec {
        nan_amplitude: 0.15,
        seed: 11,
        ..FaultSpec::default()
    };
    let mut backend = FaultyBackend::wrap(DirectBackend::new(), spec);
    let mut opt = NelderMead::default();
    let r = run_vqe_with(
        &problem,
        &mut backend,
        &mut opt,
        &[1.0, 2.5],
        2000,
        &ResilienceOptions::default(),
    )
    .unwrap();
    assert!(r.energy.is_finite());
    assert!((r.energy + 2.0).abs() < 1e-4);
    assert!(backend.fault_stats().nan_amplitudes > 0);
}
