//! Integration: the full Fig 2 pipeline on H2/STO-3G, across backends.

use nwq_chem::molecules::h2_sto3g;
use nwq_chem::uccsd::uccsd_ansatz;
use nwq_core::backend::{
    Backend, CachedMeasureBackend, DirectBackend, DistributedBackend, NonCachingBackend,
};
use nwq_core::exact::ground_energy_default;
use nwq_core::vqe::{run_vqe, VqeProblem};
use nwq_core::workflow::{run_vqe_workflow, WorkflowConfig};
use nwq_opt::{NelderMead, Optimizer};
use nwq_pauli::PauliOp;

fn h2_problem() -> (VqeProblem, f64, f64) {
    let mol = h2_sto3g();
    let h = mol.to_qubit_hamiltonian().expect("JW");
    let exact = ground_energy_default(&h).expect("Lanczos");
    let problem = VqeProblem {
        hamiltonian: h,
        ansatz: uccsd_ansatz(4, 2).expect("UCCSD"),
    };
    (problem, exact, mol.hf_total_energy())
}

#[test]
fn h2_vqe_reaches_chemical_accuracy_direct_backend() {
    let (problem, exact, hf) = h2_problem();
    let mut backend = DirectBackend::new();
    let mut opt = NelderMead::for_vqe();
    let x0 = vec![0.0; problem.ansatz.n_params()];
    let r = run_vqe(&problem, &mut backend, &mut opt, &x0, 4000).expect("VQE");
    assert!((r.energy - exact).abs() < 1.6e-3, "{} vs {exact}", r.energy);
    assert!(r.energy < hf, "no correlation recovered");
    assert!(r.energy >= exact - 1e-9, "variational bound violated");
}

#[test]
fn all_exact_backends_agree_along_the_optimization_path() {
    let (problem, _, _) = h2_problem();
    // Fixed parameter probes, including the known H2 optimum region.
    for theta in [[0.0, 0.0, 0.0], [0.05, -0.02, 0.11], [0.0, 0.0, -0.22]] {
        let mut direct = DirectBackend::new();
        let reference = direct
            .energy(&problem.ansatz, &theta, &problem.hamiltonian)
            .expect("direct energy");
        let mut others: Vec<Box<dyn Backend>> = vec![
            Box::new(NonCachingBackend::new()),
            Box::new(CachedMeasureBackend::new()),
            Box::new(DistributedBackend::new(2)),
            Box::new(DistributedBackend::new(4)),
        ];
        for b in others.iter_mut() {
            let e = b
                .energy(&problem.ansatz, &theta, &problem.hamiltonian)
                .expect("backend energy");
            assert!(
                (e - reference).abs() < 1e-9,
                "{} disagrees at {theta:?}: {e} vs {reference}",
                b.name()
            );
        }
    }
}

#[test]
fn workflow_and_manual_pipeline_agree() {
    let mol = h2_sto3g();
    let cfg = WorkflowConfig {
        n_frozen: 0,
        n_active: 2,
        max_evals: 4000,
        compute_exact: true,
    };
    let wf = run_vqe_workflow(&mol, &cfg).expect("workflow");
    let (problem, exact, _) = h2_problem();
    let mut backend = DirectBackend::new();
    let mut opt = NelderMead::for_vqe();
    let x0 = vec![0.0; problem.ansatz.n_params()];
    let manual = run_vqe(&problem, &mut backend, &mut opt, &x0, 4000).expect("VQE");
    assert!((wf.vqe.energy - manual.energy).abs() < 1e-6);
    assert!((wf.exact_energy.unwrap() - exact).abs() < 1e-8);
    assert_eq!(wf.n_qubits, 4);
}

#[test]
fn caching_backend_saves_gates_on_a_real_optimization() {
    // Run the same short optimization on caching and non-caching
    // backends; the cached path must apply far fewer gates (Fig 3's
    // claim exercised end-to-end).
    let (problem, _, _) = h2_problem();
    let budget = 120;
    let run = |backend: &mut dyn Backend| {
        let mut opt = NelderMead::for_vqe();
        let x0 = vec![0.0; problem.ansatz.n_params()];
        let mut objective = |theta: &[f64]| {
            backend
                .energy(&problem.ansatz, theta, &problem.hamiltonian)
                .expect("energy evaluates")
        };
        opt.minimize(&mut objective, &x0, budget);
    };
    let mut non_caching = NonCachingBackend::new();
    run(&mut non_caching);
    let mut cached = CachedMeasureBackend::new();
    run(&mut cached);
    let mut direct = DirectBackend::new();
    run(&mut direct);
    let g_nc = non_caching.stats().gates_applied;
    let g_ca = cached.stats().gates_applied;
    let g_d = direct.stats().gates_applied;
    assert!(g_nc > 3 * g_ca, "non-caching {g_nc} vs cached {g_ca}");
    assert!(g_ca > g_d, "cached {g_ca} vs direct {g_d}");
}

#[test]
fn vqe_on_parsed_textbook_hamiltonian() {
    // The paper's Eq. 4 toy Hamiltonian, end to end from a text label.
    let h = PauliOp::parse("1.0 ZZ + 1.0 XX").expect("parses");
    let mut ansatz = nwq_circuit::Circuit::new(2);
    ansatz
        .ry(0, nwq_circuit::ParamExpr::var(0))
        .cx(0, 1)
        .ry(1, nwq_circuit::ParamExpr::var(1));
    let exact = ground_energy_default(&h).expect("Lanczos");
    let problem = VqeProblem {
        hamiltonian: h,
        ansatz,
    };
    let mut backend = DirectBackend::new();
    let mut opt = NelderMead::default();
    let r = run_vqe(&problem, &mut backend, &mut opt, &[1.0, 2.5], 2500).expect("VQE");
    assert!((r.energy - exact).abs() < 1e-5);
}
