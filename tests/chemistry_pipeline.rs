//! Integration: the chemistry substrate end to end — integrals →
//! fermionic operators → Jordan–Wigner → energies, validated against
//! literature values and physical invariants.

use nwq_chem::downfold::{downfold_to_active, freeze_core, truncate_virtuals};
use nwq_chem::jw::{determinant_index, jordan_wigner};
use nwq_chem::molecules::{h2_sto3g, hydrogen_chain, water_model};
use nwq_chem::uccsd::uccsd_excitations;
use nwq_core::exact::ground_energy_default;
use nwq_pauli::apply::expectation_op;

#[test]
fn h2_literature_energies() {
    let mol = h2_sto3g();
    // HF: −1.1167 Ha (Szabo–Ostlund).
    assert!((mol.hf_total_energy() + 1.1167).abs() < 2e-3);
    // FCI: −1.1373 Ha.
    let h = mol.to_qubit_hamiltonian().expect("JW");
    let e = ground_energy_default(&h).expect("Lanczos");
    assert!((e + 1.1373).abs() < 2e-3, "FCI {e}");
    // Correlation energy ≈ −20.6 mHa.
    let corr = e - mol.hf_total_energy();
    assert!(corr < -0.015 && corr > -0.03, "correlation {corr}");
}

#[test]
fn hamiltonian_commutes_with_particle_number() {
    // [H, N] = 0: the electronic Hamiltonian conserves particle number.
    let mol = h2_sto3g();
    let h = mol.to_qubit_hamiltonian().expect("JW");
    let mut n_op = nwq_chem::fermion::FermionOp::zero();
    for p in 0..4 {
        n_op.add_assign(nwq_chem::fermion::FermionOp::one_body(1.0, p, p));
    }
    let n_q = jordan_wigner(&n_op, 4).expect("JW");
    let comm = h.commutator(&n_q).expect("commutator");
    assert!(comm.one_norm() < 1e-10, "[H,N] norm {}", comm.one_norm());
}

#[test]
fn hf_expectation_matches_rhf_formula_on_models() {
    for mol in [
        water_model(4, 4),
        water_model(5, 6),
        hydrogen_chain(4, -1.0, 2.0),
    ] {
        let h = mol.to_qubit_hamiltonian().expect("JW");
        let mut psi = vec![nwq_common::C_ZERO; 1 << h.n_qubits()];
        psi[mol.hf_determinant() as usize] = nwq_common::C_ONE;
        let e = expectation_op(&h, &psi).expect("expectation").re;
        assert!(
            (e - mol.hf_total_energy()).abs() < 1e-8,
            "⟨HF|H|HF⟩ {e} vs RHF {}",
            mol.hf_total_energy()
        );
    }
}

#[test]
fn ground_energy_below_every_determinant() {
    // Variational principle: E0 ≤ ⟨D|H|D⟩ for every determinant D with
    // the right particle number.
    let mol = water_model(3, 4);
    let h = mol.to_qubit_hamiltonian().expect("JW");
    let e0 = ground_energy_default(&h).expect("Lanczos");
    let n_q = h.n_qubits();
    for det in 0u64..(1 << n_q) {
        if det.count_ones() as usize != mol.n_electrons() {
            continue;
        }
        let mut psi = vec![nwq_common::C_ZERO; 1 << n_q];
        psi[det as usize] = nwq_common::C_ONE;
        let e = expectation_op(&h, &psi).expect("expectation").re;
        assert!(e0 <= e + 1e-9, "det {det:b}: E0 {e0} > {e}");
    }
}

#[test]
fn freeze_core_then_truncate_composes_with_downfold() {
    let mol = water_model(6, 6);
    let frozen = freeze_core(&mol, 1).expect("freeze");
    let bare = truncate_virtuals(&frozen, 4).expect("truncate");
    let (folded, report) = downfold_to_active(&mol, 1, 4).expect("downfold");
    // Same active problem, the fold only shifts the scalar part.
    assert_eq!(bare.n_spatial(), folded.n_spatial());
    assert_eq!(bare.n_electrons(), folded.n_electrons());
    assert!(
        (folded.nuclear_repulsion
            - bare.nuclear_repulsion
            - report.external_mp2_energy
            - report.external_singles_energy)
            .abs()
            < 1e-12
    );
    for p in 0..4 {
        for q in 0..4 {
            assert!((bare.h(p, q) - folded.h(p, q)).abs() < 1e-12);
        }
    }
}

#[test]
fn excitation_counts_match_closed_form() {
    // Interleaved spins, closed shell: singles = 2·o·v; doubles follow
    // the spin-resolved combinatorics (αα, ββ, αβ channels).
    for (o, v) in [(1usize, 1usize), (1, 2), (2, 2), (2, 3)] {
        let n_so = 2 * (o + v);
        let n_e = 2 * o;
        let excs = uccsd_excitations(n_so, n_e);
        let singles = excs.iter().filter(|e| e.is_single()).count();
        assert_eq!(singles, 2 * o * v, "o={o} v={v}");
        let same_spin_pairs = o * (o - 1) / 2;
        let same_spin_virt = v * (v - 1) / 2;
        let doubles_expected = 2 * same_spin_pairs * same_spin_virt + (o * o) * (v * v);
        let doubles = excs.len() - singles;
        assert_eq!(doubles, doubles_expected, "o={o} v={v}");
    }
}

#[test]
fn determinant_energy_ordering_tracks_orbital_energies() {
    // Promoting an electron to a higher orbital must not lower the
    // mean-field energy in a well-ordered model.
    let mol = water_model(4, 4);
    let h = mol.to_qubit_hamiltonian().expect("JW");
    let hf = determinant_index(&[0, 1, 2, 3]);
    let excited = determinant_index(&[0, 1, 2, 5]); // β HOMO → β LUMO
    let energy_of = |det: u64| {
        let mut psi = vec![nwq_common::C_ZERO; 1 << 8];
        psi[det as usize] = nwq_common::C_ONE;
        expectation_op(&h, &psi).expect("expectation").re
    };
    assert!(energy_of(hf) < energy_of(excited));
}

#[test]
fn h2_tapering_reduces_qubits_and_preserves_ground_energy() {
    // H2/STO-3G after JW has Z2 parity symmetries (α parity, β parity, …):
    // tapering must shrink the register and keep the FCI energy in the
    // Hartree–Fock sector.
    let mol = h2_sto3g();
    let h = mol.to_qubit_hamiltonian().expect("JW");
    let gens = nwq_pauli::taper::find_z2_symmetries(&h);
    assert!(!gens.is_empty(), "H2 must expose Z2 symmetries");
    for g in &gens {
        let comm = h
            .commutator(&nwq_pauli::PauliOp::single(nwq_common::C_ONE, *g))
            .expect("commutator");
        assert!(comm.one_norm() < 1e-10, "generator {} does not commute", g);
    }
    let r = nwq_pauli::taper::taper(&h, mol.hf_determinant()).expect("taper");
    assert!(r.tapered.n_qubits() <= 4 - gens.len());
    assert!(r.tapered.is_hermitian(1e-10));
    let e_full = ground_energy_default(&h).expect("Lanczos");
    let e_tapered = ground_energy_default(&r.tapered).expect("Lanczos");
    assert!(
        (e_full - e_tapered).abs() < 1e-8,
        "tapered {e_tapered} vs full {e_full} ({} qubits left)",
        r.tapered.n_qubits()
    );
}
