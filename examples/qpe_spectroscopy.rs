//! Quantum phase estimation as an energy spectrometer.
//!
//! ```text
//! cargo run --release -p nwq-core --example qpe_spectroscopy
//! ```
//!
//! Two studies:
//! 1. resolution scan — QPE on H2/STO-3G from the Hartree–Fock state,
//!    sharpening toward the FCI energy as ancillas/Trotter steps grow;
//! 2. spectroscopy — preparing a *superposition* of eigenstates and
//!    reading several spectral lines out of one phase distribution.

use nwq_chem::molecules::h2_sto3g;
use nwq_chem::uccsd::append_hf_state;
use nwq_core::qpe::{run_qpe, QpeConfig};
use nwq_pauli::PauliOp;

fn main() {
    println!("=== QPE resolution scan: H2 / STO-3G ===\n");
    let mol = h2_sto3g();
    let h = mol.to_qubit_hamiltonian().expect("hamiltonian builds");
    let mut prep = nwq_circuit::Circuit::new(4);
    append_hf_state(&mut prep, 2).expect("HF prep");
    println!(
        "{:>9} {:>7} {:>12} {:>12} {:>8}",
        "ancillas", "steps", "E [Ha]", "resol.", "peak p"
    );
    for (ancillas, steps) in [(4usize, 8usize), (5, 12), (6, 16), (8, 32)] {
        let cfg = QpeConfig {
            n_ancilla: ancillas,
            t: 1.5,
            trotter_steps: steps,
            ..Default::default()
        };
        let out = run_qpe(&h, &prep, &cfg).expect("QPE runs");
        println!(
            "{:>9} {:>7} {:>12.5} {:>12.5} {:>8.3}",
            ancillas,
            steps,
            out.energy_near(mol.hf_total_energy()),
            out.resolution(),
            out.peak_probability
        );
    }
    println!(
        "reference: E_FCI = -1.13728 Ha, E_HF = {:.5} Ha",
        mol.hf_total_energy()
    );

    println!("\n=== QPE spectroscopy: superposed eigenstates of H = Z0 + 0.5 Z1 ===\n");
    // Eigenvalues: ±1 ± 0.5. Prepare |+⟩|+⟩ = equal superposition of all
    // four eigenstates and read all four lines from one distribution.
    let h = PauliOp::parse("1.0 IZ + 0.5 ZI").unwrap();
    let mut prep = nwq_circuit::Circuit::new(2);
    prep.h(0).h(1);
    let cfg = QpeConfig {
        n_ancilla: 5,
        t: std::f64::consts::PI / 2.0,
        trotter_steps: 1,
        ..Default::default()
    };
    let out = run_qpe(&h, &prep, &cfg).expect("QPE runs");
    println!("{:>6} {:>10} {:>12}", "bin", "p", "E [Ha]");
    for (bin, &p) in out.distribution.iter().enumerate() {
        if p > 0.01 {
            let phase = bin as f64 / out.distribution.len() as f64;
            let e_raw = -2.0 * std::f64::consts::PI * phase / cfg.t;
            // Unwrap into the symmetric window around 0.
            let window = 2.0 * std::f64::consts::PI / cfg.t;
            let e = if e_raw < -window / 2.0 {
                e_raw + window
            } else {
                e_raw
            };
            println!("{bin:>6} {p:>10.4} {e:>12.4}");
        }
    }
    println!("\nexpected lines: -1.5, -0.5, +0.5, +1.5 Ha at p = 0.25 each");
}
