//! VQE under gate noise — the DM-Sim execution path.
//!
//! ```text
//! cargo run --release -p nwq-core --example noisy_vqe
//! ```
//!
//! Three studies on H2/STO-3G:
//! 1. how depolarizing noise degrades the energy of the *noiselessly*
//!    optimized circuit (and destroys purity);
//! 2. re-optimizing *under* noise: the variational principle partially
//!    adapts the parameters to the noisy channel;
//! 3. fused vs unfused execution under noise — fewer gates means fewer
//!    noise channels, so the paper's gate-fusion pass is also an
//!    *accuracy* optimization on noisy hardware models.

use nwq_chem::molecules::h2_sto3g;
use nwq_chem::uccsd::uccsd_ansatz;
use nwq_core::backend::{Backend, DensityBackend, DirectBackend};
use nwq_core::vqe::{run_vqe, VqeProblem};
use nwq_opt::NelderMead;
use nwq_statevec::density::{run_noisy, NoiseModel};

fn main() {
    let mol = h2_sto3g();
    let h = mol.to_qubit_hamiltonian().expect("JW");
    let ansatz = uccsd_ansatz(4, 2).expect("UCCSD");

    // Noiseless optimum as the reference point.
    let problem = VqeProblem {
        hamiltonian: h.clone(),
        ansatz: ansatz.clone(),
    };
    let mut clean_backend = DirectBackend::new();
    let mut opt = NelderMead::for_vqe();
    let x0 = vec![0.0; ansatz.n_params()];
    let clean = run_vqe(&problem, &mut clean_backend, &mut opt, &x0, 4000).expect("VQE");
    println!("=== Noisy VQE on H2/STO-3G (depolarizing model) ===\n");
    println!("noiseless optimum: {:+.6} Ha\n", clean.energy);

    println!("--- 1. noise applied to the noiseless-optimal circuit ---");
    println!("{:>10} {:>14} {:>10}", "p(1q)", "E [Ha]", "purity");
    let bound = ansatz.bind(&clean.params).expect("bind");
    for p in [0.0, 1e-4, 1e-3, 5e-3] {
        let rho =
            run_noisy(&bound, &[], &NoiseModel::depolarizing(p, 10.0 * p)).expect("noisy run");
        println!(
            "{:>10.0e} {:>14.6} {:>10.4}",
            p,
            rho.energy(&h).expect("energy"),
            rho.purity()
        );
    }

    println!("\n--- 2. re-optimizing under noise (p1 = 1e-3, p2 = 1e-2) ---");
    let noise = NoiseModel::depolarizing(1e-3, 1e-2);
    let mut noisy_backend = DensityBackend::new(noise.clone());
    // Energy of the *clean* parameters under noise:
    let e_clean_params = noisy_backend
        .energy(&ansatz, &clean.params, &h)
        .expect("noisy energy");
    let mut opt = NelderMead::for_vqe();
    let noisy =
        run_vqe(&problem, &mut noisy_backend, &mut opt, &clean.params, 800).expect("noisy VQE");
    println!("clean params under noise : {e_clean_params:+.6} Ha");
    println!("re-optimized under noise : {:+.6} Ha", noisy.energy);
    assert!(noisy.energy <= e_clean_params + 1e-9);

    println!("\n--- 3. gate fusion as an error-mitigation lever ---");
    let (fused, stats) = nwq_circuit::fusion::fuse(&bound).expect("fuse");
    let e_unfused = run_noisy(&bound, &[], &noise)
        .expect("run")
        .energy(&h)
        .unwrap();
    let e_fused = run_noisy(&fused, &[], &noise)
        .expect("run")
        .energy(&h)
        .unwrap();
    println!(
        "unfused: {} gates -> E = {e_unfused:+.6} Ha\nfused  : {} gates -> E = {e_fused:+.6} Ha",
        stats.gates_before, stats.gates_after
    );
    println!(
        "fusion removes {:.0}% of the noise channels and recovers {:+.4} Ha",
        stats.reduction() * 100.0,
        e_unfused - e_fused
    );
    assert!(
        e_fused < e_unfused,
        "fewer noisy gates must give a lower (better) energy"
    );
}
