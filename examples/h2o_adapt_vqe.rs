//! ADAPT-VQE on the downfolded water-like model (paper §5.3 / Fig 5).
//!
//! ```text
//! cargo run --release -p nwq-core --example h2o_adapt_vqe          # 8-qubit model (fast)
//! cargo run --release -p nwq-core --example h2o_adapt_vqe -- full  # the 12-qubit Fig 5 instance
//! ```
//!
//! Grows the ansatz one pool operator per iteration, printing the energy
//! error ΔE against the exact (Lanczos) ground state — the series of
//! paper Fig 5, which reaches 1 mHa chemical accuracy in ~16 iterations.

use nwq_chem::molecules::{water_fig5, water_model};
use nwq_chem::pool::OperatorPool;
use nwq_core::adapt::{run_adapt_vqe, AdaptConfig};
use nwq_core::backend::DirectBackend;
use nwq_core::exact::{ground_energy_sector_default, Sector};
use nwq_opt::NelderMead;

fn main() {
    let full = std::env::args().any(|a| a == "full");
    let mol = if full {
        water_fig5()
    } else {
        water_model(4, 4)
    };
    println!(
        "=== ADAPT-VQE on a downfolded water-like model ({} qubits) ===\n",
        mol.n_spin_orbitals()
    );
    let h = mol.to_qubit_hamiltonian().expect("hamiltonian builds");
    println!("Pauli terms      : {}", h.num_terms());
    let e_hf = mol.hf_total_energy();
    let e_exact = ground_energy_sector_default(&h, Sector::closed_shell(mol.n_electrons()))
        .expect("Lanczos converges");
    println!("E_HF             : {e_hf:+.6} Ha");
    println!("E_exact          : {e_exact:+.6} Ha");
    println!("correlation      : {:+.6} Ha\n", e_exact - e_hf);

    let pool = OperatorPool::singles_doubles(h.n_qubits(), mol.n_electrons()).expect("pool builds");
    println!(
        "operator pool    : {} singles+doubles generators\n",
        pool.len()
    );

    let mut backend = DirectBackend::new();
    let mut optimizer = NelderMead::for_vqe();
    let config = AdaptConfig {
        max_iterations: if full { 20 } else { 10 },
        grad_tol: 1e-5,
        inner_max_evals: if full { 2500 } else { 1200 },
        target_energy: Some(e_exact),
        accuracy: 1e-3,
    };
    let result = run_adapt_vqe(
        &h,
        &pool,
        mol.n_electrons(),
        &mut backend,
        &mut optimizer,
        &config,
    )
    .expect("ADAPT-VQE runs");

    println!(
        "{:>5} {:>18} {:>14} {:>12} {:>8}",
        "iter", "operator", "E [Ha]", "dE [Ha]", "gates"
    );
    for (i, it) in result.iterations.iter().enumerate() {
        let marker = if it.energy - e_exact <= 1e-3 {
            "  <- chemical accuracy"
        } else {
            ""
        };
        println!(
            "{:>5} {:>18} {:>14.8} {:>12.6} {:>8}{marker}",
            i + 1,
            it.operator,
            it.energy,
            it.energy - e_exact,
            it.ansatz_gates
        );
    }
    println!(
        "\nstopped: {:?}; final dE = {:+.6} Ha with {} parameters",
        result.stop_reason,
        result.energy - e_exact,
        result.params.len()
    );
    assert!(
        result.energy >= e_exact - 1e-8,
        "variational bound violated"
    );
}
