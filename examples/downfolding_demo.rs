//! Coupled-cluster downfolding demo (paper §2).
//!
//! ```text
//! cargo run --release -p nwq-core --example downfolding_demo
//! ```
//!
//! Compares three ways of shrinking an 8-qubit water-like problem to a
//! 6-qubit active space:
//!
//! 1. bare truncation of the virtual space (the paper's strawman);
//! 2. integral-level Hermitian downfolding (frozen-core fold + external
//!    MP2 correlation folded into the scalar);
//! 3. the literal Eq. 2 qubit-level pipeline: σ_ext from MP2 amplitudes,
//!    commutator expansion, active-space projection.

use nwq_chem::downfold::{
    commutator_expansion, downfold_to_active, mp2_external_sigma, project_active, truncate_virtuals,
};
use nwq_chem::jw::jordan_wigner;
use nwq_chem::molecules::water_model;
use nwq_core::exact::{ground_energy_sector_default, Sector};

fn main() {
    println!("=== Coupled-cluster downfolding: 4-orbital water-like model ===\n");
    let mol = water_model(4, 4);
    let h_full = mol.to_qubit_hamiltonian().expect("hamiltonian builds");
    let sector = Sector::closed_shell(mol.n_electrons());
    let e_full = ground_energy_sector_default(&h_full, sector).expect("Lanczos");
    println!(
        "full problem      : {} qubits, {} terms",
        h_full.n_qubits(),
        h_full.num_terms()
    );
    println!("E_full (FCI)      : {e_full:+.6} Ha\n");

    let n_active = 3; // keep 3 of 4 spatial orbitals → 6 qubits

    // 1. Bare truncation.
    let bare = truncate_virtuals(&mol, n_active).expect("truncation");
    let h_bare = bare.to_qubit_hamiltonian().expect("hamiltonian builds");
    let e_bare = ground_energy_sector_default(&h_bare, sector).expect("Lanczos");

    // 2. Integral-level downfold.
    let (folded, report) = downfold_to_active(&mol, 0, n_active).expect("downfold");
    let h_fold = folded.to_qubit_hamiltonian().expect("hamiltonian builds");
    let e_fold = ground_energy_sector_default(&h_fold, sector).expect("Lanczos");

    // 3. Qubit-level Eq. 2 pipeline (second-order commutator expansion).
    let sigma = jordan_wigner(&mp2_external_sigma(&mol, n_active), 8).expect("σ JW");
    let transformed = commutator_expansion(&h_full, &sigma, 2).expect("expansion");
    // Active spin orbitals: 0..6 (interleaved); external qubits 6, 7 empty.
    let active: Vec<usize> = (0..2 * n_active).collect();
    let h_eq2 = project_active(&transformed, &active, 0).expect("projection");
    let e_eq2 = ground_energy_sector_default(&h_eq2, sector).expect("Lanczos");

    println!("{:<28} {:>12} {:>12}", "method", "E [Ha]", "error [Ha]");
    println!(
        "{:<28} {:>12.6} {:>12.6}",
        "bare truncation",
        e_bare,
        e_bare - e_full
    );
    println!(
        "{:<28} {:>12.6} {:>12.6}",
        "integral-level downfold",
        e_fold,
        e_fold - e_full
    );
    println!(
        "{:<28} {:>12.6} {:>12.6}",
        "qubit-level Eq. 2 (order 2)",
        e_eq2,
        e_eq2 - e_full
    );
    println!(
        "\nfolded core energy: {:+.6} Ha; external MP2 fold: {:+.6} Ha; \
         external singles fold: {:+.6} Ha",
        report.core_energy, report.external_mp2_energy, report.external_singles_energy
    );
    println!("σ_ext terms       : {}", sigma.num_terms());
    println!(
        "H_eff terms       : {} (from {} full-space terms)",
        h_eq2.num_terms(),
        transformed.num_terms()
    );

    let improvement = (e_bare - e_full).abs() / (e_fold - e_full).abs().max(1e-12);
    println!("\nintegral-level downfolding shrinks the truncation error {improvement:.1}x");
    assert!(
        (e_fold - e_full).abs() <= (e_bare - e_full).abs(),
        "downfolding must not be worse than bare truncation"
    );
}
