//! Distributed (multi-rank) execution demo — the HPC substrate.
//!
//! ```text
//! cargo run --release -p nwq-core --example distributed_scaling
//! ```
//!
//! Runs a UCCSD energy evaluation on the simulated PGAS statevector at
//! increasing rank counts, verifying bit-exactness against the
//! single-node engine and reporting the communication each configuration
//! generates plus its modeled time on a Perlmutter-like machine.

use nwq_chem::molecules::h2_sto3g;
use nwq_chem::uccsd::uccsd_ansatz;
use nwq_core::backend::{Backend, DirectBackend, DistributedBackend};
use nwq_dist::{plan_communication, CostModel};

fn main() {
    println!("=== Distributed statevector execution: H2 UCCSD ===\n");
    let mol = h2_sto3g();
    let h = mol.to_qubit_hamiltonian().expect("hamiltonian builds");
    let ansatz = uccsd_ansatz(4, 2).expect("ansatz builds");
    let theta = vec![0.05, -0.03, 0.11];

    // Reference energy from the single-node engine.
    let mut single = DirectBackend::new();
    let e_ref = single
        .energy(&ansatz, &theta, &h)
        .expect("single-node energy");
    println!("single-node energy: {e_ref:+.8} Ha\n");

    println!(
        "{:>6} {:>14} {:>10} {:>12} {:>12}",
        "ranks", "E [Ha]", "messages", "bytes", "|dE|"
    );
    for n_ranks in [1usize, 2, 4] {
        let mut dist = DistributedBackend::new(n_ranks);
        let e = dist
            .energy(&ansatz, &theta, &h)
            .expect("distributed energy");
        let comm = dist.comm_stats();
        println!(
            "{:>6} {:>14.8} {:>10} {:>12} {:>12.2e}",
            n_ranks,
            e,
            comm.messages,
            comm.bytes,
            (e - e_ref).abs()
        );
        assert!((e - e_ref).abs() < 1e-12, "distributed result diverged");
    }

    println!("\n=== Modeled strong scaling of a 24-qubit UCCSD ansatz ===\n");
    let big = uccsd_ansatz(24, 10).expect("24-qubit ansatz builds");
    let model = CostModel::perlmutter_like();
    println!(
        "{:>6} {:>12} {:>10} {:>12} {:>12} {:>12}",
        "ranks", "messages", "glob.frac", "comm [s]", "comp [s]", "total [s]"
    );
    let t1 = model.compute_time_s(big.len() as u64, 24, 1);
    for exp in 0..=7 {
        let n_ranks = 1usize << exp;
        let plan = plan_communication(&big, n_ranks).expect("power-of-two ranks");
        let comm = model.comm_time_s(&plan, n_ranks);
        let comp = model.compute_time_s(big.len() as u64, 24, n_ranks);
        let total = comm + comp;
        let efficiency = t1 / (n_ranks as f64 * total);
        println!(
            "{:>6} {:>12} {:>10.3} {:>12.4} {:>12.4} {:>12.4}   eff {:>5.1}%",
            n_ranks,
            plan.messages,
            plan.global_fraction(),
            comm,
            comp,
            total,
            efficiency * 100.0
        );
    }
    println!(
        "\ncommunication erodes parallel efficiency as ranks grow — the \
         classic distributed-statevector tax the paper's PGAS design manages"
    );
}
