//! Quickstart: ground-state energy of H2/STO-3G with UCCSD-VQE.
//!
//! ```text
//! cargo run --release -p nwq-core --example quickstart
//! ```
//!
//! Walks the full Fig 2 pipeline on real literature integrals: molecular
//! integrals → Jordan–Wigner → UCCSD ansatz → VQE with the direct
//! (cached, measurement-free) backend — and checks the answer against
//! exact diagonalization.

use nwq_chem::molecules::h2_sto3g;
use nwq_chem::uccsd::uccsd_ansatz;
use nwq_core::backend::{Backend, DirectBackend};
use nwq_core::exact::ground_energy_default;
use nwq_core::vqe::{run_vqe, VqeProblem};
use nwq_opt::NelderMead;

fn main() {
    println!("=== NWQ-Sim-rs quickstart: H2 / STO-3G ===\n");

    // 1. Molecular integrals (Szabo–Ostlund values at R = 1.401 a0).
    let mol = h2_sto3g();
    println!("spatial orbitals : {}", mol.n_spatial());
    println!("electrons        : {}", mol.n_electrons());
    println!("E_HF             : {:+.6} Ha", mol.hf_total_energy());

    // 2. Qubit Hamiltonian via Jordan–Wigner.
    let hamiltonian = mol.to_qubit_hamiltonian().expect("JW transform");
    println!(
        "qubit Hamiltonian: {} qubits, {} Pauli terms",
        hamiltonian.n_qubits(),
        hamiltonian.num_terms()
    );

    // 3. UCCSD ansatz.
    let ansatz = uccsd_ansatz(4, 2).expect("UCCSD builds");
    println!(
        "UCCSD ansatz     : {} gates, {} parameters\n",
        ansatz.len(),
        ansatz.n_params()
    );

    // 4. VQE with the direct backend (post-ansatz caching + direct
    //    expectation values — the paper's fast path).
    let problem = VqeProblem {
        hamiltonian: hamiltonian.clone(),
        ansatz,
    };
    let mut backend = DirectBackend::new();
    let mut optimizer = NelderMead::for_vqe();
    let x0 = vec![0.0; problem.ansatz.n_params()];
    let result = run_vqe(&problem, &mut backend, &mut optimizer, &x0, 4000).expect("VQE runs");

    // 5. Compare with the exact (Lanczos) ground energy.
    let exact = ground_energy_default(&hamiltonian).expect("Lanczos converges");
    println!(
        "E_VQE            : {:+.6} Ha ({} evaluations)",
        result.energy, result.evaluations
    );
    println!("E_FCI (exact)    : {:+.6} Ha", exact);
    println!(
        "error            : {:+.3e} Ha (chemical accuracy: 1.6e-3)",
        result.energy - exact
    );
    println!(
        "correlation      : {:+.6} Ha recovered below HF",
        result.energy - mol.hf_total_energy()
    );
    println!(
        "\nbackend work     : {} energy evaluations, {} ansatz runs, {} gates",
        backend.stats().evaluations,
        backend.stats().ansatz_runs,
        backend.stats().gates_applied
    );
    assert!(
        (result.energy - exact).abs() < 1.6e-3,
        "missed chemical accuracy"
    );
    println!("\nOK: VQE reached chemical accuracy against FCI.");
}
