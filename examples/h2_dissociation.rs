//! H2 dissociation curve from first principles.
//!
//! ```text
//! cargo run --release -p nwq-core --example h2_dissociation
//! ```
//!
//! Uses the built-in STO-3G integral engine (Gaussian integrals + RHF SCF
//! at every geometry) and runs UCCSD-VQE at each bond length with
//! *warm-started* parameters — the incremental-optimization strategy the
//! paper's §6.2 proposes for accelerating VQE sweeps. Prints HF, VQE, and
//! FCI energies across the curve; VQE tracks FCI through the
//! strong-correlation (dissociation) regime where RHF fails.

use nwq_chem::sto3g::h2_molecule;
use nwq_chem::uccsd::uccsd_ansatz;
use nwq_core::backend::DirectBackend;
use nwq_core::exact::ground_energy_default;
use nwq_core::vqe::{run_vqe, VqeProblem};
use nwq_opt::NelderMead;

fn main() {
    println!("=== H2/STO-3G dissociation curve (UCCSD-VQE, warm-started) ===\n");
    println!(
        "{:>7} {:>12} {:>12} {:>12} {:>11} {:>7}",
        "R [a0]", "E_HF", "E_VQE", "E_FCI", "VQE-FCI", "evals"
    );
    let radii = [0.9, 1.1, 1.3, 1.4, 1.6, 1.9, 2.3, 2.8, 3.5, 4.5, 6.0];
    let ansatz = uccsd_ansatz(4, 2).expect("UCCSD builds");
    let mut warm = vec![0.0; ansatz.n_params()];
    let mut worst_err: f64 = 0.0;
    for &r in &radii {
        let mol = h2_molecule(r).expect("geometry valid");
        let h = mol.to_qubit_hamiltonian().expect("JW");
        let fci = ground_energy_default(&h).expect("Lanczos");
        let problem = VqeProblem {
            hamiltonian: h,
            ansatz: ansatz.clone(),
        };
        let mut backend = DirectBackend::new();
        let mut opt = NelderMead::for_vqe();
        let result = run_vqe(&problem, &mut backend, &mut opt, &warm, 4000).expect("VQE runs");
        warm = result.params.clone(); // §6.2 warm start for the next geometry
        let err = result.energy - fci;
        worst_err = worst_err.max(err.abs());
        println!(
            "{:>7.2} {:>12.6} {:>12.6} {:>12.6} {:>11.2e} {:>7}",
            r,
            mol.hf_total_energy(),
            result.energy,
            fci,
            err,
            result.evaluations
        );
    }
    println!("\nworst |VQE − FCI| across the curve: {worst_err:.2e} Ha");
    println!("RHF overbinds at dissociation; UCCSD-VQE follows FCI to two H atoms (−0.9332 Ha).");
    assert!(
        worst_err < 1.6e-3,
        "VQE lost chemical accuracy somewhere on the curve"
    );
}
